//! Small statistics toolkit: running moments, histograms, and `erfc`.

use core::fmt;

/// Streaming min/max/mean/rms accumulator (Welford's algorithm).
///
/// Used for jitter statistics: feed it edge displacements and read back the
/// peak-to-peak and rms values the paper quotes (e.g. Fig. 9's 24 ps p-p /
/// 3.2 ps rms edge jitter).
///
/// # Examples
///
/// ```
/// use signal::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert!((s.peak_to_peak() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 with fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest observation.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been pushed.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty RunningStats");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been pushed.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty RunningStats");
        self.max
    }

    /// `max − min` (0 when empty).
    pub fn peak_to_peak(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-range histogram with uniform bins.
///
/// Edge-jitter measurements accumulate crossing times here; the paper's
/// Fig. 9 is exactly such a histogram rendered by a sampling oscilloscope.
///
/// # Examples
///
/// ```
/// use signal::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.push(0.5);
/// h.push(9.5);
/// h.push(9.6);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.bin_count(9), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be nonempty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds an observation; values outside the range count as under/overflow.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations inside the range.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Index of the fullest bin (`None` when empty).
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total() == 0 {
            return None;
        }
        self.bins.iter().enumerate().max_by_key(|(_, c)| **c).map(|(i, _)| i)
    }

    /// Iterates over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_center(i), self.bins[i]))
    }
}

impl fmt::Display for Histogram {
    /// Renders a compact vertical-bar histogram, one row per bin.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (center, count) in self.iter() {
            let width = (count * 50 / peak) as usize;
            writeln!(f, "{center:>10.2} | {:<50} {count}", "#".repeat(width))?;
        }
        Ok(())
    }
}

/// Complementary error function, `erfc(x) = 1 - erf(x)`.
///
/// Implemented with the Chebyshev-fitted rational approximation from
/// *Numerical Recipes* (relative error < 1.2 × 10⁻⁷ everywhere), which keeps
/// proportional accuracy in the deep tail — exactly where BER arithmetic
/// lives (BER 10⁻¹² ⇔ Q ≈ 7).
///
/// # Examples
///
/// ```
/// use signal::erfc;
///
/// assert!((erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(erfc(3.0) < 3e-5);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.peak_to_peak(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.peak_to_peak(), 7.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());

        // Merging into/with empty.
        let mut e = RunningStats::new();
        e.merge(&whole);
        assert_eq!(e.count(), whole.count());
        let mut w2 = whole.clone();
        w2.merge(&RunningStats::new());
        assert_eq!(w2.count(), whole.count());
    }

    #[test]
    #[should_panic(expected = "min of empty")]
    fn empty_min_panics() {
        let _ = RunningStats::new().min();
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.999, -1.0, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.num_bins(), 5);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.mode_bin(), Some(0));
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert_eq!(h.iter().count(), 5);
        let text = h.to_string();
        assert!(text.contains('#'));
    }

    #[test]
    fn histogram_empty_mode() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.mode_bin(), None);
        let _ = h.to_string(); // must not panic on empty
    }

    #[test]
    fn erfc_reference_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001),
            (1.0, 0.1572992),
            (2.0, 0.0046777),
            (3.0, 2.209e-5),
            (-1.0, 1.8427008),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                (got - want).abs() / want.abs().max(1e-30) < 1e-4,
                "erfc({x}) = {got}, want {want}"
            );
        }
        // Deep tail keeps relative accuracy: erfc(5) ~ 1.537e-12.
        let tail = erfc(5.0);
        assert!((tail - 1.537e-12).abs() / 1.537e-12 < 1e-3, "erfc(5) = {tail}");
    }

    #[test]
    fn erfc_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-12);
        }
    }
}
