//! Eye-diagram construction and crossover-jitter analysis.

use core::fmt;

use pstime::{DataRate, Duration, Instant, UnitInterval};

use crate::analog::AnalogWaveform;
use crate::stats::RunningStats;

/// The result of folding a waveform into an eye diagram and measuring it at
/// the crossover point — the virtual equivalent of the sampling-oscilloscope
/// screens in the paper's Figs. 7, 8, 16, 17, and 19.
///
/// The analysis locates every threshold crossing analytically (femtosecond
/// bisection), folds the crossings into one unit interval, and reports:
///
/// * **peak-to-peak jitter** at the crossover (the paper quotes 46.7 ps at
///   2.5 Gbps),
/// * **rms jitter**,
/// * **horizontal eye opening** in UI (`1 − TJpp/UI`, the paper's 0.88 UI),
/// * **vertical eye height** at the eye center, and
/// * the measured amplitude extremes.
///
/// # Examples
///
/// ```
/// use pstime::DataRate;
/// use signal::jitter::JitterBudget;
/// use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, EyeDiagram, LevelSet};
///
/// let rate = DataRate::from_gbps(2.5);
/// let bits = BitStream::alternating(500);
/// let d = DigitalWaveform::from_bits(&bits, rate, &JitterBudget::new().with_rj_rms_ps(3.2), 1);
/// let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
/// let eye = EyeDiagram::analyze(&a, rate)?;
/// assert!(eye.opening_ui().value() > 0.9);
/// assert!(eye.jitter_rms() < pstime::Duration::from_ps(5));
/// # Ok::<(), signal::SignalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EyeDiagram {
    rate: DataRate,
    crossings: usize,
    skipped: usize,
    jitter_pp: Duration,
    jitter_rms: Duration,
    crossover_phase: Duration,
    opening_ui: UnitInterval,
    eye_height_mv: f64,
    v_min: f64,
    v_max: f64,
    phases_fs: Vec<i64>,
}

impl EyeDiagram {
    /// Folds `wave` at `rate` and measures the eye.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SignalError::InsufficientTransitions`] if the
    /// waveform has fewer than two threshold crossings.
    pub fn analyze(wave: &AnalogWaveform, rate: DataRate) -> crate::Result<EyeDiagram> {
        let ui = rate.unit_interval();
        let threshold = wave.levels().mid().as_f64();
        let digital = wave.digital();

        // 1. Locate all threshold crossings analytically.
        let mut crossings: Vec<Instant> = Vec::with_capacity(digital.num_edges());
        let mut skipped = 0usize;
        let half = ui / 2;
        for e in digital.edges() {
            match wave.find_crossing(threshold, e.at - half, e.at + half) {
                Ok(t) => crossings.push(t),
                Err(_) => skipped += 1,
            }
        }
        if crossings.len() < 2 {
            return Err(crate::SignalError::InsufficientTransitions {
                found: crossings.len(),
                required: 2,
            });
        }

        // 2. Fold into one UI, unwrapping around the circular boundary.
        //    Use the first crossing's phase as the provisional center and
        //    map every phase into (center - UI/2, center + UI/2].
        let ref_phase = crossings[0].phase_in(ui);
        let mut stats = RunningStats::new();
        let mut phases_fs: Vec<i64> = Vec::with_capacity(crossings.len());
        for t in &crossings {
            let p = t.phase_in(ui);
            let mut delta = p - ref_phase;
            if delta > half {
                delta -= ui;
            } else if delta < -half {
                delta += ui;
            }
            let unwrapped = ref_phase + delta;
            phases_fs.push(unwrapped.as_fs());
            stats.push(unwrapped.as_fs_f64());
        }

        let jitter_pp = Duration::from_fs_f64(stats.max() - stats.min());
        let jitter_rms = Duration::from_fs_f64(stats.std_dev());
        let crossover_phase = Duration::from_fs_f64(stats.mean()).rem_euclid(ui);

        // 3. Horizontal opening: the jitter-free span of the UI.
        let opening_ui =
            (UnitInterval::ONE - UnitInterval::from_duration(jitter_pp, rate)).clamp_unit();

        // 4. Vertical eye height at the eye center (crossover + UI/2):
        //    worst-case high sample minus worst-case low sample.
        let center_phase = (crossover_phase + half).rem_euclid(ui);
        let n_bits = digital.span() / ui;
        let mut low_max = f64::NEG_INFINITY;
        let mut high_min = f64::INFINITY;
        let mut v_min = f64::INFINITY;
        let mut v_max = f64::NEG_INFINITY;
        for i in 0..n_bits {
            let t = digital.start() + ui * i + center_phase;
            if t >= digital.end() {
                break;
            }
            let v = wave.value_at(t);
            v_min = v_min.min(v);
            v_max = v_max.max(v);
            if v >= threshold {
                high_min = high_min.min(v);
            } else {
                low_max = low_max.max(v);
            }
        }
        let eye_height_mv = if high_min.is_finite() && low_max.is_finite() {
            (high_min - low_max).max(0.0)
        } else {
            // Single-level stream: no vertical eye to speak of.
            0.0
        };

        Ok(EyeDiagram {
            rate,
            crossings: crossings.len(),
            skipped,
            jitter_pp,
            jitter_rms,
            crossover_phase,
            opening_ui,
            eye_height_mv,
            v_min,
            v_max,
            phases_fs,
        })
    }

    /// The data rate the eye was folded at.
    pub fn rate(&self) -> DataRate {
        self.rate
    }

    /// Number of threshold crossings measured.
    pub fn crossings(&self) -> usize {
        self.crossings
    }

    /// Edges whose crossing could not be bracketed (severe ISI closures).
    pub fn skipped_edges(&self) -> usize {
        self.skipped
    }

    /// Peak-to-peak jitter at the crossover point.
    pub fn jitter_pp(&self) -> Duration {
        self.jitter_pp
    }

    /// rms jitter at the crossover point.
    pub fn jitter_rms(&self) -> Duration {
        self.jitter_rms
    }

    /// Mean crossing phase within the UI.
    pub fn crossover_phase(&self) -> Duration {
        self.crossover_phase
    }

    /// The unwrapped crossing phases (picoseconds, absolute within the
    /// fold) — the raw population behind the jitter statistics, used by
    /// [`crate::decompose`] for RJ/DJ separation.
    pub fn crossing_phases_ps(&self) -> Vec<f64> {
        self.phases_fs.iter().map(|fs| Duration::from_fs(*fs).as_ps_f64()).collect()
    }

    /// Horizontal eye opening as a fraction of the unit interval.
    pub fn opening_ui(&self) -> UnitInterval {
        self.opening_ui
    }

    /// Horizontal eye opening as absolute time.
    pub fn opening_time(&self) -> Duration {
        self.opening_ui.at_rate(self.rate)
    }

    /// Vertical eye height (mV) at the eye center.
    pub fn eye_height_mv(&self) -> f64 {
        self.eye_height_mv
    }

    /// Lowest voltage observed at eye-center sampling instants (mV).
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Highest voltage observed at eye-center sampling instants (mV).
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Observed amplitude (mV) between the eye-center extremes.
    pub fn amplitude_mv(&self) -> f64 {
        (self.v_max - self.v_min).max(0.0)
    }

    /// Builds a 2-UI persistence raster of the eye for rendering.
    pub fn raster(wave: &AnalogWaveform, rate: DataRate, cols: usize, rows: usize) -> EyeRaster {
        EyeRaster::build(wave, rate, cols, rows)
    }
}

impl fmt::Display for EyeDiagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "eye @ {}: opening {}, jitter {} p-p / {} rms, height {:.0} mV ({} crossings)",
            self.rate,
            self.opening_ui,
            self.jitter_pp,
            self.jitter_rms,
            self.eye_height_mv,
            self.crossings
        )
    }
}

/// A 2-UI persistence raster (density grid) of an eye diagram, for ASCII or
/// external rendering. Columns span two unit intervals; rows span the
/// voltage range with a 10 % margin.
#[derive(Debug, Clone, PartialEq)]
pub struct EyeRaster {
    cols: usize,
    rows: usize,
    counts: Vec<u32>,
    v_lo: f64,
    v_hi: f64,
    ui: Duration,
}

impl EyeRaster {
    /// Samples `wave` densely and folds samples into a `cols × rows` grid
    /// spanning two UIs horizontally.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn build(wave: &AnalogWaveform, rate: DataRate, cols: usize, rows: usize) -> EyeRaster {
        assert!(cols > 0 && rows > 0, "raster must have nonzero dimensions");
        let ui = rate.unit_interval();
        let span = ui * 2;
        let digital = wave.digital();
        let swing = wave.levels().swing().as_f64();
        let v_lo = wave.levels().vol().as_f64() - 0.1 * swing;
        let v_hi = wave.levels().voh().as_f64() + 0.1 * swing;
        let mut counts = vec![0u32; cols * rows];
        // 4 samples per column per UI pass is plenty for a persistence plot.
        let dt = span / i64::try_from(cols * 4).unwrap_or(i64::MAX);
        let dt = if dt.is_zero() { Duration::from_fs(1) } else { dt };
        let mut t = digital.start();
        while t < digital.end() {
            let v = wave.value_at(t);
            let phase = t.phase_in(span);
            let scaled = u128::try_from(phase.as_fs()).unwrap_or(0)
                * u128::try_from(cols).unwrap_or(u128::MAX)
                / u128::try_from(span.as_fs()).unwrap_or(u128::MAX);
            let col = usize::try_from(scaled).unwrap_or(usize::MAX).min(cols - 1);
            let frac = ((v - v_lo) / (v_hi - v_lo)).clamp(0.0, 1.0);
            let row =
                crate::quant::round_idx((1.0 - frac) * crate::quant::count_f64(rows - 1), rows - 1);
            counts[row * cols + col] += 1;
            t += dt;
        }
        EyeRaster { cols, rows, counts, v_lo, v_hi, ui }
    }

    /// Grid width in columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height in rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Hit count at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn count(&self, row: usize, col: usize) -> u32 {
        assert!(row < self.rows && col < self.cols, "raster index out of range");
        self.counts[row * self.cols + col]
    }

    /// Voltage range spanned by the rows (mV).
    pub fn voltage_range(&self) -> (f64, f64) {
        (self.v_lo, self.v_hi)
    }

    /// The unit interval the raster was folded at.
    pub fn unit_interval(&self) -> Duration {
        self.ui
    }

    /// Largest hit count in the grid.
    pub fn peak_count(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::{JitterBudget, NoJitter};
    use crate::{BitStream, DigitalWaveform, EdgeShape, LevelSet};

    fn eye_of(bits: BitStream, gbps: f64, budget: &JitterBudget, seed: u64) -> EyeDiagram {
        let rate = DataRate::from_gbps(gbps);
        let d = DigitalWaveform::from_bits(&bits, rate, budget, seed);
        let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        EyeDiagram::analyze(&a, rate).expect("analyzable eye")
    }

    #[test]
    fn clean_eye_is_wide_open() {
        let eye = eye_of(BitStream::alternating(400), 2.5, &JitterBudget::new(), 0);
        assert!(eye.opening_ui().value() > 0.99, "opening {}", eye.opening_ui());
        assert!(eye.jitter_pp() < Duration::from_ps(1));
        assert_eq!(eye.skipped_edges(), 0);
        assert_eq!(eye.crossings(), 399);
        // Full PECL swing visible.
        assert!(eye.eye_height_mv() > 700.0, "height {}", eye.eye_height_mv());
        assert!(eye.amplitude_mv() > 700.0);
    }

    #[test]
    fn jitter_closes_the_eye() {
        let budget = JitterBudget::new().with_rj_rms_ps(3.2).with_dcd_ps(20.0);
        let eye = eye_of(BitStream::alternating(2000), 2.5, &budget, 3);
        // DCD alone gives 20 ps; RJ adds tails.
        let pp = eye.jitter_pp().as_ps_f64();
        assert!(pp > 25.0 && pp < 60.0, "pp jitter {pp}");
        assert!(eye.opening_ui().value() < 0.95);
        assert!(eye.jitter_rms() > Duration::from_ps(5)); // bimodal DCD dominates rms
    }

    #[test]
    fn opening_accounts_for_rate() {
        // Same absolute jitter is proportionally worse at 5 Gbps than 1 Gbps.
        let budget = JitterBudget::new().with_dcd_ps(40.0);
        let eye1 = eye_of(BitStream::alternating(600), 1.0, &budget, 1);
        let eye5 = eye_of(BitStream::alternating(600), 5.0, &budget, 1);
        assert!(eye1.opening_ui().value() > eye5.opening_ui().value());
        assert!((eye1.opening_ui().value() - (1.0 - 0.04)).abs() < 0.02);
        assert!((eye5.opening_ui().value() - (1.0 - 0.2)).abs() < 0.03);
    }

    #[test]
    fn prbs_like_pattern_measures() {
        // A mixed pattern with runs exercises the unwrap logic.
        let bits = BitStream::from_str_bits("1100010110011101000011111010");
        let eye = eye_of(bits.repeat(40), 2.5, &JitterBudget::new().with_rj_rms_ps(2.0), 9);
        assert!(eye.crossings() > 100);
        assert!(eye.opening_ui().value() > 0.9);
        assert!(eye.crossover_phase() < Duration::from_ps(400));
    }

    #[test]
    fn insufficient_transitions_error() {
        let rate = DataRate::from_gbps(2.5);
        let d = DigitalWaveform::from_bits(&BitStream::ones(100), rate, &NoJitter, 0);
        let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        let err = EyeDiagram::analyze(&a, rate).unwrap_err();
        assert!(matches!(err, crate::SignalError::InsufficientTransitions { .. }));
    }

    #[test]
    fn display_contains_key_metrics() {
        let eye = eye_of(BitStream::alternating(100), 2.5, &JitterBudget::new(), 0);
        let s = eye.to_string();
        assert!(s.contains("opening"));
        assert!(s.contains("p-p"));
        assert!(eye.rate() == DataRate::from_gbps(2.5));
        assert!(eye.opening_time() > Duration::from_ps(390));
    }

    #[test]
    fn raster_builds_and_is_dense() {
        let rate = DataRate::from_gbps(2.5);
        let d = DigitalWaveform::from_bits(&BitStream::alternating(64), rate, &NoJitter, 0);
        let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        let raster = EyeDiagram::raster(&a, rate, 64, 20);
        assert_eq!(raster.cols(), 64);
        assert_eq!(raster.rows(), 20);
        assert!(raster.peak_count() > 0);
        let (lo, hi) = raster.voltage_range();
        assert!(lo < -1700.0 && hi > -900.0);
        assert_eq!(raster.unit_interval(), Duration::from_ps(400));
        // The settled rails sit just inside the 10 % margin (row ~2 of 20).
        let total: u32 = (0..64).map(|c| raster.count(2, c)).sum();
        assert!(total > 0);
    }

    #[test]
    #[should_panic(expected = "raster index out of range")]
    fn raster_bad_index_panics() {
        let rate = DataRate::from_gbps(2.5);
        let d = DigitalWaveform::from_bits(&BitStream::alternating(8), rate, &NoJitter, 0);
        let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        let raster = EyeRaster::build(&a, rate, 4, 4);
        let _ = raster.count(4, 0);
    }
}
