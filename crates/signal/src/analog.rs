//! Analytic continuous-time analog waveforms.

use core::fmt;

use pstime::{Duration, Instant, Millivolts};

use crate::digital::{DigitalWaveform, EdgePolarity};

/// The programmed output voltage levels of a driver.
///
/// The paper's PECL output stage exposes independent control of the high
/// level, low level, and midpoint bias, stepped by on-board DACs (Figs. 10
/// and 11). Levels are exact millivolts.
///
/// # Examples
///
/// ```
/// use pstime::Millivolts;
/// use signal::LevelSet;
///
/// let pecl = LevelSet::pecl();
/// assert_eq!(pecl.swing(), Millivolts::new(800));
/// let reduced = pecl.with_swing(Millivolts::new(400));
/// assert_eq!(reduced.swing(), Millivolts::new(400));
/// assert_eq!(reduced.mid(), pecl.mid()); // swing changes keep the bias
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelSet {
    voh: Millivolts,
    vol: Millivolts,
}

impl LevelSet {
    /// Creates a level set.
    ///
    /// # Panics
    ///
    /// Panics if `voh <= vol`.
    pub fn new(voh: Millivolts, vol: Millivolts) -> Self {
        assert!(voh > vol, "VOH must exceed VOL");
        LevelSet { voh, vol }
    }

    /// Standard PECL levels referenced to VCC = 0 V: VOH = −900 mV,
    /// VOL = −1700 mV (800 mV swing).
    pub fn pecl() -> Self {
        LevelSet::new(Millivolts::new(-900), Millivolts::new(-1700))
    }

    /// Ground-referenced LVCMOS-ish levels for the DLC's direct I/O:
    /// 0 / 1800 mV.
    pub fn lvcmos18() -> Self {
        LevelSet::new(Millivolts::new(1800), Millivolts::new(0))
    }

    /// The high level.
    #[inline]
    pub fn voh(&self) -> Millivolts {
        self.voh
    }

    /// The low level.
    #[inline]
    pub fn vol(&self) -> Millivolts {
        self.vol
    }

    /// `VOH − VOL`.
    #[inline]
    pub fn swing(&self) -> Millivolts {
        self.voh - self.vol
    }

    /// The midpoint (switching threshold).
    #[inline]
    pub fn mid(&self) -> Millivolts {
        self.voh.midpoint(self.vol)
    }

    /// Returns a copy with a different high level.
    ///
    /// # Panics
    ///
    /// Panics if the new VOH does not exceed VOL.
    #[must_use]
    pub fn with_voh(&self, voh: Millivolts) -> LevelSet {
        LevelSet::new(voh, self.vol)
    }

    /// Returns a copy with a different low level.
    ///
    /// # Panics
    ///
    /// Panics if VOH does not exceed the new VOL.
    #[must_use]
    pub fn with_vol(&self, vol: Millivolts) -> LevelSet {
        LevelSet::new(self.voh, vol)
    }

    /// Returns a copy with the same midpoint but a new swing — the paper's
    /// Fig. 11 amplitude-adjustment experiment.
    ///
    /// # Panics
    ///
    /// Panics if `swing` is not positive.
    #[must_use]
    pub fn with_swing(&self, swing: Millivolts) -> LevelSet {
        assert!(swing > Millivolts::ZERO, "swing must be positive");
        let mid = self.mid();
        LevelSet::new(mid + swing / 2, mid + swing / 2 - swing)
    }

    /// Returns a copy shifted so its midpoint is `mid` (swing preserved).
    #[must_use]
    pub fn with_mid(&self, mid: Millivolts) -> LevelSet {
        let delta = mid - self.mid();
        LevelSet::new(self.voh + delta, self.vol + delta)
    }

    /// Scales the swing by `factor` about the midpoint (for attenuation).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, +∞)`.
    #[must_use]
    pub fn attenuated(&self, factor: f64) -> LevelSet {
        assert!(factor.is_finite() && factor > 0.0, "attenuation factor must be positive");
        let half = Millivolts::new(((self.swing().as_mv() as f64) * factor / 2.0).round() as i32);
        let mid = self.mid();
        LevelSet::new(mid + half, mid + half - half * 2)
    }
}

impl Default for LevelSet {
    fn default() -> Self {
        LevelSet::pecl()
    }
}

impl fmt::Display for LevelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VOH={} VOL={} (swing {})", self.voh, self.vol, self.swing())
    }
}

/// The transition shape of a driver output stage: a logistic step with a
/// given 20–80 % rise and fall time.
///
/// A logistic edge `S(t) = 1/(1+e^{−t/τ})` crosses 20 % and 80 % at
/// `∓τ·ln 4`, so `t_r(20–80) = 2τ·ln 4 ≈ 2.7726 τ`. The analytic form means
/// overlapping transitions superpose naturally, reproducing the
/// amplitude-swing compression the paper observes when the 120 ps mini-tester
/// buffer runs at a 200 ps unit interval (Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeShape {
    rise_tau_fs: f64,
    fall_tau_fs: f64,
}

/// `2·ln 4`: ratio between the 20–80 % transition time and the logistic τ.
const T2080_PER_TAU: f64 = 2.772588722239781;

impl EdgeShape {
    /// Creates a shape from equal 20–80 % rise and fall times (ps).
    ///
    /// # Panics
    ///
    /// Panics if `ps` is not positive and finite.
    pub fn from_rise_2080_ps(ps: f64) -> Self {
        Self::from_rise_fall_2080_ps(ps, ps)
    }

    /// Creates a shape from distinct 20–80 % rise and fall times (ps).
    ///
    /// # Panics
    ///
    /// Panics if either value is not positive and finite.
    pub fn from_rise_fall_2080_ps(rise_ps: f64, fall_ps: f64) -> Self {
        assert!(rise_ps.is_finite() && rise_ps > 0.0, "rise time must be positive");
        assert!(fall_ps.is_finite() && fall_ps > 0.0, "fall time must be positive");
        EdgeShape {
            rise_tau_fs: rise_ps * 1_000.0 / T2080_PER_TAU,
            fall_tau_fs: fall_ps * 1_000.0 / T2080_PER_TAU,
        }
    }

    /// The nominal 20–80 % rise time.
    pub fn rise_2080(&self) -> Duration {
        Duration::from_fs((self.rise_tau_fs * T2080_PER_TAU).round() as i64)
    }

    /// The nominal 20–80 % fall time.
    pub fn fall_2080(&self) -> Duration {
        Duration::from_fs((self.fall_tau_fs * T2080_PER_TAU).round() as i64)
    }

    /// Returns a shape whose transitions are slowed by an additional
    /// bandwidth limit with equivalent 20–80 % time `extra` — times combine
    /// root-sum-square, the standard cascade rule for first-order systems.
    #[must_use]
    pub fn cascaded_with_2080_ps(&self, extra_ps: f64) -> EdgeShape {
        assert!(extra_ps.is_finite() && extra_ps >= 0.0, "extra rise time must be nonnegative");
        let extra_tau = extra_ps * 1_000.0 / T2080_PER_TAU;
        EdgeShape {
            rise_tau_fs: (self.rise_tau_fs.powi(2) + extra_tau.powi(2)).sqrt(),
            fall_tau_fs: (self.fall_tau_fs.powi(2) + extra_tau.powi(2)).sqrt(),
        }
    }

    fn tau_fs(&self, polarity: EdgePolarity) -> f64 {
        match polarity {
            EdgePolarity::Rising => self.rise_tau_fs,
            EdgePolarity::Falling => self.fall_tau_fs,
        }
    }
}

impl Default for EdgeShape {
    /// The paper's SiGe output buffer: 72 ps 20–80 % (Fig. 6 reports
    /// 70–75 ps).
    fn default() -> Self {
        EdgeShape::from_rise_2080_ps(72.0)
    }
}

/// How many τ away an edge still contributes to the superposition.
/// `sech²`-type tails at 20 τ are ~2×10⁻⁹ of the swing — below every
/// measurement in this crate.
const EDGE_WINDOW_TAUS: f64 = 20.0;

/// An analytic continuous-time analog waveform: logistic transitions between
/// the levels of a [`LevelSet`] at the instants of a [`DigitalWaveform`].
///
/// The value at any instant is evaluated **exactly** (superposition of the
/// nearby transitions), so measurements that chase 10 ps effects — eye
/// openings, crossover jitter, 20–80 % times — are not limited by a sample
/// grid.
///
/// # Examples
///
/// ```
/// use pstime::{DataRate, Instant};
/// use signal::jitter::NoJitter;
/// use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, LevelSet};
///
/// let rate = DataRate::from_gbps(2.5);
/// let bits = BitStream::from_str_bits("0011");
/// let d = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
/// let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
/// // Settled low at bit 0 center, settled high at bit 3 center.
/// assert!((a.value_at(Instant::from_ps(200)) - (-1700.0)).abs() < 1.0);
/// assert!((a.value_at(Instant::from_ps(1400)) - (-900.0)).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogWaveform {
    digital: DigitalWaveform,
    levels: LevelSet,
    shape: EdgeShape,
}

impl AnalogWaveform {
    /// Wraps a digital waveform with levels and a transition shape.
    pub fn new(digital: DigitalWaveform, levels: LevelSet, shape: EdgeShape) -> Self {
        AnalogWaveform { digital, levels, shape }
    }

    /// The underlying digital waveform.
    #[inline]
    pub fn digital(&self) -> &DigitalWaveform {
        &self.digital
    }

    /// The programmed levels.
    #[inline]
    pub fn levels(&self) -> &LevelSet {
        &self.levels
    }

    /// The transition shape.
    #[inline]
    pub fn shape(&self) -> &EdgeShape {
        &self.shape
    }

    /// The instantaneous voltage (millivolts) at `t`.
    ///
    /// Superposes every transition whose logistic tail is non-negligible at
    /// `t`; with well-separated edges this is the settled VOH/VOL, with
    /// overlapping edges it reproduces ISI amplitude compression.
    pub fn value_at(&self, t: Instant) -> f64 {
        let swing = self.levels.swing().as_f64();
        let base = if self.digital.initial_level() {
            self.levels.voh().as_f64()
        } else {
            self.levels.vol().as_f64()
        };
        let edges = self.digital.edges();
        if edges.is_empty() {
            return base;
        }
        // Find the window of edges that can influence t.
        let max_tau = self.shape.rise_tau_fs.max(self.shape.fall_tau_fs);
        let win = Duration::from_fs((max_tau * EDGE_WINDOW_TAUS).ceil() as i64);
        let lo_idx = edges.partition_point(|e| e.at < t - win);
        let mut v = base;
        // Edges fully in the past (before the window) contribute their full step.
        for e in &edges[..lo_idx] {
            v += e.polarity.sign() * swing;
        }
        for e in &edges[lo_idx..] {
            let dt = (t - e.at).as_fs() as f64;
            if dt < -win.as_fs() as f64 {
                break;
            }
            let tau = self.shape.tau_fs(e.polarity);
            v += e.polarity.sign() * swing * logistic(dt / tau);
        }
        v
    }

    /// Finds the instant in `[lo, hi]` where the waveform crosses
    /// `threshold` (millivolts), by bisection to 1 fs.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SignalError::CrossingNotFound`] if the waveform does
    /// not bracket the threshold over the interval.
    pub fn find_crossing(
        &self,
        threshold: f64,
        lo: Instant,
        hi: Instant,
    ) -> crate::Result<Instant> {
        let f_lo = self.value_at(lo) - threshold;
        let f_hi = self.value_at(hi) - threshold;
        if f_lo == 0.0 {
            return Ok(lo);
        }
        if f_hi == 0.0 {
            return Ok(hi);
        }
        if f_lo.signum() == f_hi.signum() {
            return Err(crate::SignalError::CrossingNotFound {
                context: "threshold not bracketed by search window",
            });
        }
        let (mut a, mut b) = (lo, hi);
        let mut f_a = f_lo;
        while (b - a).as_fs() > 1 {
            let mid = a + (b - a) / 2;
            let f_mid = self.value_at(mid) - threshold;
            if f_mid == 0.0 {
                return Ok(mid);
            }
            if f_mid.signum() == f_a.signum() {
                a = mid;
                f_a = f_mid;
            } else {
                b = mid;
            }
        }
        Ok(b)
    }

    /// Samples the waveform on a uniform grid: `n` samples starting at `t0`
    /// spaced `dt` apart. For rendering and for export; analysis should use
    /// [`value_at`](Self::value_at) directly.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn sample_uniform(&self, t0: Instant, dt: Duration, n: usize) -> Vec<f64> {
        assert!(dt > Duration::ZERO, "sample spacing must be positive");
        (0..n).map(|i| self.value_at(t0 + dt * i as i64)).collect()
    }

    /// Minimum and maximum voltage over `[lo, hi]`, scanned at `step`
    /// resolution (with analytic refinement unnecessary because extrema sit
    /// at settled levels or mid-transition plateaus wider than any
    /// reasonable `step`).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive or the window is empty.
    pub fn range_over(&self, lo: Instant, hi: Instant, step: Duration) -> (f64, f64) {
        assert!(step > Duration::ZERO, "scan step must be positive");
        assert!(hi > lo, "scan window must be nonempty");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut t = lo;
        while t <= hi {
            let v = self.value_at(t);
            min = min.min(v);
            max = max.max(v);
            t += step;
        }
        (min, max)
    }

    /// Returns a copy with different levels (a re-programmed driver DAC).
    #[must_use]
    pub fn with_levels(&self, levels: LevelSet) -> AnalogWaveform {
        AnalogWaveform { digital: self.digital.clone(), levels, shape: self.shape }
    }
}

#[inline]
fn logistic(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::NoJitter;
    use crate::BitStream;
    use pstime::DataRate;

    fn analog(bits: &str, gbps: f64, rise_ps: f64) -> AnalogWaveform {
        let d = DigitalWaveform::from_bits(
            &BitStream::from_str_bits(bits),
            DataRate::from_gbps(gbps),
            &NoJitter,
            0,
        );
        AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::from_rise_2080_ps(rise_ps))
    }

    #[test]
    fn level_set_arithmetic() {
        let l = LevelSet::pecl();
        assert_eq!(l.voh(), Millivolts::new(-900));
        assert_eq!(l.vol(), Millivolts::new(-1700));
        assert_eq!(l.swing(), Millivolts::new(800));
        assert_eq!(l.mid(), Millivolts::new(-1300));
        assert_eq!(l.with_voh(Millivolts::new(-1000)).swing(), Millivolts::new(700));
        assert_eq!(l.with_vol(Millivolts::new(-1600)).swing(), Millivolts::new(700));
        let s = l.with_swing(Millivolts::new(400));
        assert_eq!(s.swing(), Millivolts::new(400));
        assert_eq!(s.mid(), l.mid());
        let m = l.with_mid(Millivolts::ZERO);
        assert_eq!(m.mid(), Millivolts::ZERO);
        assert_eq!(m.swing(), Millivolts::new(800));
        let a = l.attenuated(0.5);
        assert_eq!(a.swing(), Millivolts::new(400));
        assert_eq!(a.mid(), l.mid());
        assert_eq!(LevelSet::default(), LevelSet::pecl());
        assert!(LevelSet::lvcmos18().swing() == Millivolts::new(1800));
        assert!(l.to_string().contains("VOH=-900 mV"));
    }

    #[test]
    #[should_panic(expected = "VOH must exceed VOL")]
    fn inverted_levels_panic() {
        let _ = LevelSet::new(Millivolts::new(-1700), Millivolts::new(-900));
    }

    #[test]
    fn edge_shape_round_trips() {
        let s = EdgeShape::from_rise_2080_ps(72.0);
        assert_eq!(s.rise_2080(), Duration::from_ps(72));
        assert_eq!(s.fall_2080(), Duration::from_ps(72));
        let a = EdgeShape::from_rise_fall_2080_ps(70.0, 75.0);
        assert_eq!(a.rise_2080(), Duration::from_ps(70));
        assert_eq!(a.fall_2080(), Duration::from_ps(75));
        // RSS cascade: 30^2 + 40^2 = 50^2.
        let c = EdgeShape::from_rise_2080_ps(30.0).cascaded_with_2080_ps(40.0);
        assert_eq!(c.rise_2080(), Duration::from_ps(50));
        assert_eq!(EdgeShape::default().rise_2080(), Duration::from_ps(72));
    }

    #[test]
    fn settled_levels() {
        let a = analog("0011", 2.5, 72.0);
        assert!((a.value_at(Instant::from_ps(200)) + 1700.0).abs() < 1.0);
        assert!((a.value_at(Instant::from_ps(1400)) + 900.0).abs() < 1.0);
        // The transition midpoint sits at the threshold.
        let mid = a.value_at(Instant::from_ps(800));
        assert!((mid + 1300.0).abs() < 1.0, "mid = {mid}");
    }

    #[test]
    fn constant_waveform_value() {
        let d = DigitalWaveform::constant(true, Instant::ZERO, Instant::from_ps(100));
        let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        assert!((a.value_at(Instant::from_ps(50)) + 900.0).abs() < 1e-9);
    }

    #[test]
    fn rise_time_matches_shape() {
        let a = analog("0011", 2.5, 72.0);
        // 20% and 80% points of -1700..-900: -1540 and -1060 mV.
        let t20 = a.find_crossing(-1540.0, Instant::from_ps(600), Instant::from_ps(1000)).unwrap();
        let t80 = a.find_crossing(-1060.0, Instant::from_ps(600), Instant::from_ps(1000)).unwrap();
        let rise = t80 - t20;
        assert!(
            (rise.as_ps_f64() - 72.0).abs() < 1.0,
            "measured 20-80 rise {} ps",
            rise.as_ps_f64()
        );
    }

    #[test]
    fn crossing_bisection_is_exact() {
        let a = analog("01", 2.5, 72.0);
        // Transition centered at 400 ps: mid-crossing must land within 1 fs.
        let t = a.find_crossing(-1300.0, Instant::from_ps(200), Instant::from_ps(600)).unwrap();
        assert!((t - Instant::from_ps(400)).abs() <= Duration::from_fs(2));
    }

    #[test]
    fn crossing_not_found() {
        let a = analog("0000", 2.5, 72.0);
        let err =
            a.find_crossing(-1300.0, Instant::from_ps(0), Instant::from_ps(1000)).unwrap_err();
        assert!(matches!(err, crate::SignalError::CrossingNotFound { .. }));
    }

    #[test]
    fn isi_compresses_amplitude_at_5gbps() {
        // 120 ps edges at a 200 ps UI: single-bit pulses cannot reach the
        // rails (the paper's Fig. 18 observation).
        let fast = analog("0010100", 5.0, 120.0);
        let (min_v, max_v) =
            fast.range_over(Instant::from_ps(300), Instant::from_ps(1100), Duration::from_ps(1));
        let peak = max_v;
        assert!(peak < -950.0, "isolated 1 at 5 Gbps should not reach VOH, got {peak}");

        // The same pattern at 1 Gbps settles fully.
        let slow = analog("0010100", 1.0, 120.0);
        let (_, max_slow) =
            slow.range_over(Instant::from_ps(1500), Instant::from_ps(5500), Duration::from_ps(5));
        assert!((max_slow + 900.0).abs() < 2.0, "1 Gbps peak {max_slow}");
        let _ = min_v;
    }

    #[test]
    fn with_levels_reprograms_dac() {
        let a = analog("01", 2.5, 72.0);
        let b = a.with_levels(LevelSet::pecl().with_voh(Millivolts::new(-1000)));
        assert!((b.value_at(Instant::from_ps(700)) + 1000.0).abs() < 1.0);
        assert_eq!(b.shape(), a.shape());
        assert_eq!(b.digital(), a.digital());
        assert_eq!(b.levels().voh(), Millivolts::new(-1000));
    }

    #[test]
    fn sample_uniform_grid() {
        let a = analog("0110", 2.5, 20.0);
        let samples = a.sample_uniform(Instant::ZERO, Duration::from_ps(100), 16);
        assert_eq!(samples.len(), 16);
        assert!((samples[2] + 1700.0).abs() < 1.0); // 200 ps: low
        assert!((samples[8] + 900.0).abs() < 1.0); // 800 ps: high
    }

    #[test]
    fn logistic_basics() {
        assert!((logistic(0.0) - 0.5).abs() < 1e-15);
        assert!(logistic(20.0) > 0.999_999);
        assert!(logistic(-20.0) < 1e-6);
        assert!((logistic(1.0) + logistic(-1.0) - 1.0).abs() < 1e-15);
    }
}
