//! NRZ digital waveforms with femtosecond edge placement.

use core::fmt;

use pstime::{DataRate, Duration, Instant};

use crate::jitter::JitterModel;
use crate::BitStream;

/// Direction of a logic transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgePolarity {
    /// Low-to-high transition.
    Rising,
    /// High-to-low transition.
    Falling,
}

impl EdgePolarity {
    /// The opposite polarity.
    #[inline]
    pub fn inverted(self) -> EdgePolarity {
        match self {
            EdgePolarity::Rising => EdgePolarity::Falling,
            EdgePolarity::Falling => EdgePolarity::Rising,
        }
    }

    /// `+1.0` for rising, `−1.0` for falling — the sign of the level change.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            EdgePolarity::Rising => 1.0,
            EdgePolarity::Falling => -1.0,
        }
    }
}

impl fmt::Display for EdgePolarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdgePolarity::Rising => "rising",
            EdgePolarity::Falling => "falling",
        })
    }
}

/// A single logic transition at an absolute instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// When the transition crosses the logic threshold.
    pub at: Instant,
    /// Transition direction.
    pub polarity: EdgePolarity,
}

impl Edge {
    /// Creates an edge.
    #[inline]
    pub fn new(at: Instant, polarity: EdgePolarity) -> Self {
        Edge { at, polarity }
    }

    /// A rising edge at `at`.
    #[inline]
    pub fn rising(at: Instant) -> Self {
        Edge::new(at, EdgePolarity::Rising)
    }

    /// A falling edge at `at`.
    #[inline]
    pub fn falling(at: Instant) -> Self {
        Edge::new(at, EdgePolarity::Falling)
    }
}

/// An NRZ digital waveform: an initial logic level plus a strictly
/// time-ordered, polarity-alternating list of [`Edge`]s.
///
/// This is the exchange format between the pattern-generation side (DLC,
/// PECL muxes, delay lines) and the analog/measurement side. Edge times are
/// absolute femtosecond [`Instant`]s, so a 10 ps delay-line step or a 3.2 ps
/// rms jitter displacement is represented without rounding.
///
/// # Examples
///
/// ```
/// use pstime::{DataRate, Duration, Instant};
/// use signal::jitter::NoJitter;
/// use signal::{BitStream, DigitalWaveform};
///
/// let bits = BitStream::from_str_bits("1100");
/// let w = DigitalWaveform::from_bits(&bits, DataRate::from_gbps(2.5), &NoJitter, 0);
/// assert_eq!(w.num_edges(), 1); // one falling edge at 800 ps
/// assert_eq!(w.edges()[0].at, Instant::from_ps(800));
/// assert!(w.level_at(Instant::from_ps(100)));
/// assert!(!w.level_at(Instant::from_ps(900)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalWaveform {
    initial: bool,
    edges: Vec<Edge>,
    start: Instant,
    end: Instant,
}

impl DigitalWaveform {
    /// Builds a waveform from a bit sequence at a serial data rate, starting
    /// at [`Instant::ZERO`], with each edge displaced by `jitter`.
    ///
    /// Bit `i` nominally occupies `[i·UI, (i+1)·UI)`. Jitter displacements
    /// are clamped so edges stay strictly ordered (a physical NRZ line
    /// cannot reorder transitions).
    pub fn from_bits(
        bits: &BitStream,
        rate: DataRate,
        jitter: &dyn JitterModel,
        seed: u64,
    ) -> Self {
        Self::from_bits_at(Instant::ZERO, bits, rate, jitter, seed)
    }

    /// Like [`from_bits`](Self::from_bits) but starting at `start`.
    pub fn from_bits_at(
        start: Instant,
        bits: &BitStream,
        rate: DataRate,
        jitter: &dyn JitterModel,
        seed: u64,
    ) -> Self {
        use crate::jitter::EdgeContext;

        let ui = rate.unit_interval();
        let n = bits.len();
        let initial = bits.get(0).unwrap_or(false);
        let mut edges = Vec::new();
        let mut sampler = jitter.sampler(seed);
        let mut last = start - ui; // lower bound for monotonicity clamping
        let mut edge_index = 0u64;
        for i in 1..n {
            // xlint::allow(panic-reachable, i ranges over 1..bits.len() so both indices are in bounds by construction)
            if bits[i] != bits[i - 1] {
                let ideal = start + ui * i as i64; // xlint::allow(no-lossy-cast, bit index widens into i64 far below the fs overflow point)
                let polarity = if bits[i] { EdgePolarity::Rising } else { EdgePolarity::Falling }; // xlint::allow(panic-reachable, i ranges over 1..bits.len() so the index is in bounds by construction)
                let ctx = EdgeContext {
                    index: edge_index,
                    ideal,
                    polarity,
                    run_length: bits.run_length_before(i),
                };
                let displaced = ideal + sampler.displacement(&ctx);
                // Keep edges strictly ordered and within one UI of ideal.
                let lo = (last + Duration::from_fs(1)).max(ideal - ui / 2);
                let hi = ideal + ui / 2;
                let at = displaced.max(lo).min(hi);
                edges.push(Edge::new(at, polarity));
                last = at;
                edge_index += 1;
            }
        }
        DigitalWaveform { initial, edges, start, end: start + ui * n as i64 } // xlint::allow(no-lossy-cast, bit count widens into i64 far below the fs overflow point)
    }

    /// Builds a waveform directly from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if edges are not strictly increasing in time or do not
    /// alternate polarity consistently with `initial`.
    pub fn from_edges(initial: bool, edges: Vec<Edge>, start: Instant, end: Instant) -> Self {
        let mut level = initial;
        let mut prev: Option<Instant> = None;
        for e in &edges {
            if let Some(p) = prev {
                assert!(e.at > p, "edges must be strictly increasing in time");
            }
            let expect = if level { EdgePolarity::Falling } else { EdgePolarity::Rising };
            assert!(
                e.polarity == expect,
                "edge polarity must alternate (expected {expect} at {})",
                e.at
            );
            level = !level;
            prev = Some(e.at);
        }
        assert!(end >= start, "waveform end must not precede start");
        DigitalWaveform { initial, edges, start, end }
    }

    /// A constant-level waveform with no transitions.
    pub fn constant(level: bool, start: Instant, end: Instant) -> Self {
        Self::from_edges(level, Vec::new(), start, end)
    }

    /// The logic level at `t` (the initial level before the first edge, the
    /// final level after the last).
    pub fn level_at(&self, t: Instant) -> bool {
        // Number of edges at or before t.
        let n = self.edges.partition_point(|e| e.at <= t);
        self.initial ^ (n % 2 == 1)
    }

    /// The time-ordered edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of transitions.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The level before the first edge.
    #[inline]
    pub fn initial_level(&self) -> bool {
        self.initial
    }

    /// Start of the waveform's validity window.
    #[inline]
    pub fn start(&self) -> Instant {
        self.start
    }

    /// End of the waveform's validity window.
    #[inline]
    pub fn end(&self) -> Instant {
        self.end
    }

    /// Total validity span.
    #[inline]
    pub fn span(&self) -> Duration {
        self.end - self.start
    }

    /// Returns the waveform delayed by `delay` (negative advances it).
    ///
    /// This is exactly what a PECL delay line does to a signal.
    #[must_use]
    pub fn delayed(&self, delay: Duration) -> DigitalWaveform {
        DigitalWaveform {
            initial: self.initial,
            edges: self.edges.iter().map(|e| Edge::new(e.at + delay, e.polarity)).collect(),
            start: self.start + delay,
            end: self.end + delay,
        }
    }

    /// Returns the logical complement (each edge flips polarity) — the other
    /// leg of a differential PECL pair.
    #[must_use]
    pub fn inverted(&self) -> DigitalWaveform {
        DigitalWaveform {
            initial: !self.initial,
            edges: self.edges.iter().map(|e| Edge::new(e.at, e.polarity.inverted())).collect(),
            start: self.start,
            end: self.end,
        }
    }

    /// XOR of two waveforms: output toggles at every input edge.
    ///
    /// The paper's mini-tester uses a PECL XOR as a programmable clock
    /// doubler / phase mixer (Fig. 15); XOR-ing a clock with a delayed copy
    /// of itself yields a double-rate pulse train.
    ///
    /// Simultaneous edges on both inputs (exactly equal instants) cancel.
    #[must_use]
    pub fn xor(&self, other: &DigitalWaveform) -> DigitalWaveform {
        let mut merged: Vec<Instant> = Vec::with_capacity(self.edges.len() + other.edges.len());
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() || j < other.edges.len() {
            let ta = self.edges.get(i).map(|e| e.at);
            let tb = other.edges.get(j).map(|e| e.at);
            match (ta, tb) {
                (Some(a), Some(b)) if a == b => {
                    // Both inputs toggle together: XOR output unchanged.
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    merged.push(a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    merged.push(b);
                    j += 1;
                }
                (Some(a), None) => {
                    merged.push(a);
                    i += 1;
                }
                (None, Some(b)) => {
                    merged.push(b);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        let initial = self.initial ^ other.initial;
        let mut level = initial;
        let edges = merged
            .into_iter()
            .map(|t| {
                level = !level;
                Edge::new(t, if level { EdgePolarity::Rising } else { EdgePolarity::Falling })
            })
            .collect();
        DigitalWaveform {
            initial,
            edges,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Samples the waveform back into bits: one sample per UI at phase
    /// `sample_offset` into each bit period, starting from the waveform
    /// start.
    ///
    /// This models an ideal retiming receiver; the real sampler with
    /// aperture jitter and threshold offsets lives in the `pecl` crate.
    pub fn to_bits(&self, rate: DataRate, sample_offset: Duration) -> BitStream {
        let ui = rate.unit_interval();
        let n = (self.span() / ui) as usize; // xlint::allow(no-lossy-cast, span/ui is a nonnegative bit count that fits usize)
        BitStream::from_fn(n, |i| self.level_at(self.start + ui * i as i64 + sample_offset))
    }

    /// The edge nearest to instant `t`, if any edges exist.
    pub fn nearest_edge(&self, t: Instant) -> Option<&Edge> {
        if self.edges.is_empty() {
            return None;
        }
        let idx = self.edges.partition_point(|e| e.at < t);
        let candidates = [idx.checked_sub(1), Some(idx)];
        candidates
            .into_iter()
            .flatten()
            .filter_map(|i| self.edges.get(i))
            .min_by_key(|e| (e.at - t).abs())
    }

    /// Index range of edges within `[lo, hi]`, for windowed analysis.
    pub fn edges_in(&self, lo: Instant, hi: Instant) -> &[Edge] {
        let a = self.edges.partition_point(|e| e.at < lo);
        let b = self.edges.partition_point(|e| e.at <= hi);
        &self.edges[a..b]
    }
}

impl fmt::Display for DigitalWaveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DigitalWaveform({} edges, {} .. {}, initial={})",
            self.edges.len(),
            self.start,
            self.end,
            if self.initial { 1 } else { 0 }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::NoJitter;

    fn wave(bits: &str, gbps: f64) -> DigitalWaveform {
        DigitalWaveform::from_bits(
            &BitStream::from_str_bits(bits),
            DataRate::from_gbps(gbps),
            &NoJitter,
            0,
        )
    }

    #[test]
    fn edges_from_bits() {
        let w = wave("1100", 2.5);
        assert_eq!(w.num_edges(), 1);
        assert_eq!(w.edges()[0], Edge::falling(Instant::from_ps(800)));
        assert!(w.initial_level());
        assert_eq!(w.span(), Duration::from_ps(1600));
    }

    #[test]
    fn alternating_pattern_has_edge_per_bit() {
        let w = wave("10101010", 5.0);
        assert_eq!(w.num_edges(), 7);
        for (i, e) in w.edges().iter().enumerate() {
            assert_eq!(e.at, Instant::from_ps(200 * (i as i64 + 1)));
            let expect = if i % 2 == 0 { EdgePolarity::Falling } else { EdgePolarity::Rising };
            assert_eq!(e.polarity, expect);
        }
    }

    #[test]
    fn level_at_covers_before_and_after() {
        let w = wave("0110", 2.5);
        assert!(!w.level_at(Instant::from_ps(-100)));
        assert!(!w.level_at(Instant::from_ps(100)));
        assert!(w.level_at(Instant::from_ps(500)));
        assert!(w.level_at(Instant::from_ps(1100)));
        assert!(!w.level_at(Instant::from_ps(1300)));
        assert!(!w.level_at(Instant::from_ps(99_999)));
        // Exactly on the edge: new level applies.
        assert!(w.level_at(Instant::from_ps(400)));
    }

    #[test]
    fn delay_and_invert() {
        let w = wave("10", 2.5);
        let d = w.delayed(Duration::from_ps(10));
        assert_eq!(d.edges()[0].at, Instant::from_ps(410));
        assert_eq!(d.start(), Instant::from_ps(10));
        let inv = w.inverted();
        assert!(!inv.initial_level());
        assert_eq!(inv.edges()[0].polarity, EdgePolarity::Rising);
        let back = inv.inverted();
        assert_eq!(back, w);
    }

    #[test]
    fn xor_doubles_a_clock() {
        // XOR of a clock with its quarter-period-delayed copy = 2x clock.
        let clk = wave("10101010", 1.0); // 1 ns per bit
        let delayed = clk.delayed(Duration::from_ps(500));
        let doubled = clk.xor(&delayed);
        // Edges every 500 ps instead of every 1000 ps.
        let times: Vec<i64> = doubled.edges().iter().map(|e| e.at.as_fs() / 1000).collect();
        assert!(times.windows(2).all(|w| w[1] - w[0] == 500));
        assert_eq!(doubled.num_edges(), 14);
    }

    #[test]
    fn xor_with_self_is_constant() {
        let w = wave("1011001", 2.5);
        let x = w.xor(&w);
        assert_eq!(x.num_edges(), 0);
        assert!(!x.initial_level());
    }

    #[test]
    fn to_bits_round_trips() {
        let bits = BitStream::from_str_bits("1011001110001011");
        let rate = DataRate::from_gbps(2.5);
        let w = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let recovered = w.to_bits(rate, Duration::from_ps(200)); // mid-bit sampling
        assert_eq!(recovered, bits);
    }

    #[test]
    fn nearest_edge_and_window() {
        let w = wave("1010", 2.5); // edges at 400, 800, 1200 ps
        assert_eq!(w.nearest_edge(Instant::from_ps(500)).unwrap().at, Instant::from_ps(400));
        assert_eq!(w.nearest_edge(Instant::from_ps(700)).unwrap().at, Instant::from_ps(800));
        assert_eq!(w.nearest_edge(Instant::from_ps(0)).unwrap().at, Instant::from_ps(400));
        assert_eq!(w.nearest_edge(Instant::from_ps(9999)).unwrap().at, Instant::from_ps(1200));
        let win = w.edges_in(Instant::from_ps(400), Instant::from_ps(800));
        assert_eq!(win.len(), 2);
        assert!(wave("11", 2.5).nearest_edge(Instant::ZERO).is_none());
    }

    #[test]
    fn constant_has_no_edges() {
        let w = DigitalWaveform::constant(true, Instant::ZERO, Instant::from_ps(1000));
        assert_eq!(w.num_edges(), 0);
        assert!(w.level_at(Instant::from_ps(500)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_edges_panic() {
        let _ = DigitalWaveform::from_edges(
            false,
            vec![Edge::rising(Instant::from_ps(10)), Edge::falling(Instant::from_ps(10))],
            Instant::ZERO,
            Instant::from_ps(100),
        );
    }

    #[test]
    #[should_panic(expected = "polarity must alternate")]
    fn non_alternating_edges_panic() {
        let _ = DigitalWaveform::from_edges(
            false,
            vec![Edge::rising(Instant::from_ps(10)), Edge::rising(Instant::from_ps(20))],
            Instant::ZERO,
            Instant::from_ps(100),
        );
    }

    #[test]
    fn display_is_informative() {
        let w = wave("10", 2.5);
        let s = w.to_string();
        assert!(s.contains("1 edges"));
        assert!(s.contains("initial=1"));
    }

    #[test]
    fn empty_bitstream_yields_empty_waveform() {
        let w =
            DigitalWaveform::from_bits(&BitStream::new(), DataRate::from_gbps(1.0), &NoJitter, 0);
        assert_eq!(w.num_edges(), 0);
        assert_eq!(w.span(), Duration::ZERO);
    }
}
