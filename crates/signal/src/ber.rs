//! Bit-error-rate estimation: Q-scale conversions and dual-Dirac bathtub
//! curves.
//!
//! The paper reports eye openings rather than BER directly, but a "usable
//! eye opening" is defined by where the bathtub curve rises above the
//! acceptable error rate. This module provides the standard dual-Dirac
//! machinery to connect the two: given the RJ/DJ decomposition measured by
//! [`crate::EyeDiagram`], it predicts BER versus sampling phase and the eye
//! opening at any target BER.

use pstime::{DataRate, Duration, UnitInterval};

use crate::stats::erfc;

const SQRT_2: f64 = core::f64::consts::SQRT_2;

/// Converts a Gaussian Q factor to a bit error rate: `BER = ½·erfc(Q/√2)`.
///
/// # Examples
///
/// ```
/// use signal::ber_from_q;
///
/// let ber = ber_from_q(7.0);
/// assert!(ber > 1e-13 && ber < 1e-11); // Q = 7 ⇔ BER ≈ 1.3e-12
/// ```
pub fn ber_from_q(q: f64) -> f64 {
    0.5 * erfc(q / SQRT_2)
}

/// Inverts [`ber_from_q`] by bisection.
///
/// # Panics
///
/// Panics if `ber` is not in `(0, 0.5]`.
pub fn q_from_ber(ber: f64) -> f64 {
    assert!(ber > 0.0 && ber <= 0.5, "BER must be in (0, 0.5]");
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ber_from_q(mid) > ber {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// A vertical-eye BER estimate from eye height and additive noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerEstimate {
    /// The Q factor (eye half-height over noise rms).
    pub q: f64,
    /// The estimated bit error rate.
    pub ber: f64,
}

impl BerEstimate {
    /// Estimates BER from a vertical eye opening (mV) and amplitude-noise
    /// rms (mV): `Q = height / (2σ)`.
    ///
    /// # Panics
    ///
    /// Panics if `noise_rms_mv` is not positive or `eye_height_mv` is
    /// negative.
    pub fn from_eye_height(eye_height_mv: f64, noise_rms_mv: f64) -> Self {
        assert!(noise_rms_mv > 0.0, "noise rms must be positive");
        assert!(eye_height_mv >= 0.0, "eye height must be nonnegative");
        let q = eye_height_mv / (2.0 * noise_rms_mv);
        BerEstimate { q, ber: ber_from_q(q) }
    }
}

/// A dual-Dirac timing bathtub: BER as a function of sampling phase for a
/// signal with Gaussian RJ (rms σ) and bounded DJ (peak-to-peak W).
///
/// The two eye "walls" are at phase 0 and phase UI; each wall contributes
/// `ρ·½·erfc((x − W/2)/(σ√2))` where `ρ` is the transition density.
///
/// # Examples
///
/// ```
/// use pstime::{DataRate, Duration};
/// use signal::BathtubCurve;
///
/// let tub = BathtubCurve::new(
///     Duration::from_ps_f64(3.2),  // RJ rms
///     Duration::from_ps(20),       // DJ p-p
///     DataRate::from_gbps(2.5),
///     0.5,
/// );
/// // Dead center of the eye is essentially error-free.
/// assert!(tub.ber_at_ui(0.5) < 1e-30);
/// // Hugging the crossover is hopeless.
/// assert!(tub.ber_at_ui(0.01) > 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BathtubCurve {
    rj_rms: Duration,
    dj_pp: Duration,
    rate: DataRate,
    transition_density: f64,
}

impl BathtubCurve {
    /// Creates a bathtub from an RJ/DJ decomposition at a data rate.
    ///
    /// # Panics
    ///
    /// Panics if `rj_rms` is negative, `dj_pp` is negative, or
    /// `transition_density` is outside `(0, 1]`.
    pub fn new(rj_rms: Duration, dj_pp: Duration, rate: DataRate, transition_density: f64) -> Self {
        assert!(!rj_rms.is_negative(), "RJ rms must be nonnegative");
        assert!(!dj_pp.is_negative(), "DJ p-p must be nonnegative");
        assert!(
            transition_density > 0.0 && transition_density <= 1.0,
            "transition density must be in (0, 1]"
        );
        BathtubCurve { rj_rms, dj_pp, rate, transition_density }
    }

    /// BER when sampling at `phase` UI into the bit (0 = left crossover,
    /// 0.5 = eye center).
    pub fn ber_at_ui(&self, phase: f64) -> f64 {
        let ui_fs = self.rate.unit_interval().as_fs() as f64;
        let x = phase * ui_fs;
        let sigma = (self.rj_rms.as_fs() as f64).max(1e-3);
        let w2 = self.dj_pp.as_fs() as f64 / 2.0;
        let left = 0.5 * erfc((x - w2) / (sigma * SQRT_2));
        let right = 0.5 * erfc(((ui_fs - x) - w2) / (sigma * SQRT_2));
        (self.transition_density * (left + right)).min(1.0)
    }

    /// The horizontal eye opening at a target BER, via the dual-Dirac total
    /// jitter formula `TJ = DJ + 2·Q(BER)·σ`, clamped to `[0, 1]` UI.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `(0, 0.5]`.
    pub fn opening_at_ber(&self, ber: f64) -> UnitInterval {
        let q = q_from_ber(ber / self.transition_density.min(1.0));
        let tj = self.dj_pp + self.rj_rms.mul_f64(2.0 * q);
        (UnitInterval::ONE - UnitInterval::from_duration(tj, self.rate)).clamp_unit()
    }

    /// Total jitter at a target BER (dual-Dirac).
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `(0, 0.5]`.
    pub fn total_jitter_at_ber(&self, ber: f64) -> Duration {
        let q = q_from_ber(ber / self.transition_density.min(1.0));
        self.dj_pp + self.rj_rms.mul_f64(2.0 * q)
    }

    /// Evaluates the bathtub at `points` evenly spaced phases across one
    /// unit interval (inclusive of both crossovers), returning
    /// `(phase in UI, BER)` pairs — the curve a plotting or margining tool
    /// consumes.
    ///
    /// # Errors
    ///
    /// [`crate::SignalError::InvalidParameter`] if `points < 2`.
    pub fn sweep(&self, points: usize) -> crate::Result<Vec<(f64, f64)>> {
        self.sweep_with_pool(points, &exec::ExecPool::serial())
    }

    /// [`BathtubCurve::sweep`] fanned out over an explicit worker pool.
    /// Each phase is an independent pure evaluation, so the sweep is
    /// bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// [`crate::SignalError::InvalidParameter`] if `points < 2`; propagates
    /// execution errors.
    pub fn sweep_with_pool(
        &self,
        points: usize,
        pool: &exec::ExecPool,
    ) -> crate::Result<Vec<(f64, f64)>> {
        use exec::PoolJob;
        BathtubSweep { curve: self, points }.run_on(pool)
    }

    /// The RJ rms this curve was built from.
    pub fn rj_rms(&self) -> Duration {
        self.rj_rms
    }

    /// The DJ peak-to-peak this curve was built from.
    pub fn dj_pp(&self) -> Duration {
        self.dj_pp
    }
}

/// A bathtub sweep described as a value: the canonical pool-parameterized
/// entry point ([`exec::PoolJob`]) behind [`BathtubCurve::sweep`] /
/// [`BathtubCurve::sweep_with_pool`], and the scheduling surface the
/// `atd` service layer drives.
#[derive(Debug, Clone, Copy)]
pub struct BathtubSweep<'a> {
    /// The modeled curve to evaluate.
    pub curve: &'a BathtubCurve,
    /// Number of evenly spaced phases across one UI (both crossovers
    /// inclusive); must be at least 2.
    pub points: usize,
}

impl exec::PoolJob for BathtubSweep<'_> {
    type Output = Vec<(f64, f64)>;
    type Error = crate::SignalError;

    fn run_on(&self, pool: &exec::ExecPool) -> crate::Result<Vec<(f64, f64)>> {
        if self.points < 2 {
            return Err(crate::SignalError::InvalidParameter {
                name: "points",
                constraint: "a sweep needs at least both crossovers (points >= 2)",
            });
        }
        let denom = (self.points - 1) as f64; // xlint::allow(no-lossy-cast, point counts stay far below 2^53 so the f64 conversion is exact)
        let outcome = pool.run(self.points, |k| {
            let phase = k as f64 / denom; // xlint::allow(no-lossy-cast, k < points which converts exactly)
            (phase, self.curve.ber_at_ui(phase))
        })?;
        Ok(outcome.results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_ber_round_trip() {
        for q in [3.0, 5.0, 7.0, 8.5] {
            let ber = ber_from_q(q);
            let back = q_from_ber(ber);
            assert!((back - q).abs() < 1e-6, "q {q} -> ber {ber} -> {back}");
        }
    }

    #[test]
    fn known_q_values() {
        // Q = 6 -> ~1e-9; Q = 7 -> ~1.28e-12.
        assert!((ber_from_q(6.0) / 9.87e-10 - 1.0).abs() < 0.05);
        assert!((ber_from_q(7.0) / 1.28e-12 - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "BER must be in")]
    fn q_from_bad_ber_panics() {
        let _ = q_from_ber(0.0);
    }

    #[test]
    fn vertical_ber_estimate() {
        // 700 mV eye with 20 mV noise: Q = 17.5, effectively error-free.
        let est = BerEstimate::from_eye_height(700.0, 20.0);
        assert!((est.q - 17.5).abs() < 1e-9);
        assert!(est.ber < 1e-30);
        // Collapsed eye: coin-flip.
        let bad = BerEstimate::from_eye_height(0.0, 20.0);
        assert!((bad.ber - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bathtub_shape() {
        let tub = BathtubCurve::new(
            Duration::from_ps_f64(3.2),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
        );
        // Symmetric about the eye center.
        assert!((tub.ber_at_ui(0.2).ln() - tub.ber_at_ui(0.8).ln()).abs() < 0.2);
        // Monotone into the center.
        assert!(tub.ber_at_ui(0.1) > tub.ber_at_ui(0.3));
        assert!(tub.ber_at_ui(0.3) > tub.ber_at_ui(0.5));
        // Crossover itself is ~transition-density/2.
        assert!(tub.ber_at_ui(0.0) > 0.1);
    }

    #[test]
    fn opening_matches_paper_arithmetic() {
        // Build a curve whose TJ at 1e-12 is ~46.7 ps and check opening
        // ~0.88 UI at 2.5 Gbps (Fig. 7's numbers).
        let rate = DataRate::from_gbps(2.5);
        // TJ = DJ + 2*Q*sigma; choose DJ=24.3 ps, sigma=1.6 ps, Q(2e-12)≈7.
        let tub =
            BathtubCurve::new(Duration::from_ps_f64(1.6), Duration::from_ps_f64(24.3), rate, 0.5);
        let tj = tub.total_jitter_at_ber(1e-12);
        assert!((tj.as_ps_f64() - 46.7).abs() < 2.0, "TJ {} ps, expected ~46.7", tj.as_ps_f64());
        let opening = tub.opening_at_ber(1e-12);
        assert!((opening.value() - 0.88).abs() < 0.01, "opening {opening}");
    }

    #[test]
    fn opening_clamps_at_zero() {
        let tub = BathtubCurve::new(
            Duration::from_ps(50),
            Duration::from_ps(300),
            DataRate::from_gbps(5.0),
            1.0,
        );
        assert_eq!(tub.opening_at_ber(1e-12).value(), 0.0);
        assert_eq!(tub.rj_rms(), Duration::from_ps(50));
        assert_eq!(tub.dj_pp(), Duration::from_ps(300));
    }

    #[test]
    fn sweep_matches_pointwise_evaluation_for_any_pool() {
        let tub = BathtubCurve::new(
            Duration::from_ps_f64(3.2),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
        );
        let serial = tub.sweep(101).unwrap();
        assert_eq!(serial.len(), 101);
        assert_eq!(serial[0].0, 0.0);
        assert_eq!(serial[100].0, 1.0);
        for (phase, ber) in &serial {
            assert_eq!(*ber, tub.ber_at_ui(*phase));
        }
        for threads in [2, 8] {
            let parallel = tub.sweep_with_pool(101, &exec::ExecPool::new(threads)).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
        assert!(tub.sweep(1).is_err());
    }

    #[test]
    fn zero_rj_bathtub_is_step_like() {
        let tub = BathtubCurve::new(
            Duration::ZERO,
            Duration::from_ps(100),
            DataRate::from_gbps(2.5),
            0.5,
        );
        assert!(tub.ber_at_ui(0.5) < 1e-30);
        assert!(tub.ber_at_ui(0.05) > 0.2); // inside the DJ wall
    }
}
