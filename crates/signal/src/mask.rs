//! Eye-mask compliance testing.
//!
//! Serial-link specifications define a keep-out polygon in the middle of
//! the eye; a part complies when no trajectory enters it. The paper's eye
//! photographs (Figs. 7, 8, 16, 17, 19) are exactly what an engineer holds
//! a mask against, so the virtual instrument gets the same tool: a
//! hexagonal mask placed at the eye centre, scanned against the folded
//! waveform, with hit counting.

use pstime::DataRate;

use crate::analog::AnalogWaveform;
use crate::{Result, SignalError};

/// A hexagonal eye mask, symmetric about the eye centre:
///
/// ```text
///        x1    x2
///     ___________        ^
///    /           \       | height/2
///   <             >      + centre (0 V differential, mid-UI)
///    \___________/       | height/2
///                        v
/// ```
///
/// `x1`/`x2` are UI offsets from the eye centre where the mask reaches
/// full height and where it ends (0 < x1 ≤ x2 < 0.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyeMask {
    half_width_full: f64,
    half_width_tip: f64,
    half_height_mv: f64,
}

impl EyeMask {
    /// Creates a mask: full height over `±half_width_full` UI, tapering to
    /// points at `±half_width_tip` UI, `height_mv` tall in total.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < half_width_full ≤ half_width_tip < 0.5` and
    /// `height_mv > 0`.
    pub fn hexagon(half_width_full: f64, half_width_tip: f64, height_mv: f64) -> Self {
        assert!(
            half_width_full > 0.0 && half_width_full <= half_width_tip && half_width_tip < 0.5,
            "mask widths must satisfy 0 < full <= tip < 0.5 UI"
        );
        assert!(height_mv > 0.0, "mask height must be positive");
        EyeMask { half_width_full, half_width_tip, half_height_mv: height_mv / 2.0 }
    }

    /// A mask sized for the paper's measured eyes: 0.3 UI of full-height
    /// opening tapering to 0.38 UI tips, 400 mV tall (half the PECL swing).
    pub fn paper_pecl() -> Self {
        EyeMask::hexagon(0.15, 0.19, 400.0)
    }

    /// The mask's total height (mV).
    pub fn height_mv(&self) -> f64 {
        2.0 * self.half_height_mv
    }

    /// The mask's full-height width (UI).
    pub fn full_width_ui(&self) -> f64 {
        2.0 * self.half_width_full
    }

    /// Whether the point `(phase_from_centre_ui, v_from_centre_mv)` falls
    /// inside the keep-out region.
    pub fn contains(&self, phase_from_centre_ui: f64, v_from_centre_mv: f64) -> bool {
        let x = phase_from_centre_ui.abs();
        let y = v_from_centre_mv.abs();
        if x >= self.half_width_tip || y >= self.half_height_mv {
            return false;
        }
        if x <= self.half_width_full {
            return true;
        }
        // Tapered region: height shrinks linearly to zero at the tip.
        let frac = (self.half_width_tip - x) / (self.half_width_tip - self.half_width_full);
        y < self.half_height_mv * frac
    }
}

/// The result of scanning a waveform against a mask.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskTest {
    /// Samples scanned.
    pub samples: usize,
    /// Samples inside the keep-out region.
    pub violations: usize,
    /// The worst violation's position (UI from centre, mV from centre).
    pub worst: Option<(f64, f64)>,
}

impl MaskTest {
    /// Whether the eye is mask-compliant.
    pub fn passed(&self) -> bool {
        self.violations == 0
    }

    /// Violation ratio.
    pub fn violation_ratio(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.violations as f64 / self.samples as f64
        }
    }
}

/// Scans `wave` (folded at `rate`) against `mask`, sampling
/// `samples_per_ui` points per unit interval across the whole waveform.
/// The mask centre is placed at the nominal eye centre: mid-UI, mid-swing.
///
/// # Errors
///
/// [`SignalError::EmptyWaveform`] for a waveform shorter than one UI.
pub fn mask_test(
    wave: &AnalogWaveform,
    rate: DataRate,
    mask: &EyeMask,
    samples_per_ui: usize,
) -> Result<MaskTest> {
    let ui = rate.unit_interval();
    let digital = wave.digital();
    let n_ui = (digital.span() / ui) as usize;
    if n_ui == 0 {
        return Err(SignalError::EmptyWaveform { context: "mask testing" });
    }
    let samples_per_ui = samples_per_ui.max(2);
    let dt = ui / samples_per_ui as i64;
    let centre_v = wave.levels().mid().as_f64();

    let mut samples = 0usize;
    let mut violations = 0usize;
    let mut worst: Option<(f64, f64, f64)> = None; // (margin, x, y)
    let mut t = digital.start();
    while t < digital.end() {
        let phase = t.phase_in(ui);
        let x = phase.ratio(ui) - 0.5;
        let y = wave.value_at(t) - centre_v;
        samples += 1;
        if mask.contains(x, y) {
            violations += 1;
            // Depth into the mask: distance from the nearest edge,
            // approximated by the smaller of the normalized margins.
            let depth =
                (1.0 - x.abs() / mask.half_width_tip).min(1.0 - y.abs() / mask.half_height_mv);
            if worst.is_none_or(|(d, _, _)| depth > d) {
                worst = Some((depth, x, y));
            }
        }
        t += dt;
    }
    Ok(MaskTest { samples, violations, worst: worst.map(|(_, x, y)| (x, y)) })
}

/// The largest mask (of the [`EyeMask::hexagon`] family with the given
/// aspect) that still passes, found by bisection on a scale factor — the
/// measured "mask margin" figure of merit.
///
/// Returns the passing scale in `(0, 1]` relative to `mask`, or 0.0 if even
/// a vanishing mask fails (an eye crossing dead centre).
///
/// # Errors
///
/// Propagates [`mask_test`] errors.
pub fn mask_margin(
    wave: &AnalogWaveform,
    rate: DataRate,
    mask: &EyeMask,
    samples_per_ui: usize,
) -> Result<f64> {
    let scaled = |s: f64| {
        EyeMask::hexagon(
            (mask.half_width_full * s).max(1e-6),
            (mask.half_width_tip * s).max(2e-6),
            (mask.half_height_mv * 2.0 * s).max(1e-6),
        )
    };
    if mask_test(wave, rate, mask, samples_per_ui)?.passed() {
        return Ok(1.0);
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..20 {
        let mid = 0.5 * (lo + hi);
        if mid <= 1e-6 {
            break;
        }
        if mask_test(wave, rate, &scaled(mid), samples_per_ui)?.passed() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::{JitterBudget, NoJitter};
    use crate::{BitStream, DigitalWaveform, EdgeShape, LevelSet};

    fn wave(budget: &JitterBudget, gbps: f64, n: usize, seed: u64) -> (AnalogWaveform, DataRate) {
        let rate = DataRate::from_gbps(gbps);
        let d = DigitalWaveform::from_bits(&BitStream::alternating(n), rate, budget, seed);
        (AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default()), rate)
    }

    #[test]
    fn mask_geometry() {
        let m = EyeMask::hexagon(0.1, 0.2, 300.0);
        assert_eq!(m.height_mv(), 300.0);
        assert!((m.full_width_ui() - 0.2).abs() < 1e-12);
        // Centre is inside.
        assert!(m.contains(0.0, 0.0));
        // Full-height corners.
        assert!(m.contains(0.09, 149.0));
        assert!(!m.contains(0.09, 151.0));
        // Taper: at x = 0.15 (halfway to tip) height halves.
        assert!(m.contains(0.15, 74.0));
        assert!(!m.contains(0.15, 76.0));
        // Outside the tips.
        assert!(!m.contains(0.21, 0.0));
        assert!(!m.contains(-0.25, 10.0));
        // Symmetry.
        assert_eq!(m.contains(-0.09, -149.0), m.contains(0.09, 149.0));
    }

    #[test]
    #[should_panic(expected = "mask widths")]
    fn bad_mask_panics() {
        let _ = EyeMask::hexagon(0.3, 0.2, 100.0);
    }

    #[test]
    fn clean_eye_passes_the_paper_mask() {
        let (w, rate) = wave(&JitterBudget::new().with_rj_rms_ps(3.2), 2.5, 512, 1);
        let result = mask_test(&w, rate, &EyeMask::paper_pecl(), 32).unwrap();
        assert!(result.passed(), "violations {:?}", result.worst);
        assert!(result.samples > 10_000);
        assert_eq!(result.violation_ratio(), 0.0);
    }

    #[test]
    fn heavy_jitter_violates_a_wide_mask() {
        // 150 ps p-p DCD at 2.5 Gbps moves the crossings 0.31 UI from the
        // eye centre: transitions enter a mask whose tips reach 0.45 UI,
        // while the paper-sized mask (tips at 0.19 UI) still clears.
        let budget = JitterBudget::new().with_dcd_ps(150.0).with_rj_rms_ps(5.0);
        let (w, rate) = wave(&budget, 2.5, 512, 3);
        let wide = EyeMask::hexagon(0.25, 0.45, 500.0);
        let result = mask_test(&w, rate, &wide, 32).unwrap();
        assert!(!result.passed());
        assert!(result.violations > 10);
        let (x, _y) = result.worst.unwrap();
        assert!(x.abs() < 0.5);
        // The small mask survives the same jitter.
        assert!(mask_test(&w, rate, &EyeMask::paper_pecl(), 32).unwrap().passed());
    }

    #[test]
    fn mask_margin_orders_eyes() {
        let (clean, rate) = wave(&JitterBudget::new().with_rj_rms_ps(2.0), 2.5, 512, 5);
        let (dirty, _) =
            wave(&JitterBudget::new().with_dcd_ps(100.0).with_rj_rms_ps(5.0), 2.5, 512, 5);
        let big = EyeMask::hexagon(0.3, 0.4, 700.0);
        let m_clean = mask_margin(&clean, rate, &big, 24).unwrap();
        let m_dirty = mask_margin(&dirty, rate, &big, 24).unwrap();
        assert!(m_clean > m_dirty, "clean {m_clean} !> dirty {m_dirty}");
        assert!(m_clean > 0.5);
    }

    #[test]
    fn passing_mask_has_margin_one() {
        let (w, rate) = wave(&JitterBudget::new(), 2.5, 128, 0);
        let margin = mask_margin(&w, rate, &EyeMask::paper_pecl(), 16).unwrap();
        assert_eq!(margin, 1.0);
    }

    #[test]
    fn five_gbps_eye_still_passes_a_scaled_mask() {
        // The paper's 0.75 UI eye at 5 Gbps: a mask scaled to the smaller
        // UI still fits (that's what "usable eye opening" means).
        let budget = JitterBudget::new().with_rj_rms_ps(3.4).with_dcd_ps(12.0);
        let (w, rate) = wave(&budget, 5.0, 1_024, 9);
        let mask = EyeMask::hexagon(0.12, 0.16, 250.0);
        let result = mask_test(&w, rate, &mask, 32).unwrap();
        assert!(result.passed(), "violations: {}", result.violations);
    }

    #[test]
    fn empty_waveform_rejected() {
        let rate = DataRate::from_gbps(2.5);
        let d = DigitalWaveform::from_bits(&BitStream::new(), rate, &NoJitter, 0);
        let w = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
        assert!(matches!(
            mask_test(&w, rate, &EyeMask::paper_pecl(), 16),
            Err(SignalError::EmptyWaveform { .. })
        ));
    }
}
