//! Logical bit sequences.

use core::fmt;
use core::ops::Index;

/// A logical bit sequence, the unit of exchange between pattern generators
/// (DLC state machines, LFSRs, SRAM pattern memory) and serializers.
///
/// `BitStream` is deliberately simple — a growable vector of bits with the
/// constructors test programs actually need (clock patterns, walking ones,
/// word packing) and the counting queries the analysis layer needs
/// (transition density, run lengths).
///
/// # Examples
///
/// ```
/// use signal::BitStream;
///
/// let clk = BitStream::alternating(8);
/// assert_eq!(clk.to_string(), "10101010");
/// assert_eq!(clk.transition_count(), 7);
///
/// let word = BitStream::from_word_msb_first(0xA5, 8);
/// assert_eq!(word.to_string(), "10100101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitStream {
    bits: Vec<bool>,
}

impl BitStream {
    /// Creates an empty stream.
    #[inline]
    pub fn new() -> Self {
        BitStream { bits: Vec::new() }
    }

    /// Creates an empty stream with reserved capacity.
    #[inline]
    pub fn with_capacity(capacity: usize) -> Self {
        BitStream { bits: Vec::with_capacity(capacity) }
    }

    /// Creates a stream of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        BitStream { bits: vec![false; len] }
    }

    /// Creates a stream of `len` ones.
    pub fn ones(len: usize) -> Self {
        BitStream { bits: vec![true; len] }
    }

    /// Creates a `1010…` clock-like pattern of `len` bits starting with 1.
    ///
    /// This is the highest-transition-density pattern — the paper uses it
    /// for the serialized clock channel and for worst-case switching tests.
    pub fn alternating(len: usize) -> Self {
        BitStream { bits: (0..len).map(|i| i % 2 == 0).collect() }
    }

    /// Creates a stream from a slice of bools.
    pub fn from_bits(bits: &[bool]) -> Self {
        BitStream { bits: bits.to_vec() }
    }

    /// Creates a stream from ASCII `'0'`/`'1'` characters, ignoring spaces
    /// and underscores.
    ///
    /// # Panics
    ///
    /// Panics if the string contains any other character.
    pub fn from_str_bits(s: &str) -> Self {
        BitStream {
            bits: s
                .chars()
                .filter(|c| *c != ' ' && *c != '_')
                .map(|c| match c {
                    '0' => false,
                    '1' => true,
                    // xlint::allow(no-panic-in-lib, from_str_bits is a literal builder with a documented panic contract; malformed literals are programmer error not runtime input)
                    other => panic!("invalid bit character {other:?}"),
                })
                .collect(),
        }
    }

    /// Packs the low `width` bits of `word`, most-significant bit first —
    /// the transmission order of the paper's parallel-to-serial PECL muxes.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds 64.
    pub fn from_word_msb_first(word: u64, width: u32) -> Self {
        assert!(width <= 64, "word width exceeds 64 bits");
        BitStream { bits: (0..width).rev().map(|i| (word >> i) & 1 == 1).collect() }
    }

    /// Packs the low `width` bits of `word`, least-significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds 64.
    pub fn from_word_lsb_first(word: u64, width: u32) -> Self {
        assert!(width <= 64, "word width exceeds 64 bits");
        BitStream { bits: (0..width).map(|i| (word >> i) & 1 == 1).collect() }
    }

    /// Generates a stream by calling `f(index)` for each bit.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> bool) -> Self {
        BitStream { bits: (0..len).map(f).collect() }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the stream holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at `index`, or `None` past the end.
    #[inline]
    pub fn get(&self, index: usize) -> Option<bool> {
        self.bits.get(index).copied()
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends all bits of `other`.
    pub fn append(&mut self, other: &BitStream) {
        self.bits.extend_from_slice(&other.bits);
    }

    /// Returns the concatenation of `self` and `other`.
    #[must_use]
    pub fn concat(&self, other: &BitStream) -> BitStream {
        let mut out = self.clone();
        out.append(other);
        out
    }

    /// Returns this stream repeated `times` times.
    #[must_use]
    pub fn repeat(&self, times: usize) -> BitStream {
        let mut bits = Vec::with_capacity(self.bits.len() * times);
        for _ in 0..times {
            bits.extend_from_slice(&self.bits);
        }
        BitStream { bits }
    }

    /// Returns the bitwise complement.
    #[must_use]
    pub fn inverted(&self) -> BitStream {
        BitStream { bits: self.bits.iter().map(|b| !b).collect() }
    }

    /// Borrows the underlying bits.
    #[inline]
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Iterates over bits by value.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// Number of `0 → 1` or `1 → 0` transitions between adjacent bits.
    pub fn transition_count(&self) -> usize {
        self.bits.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Fraction of adjacent bit pairs that differ (`0.0` for DC,
    /// `1.0` for a clock pattern).
    pub fn transition_density(&self) -> f64 {
        if self.bits.len() < 2 {
            return 0.0;
        }
        self.transition_count() as f64 / (self.bits.len() - 1) as f64
    }

    /// Number of ones.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Length of the run of identical bits ending **just before** `index`
    /// (0 when `index` is 0). Used by data-dependent-jitter models, which
    /// displace an edge according to how long the line sat at the previous
    /// level.
    pub fn run_length_before(&self, index: usize) -> usize {
        if index == 0 || index > self.bits.len() {
            return 0;
        }
        let level = self.bits[index - 1];
        let mut run = 0;
        for i in (0..index).rev() {
            if self.bits[i] == level {
                run += 1;
            } else {
                break;
            }
        }
        run
    }

    /// The longest run of identical bits anywhere in the stream.
    pub fn max_run_length(&self) -> usize {
        let mut best = 0;
        let mut run = 0;
        let mut prev: Option<bool> = None;
        for &b in &self.bits {
            if Some(b) == prev {
                run += 1;
            } else {
                run = 1;
                prev = Some(b);
            }
            best = best.max(run);
        }
        best
    }

    /// Unpacks bits `offset..offset+width` (MSB first) back into a word.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `width > 64`.
    pub fn word_msb_first(&self, offset: usize, width: u32) -> u64 {
        assert!(width <= 64, "word width exceeds 64 bits");
        assert!(offset + width as usize <= self.bits.len(), "word range out of bounds");
        let mut word = 0u64;
        for i in 0..width as usize {
            word = (word << 1) | u64::from(self.bits[offset + i]);
        }
        word
    }

    /// Interleaves `lanes` round-robin, lane 0 first — exactly what an N:1
    /// multiplexer does to N parallel inputs.
    ///
    /// All lanes must be the same length.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty or lengths differ.
    pub fn interleave(lanes: &[BitStream]) -> BitStream {
        assert!(!lanes.is_empty(), "interleave requires at least one lane");
        let n = lanes[0].len();
        assert!(lanes.iter().all(|l| l.len() == n), "interleave requires equal-length lanes");
        let mut bits = Vec::with_capacity(n * lanes.len());
        for i in 0..n {
            for lane in lanes {
                bits.push(lane.bits[i]);
            }
        }
        BitStream { bits }
    }

    /// Splits into `lanes` round-robin streams (inverse of
    /// [`interleave`](Self::interleave)).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn deinterleave(&self, lanes: usize) -> Vec<BitStream> {
        assert!(lanes > 0, "deinterleave requires at least one lane");
        let mut out = vec![BitStream::with_capacity(self.len() / lanes + 1); lanes];
        for (i, &b) in self.bits.iter().enumerate() {
            out[i % lanes].push(b);
        }
        out
    }

    /// Counts positions where `self` and `other` disagree, comparing up to
    /// the shorter length; returns `(errors, compared)`.
    pub fn hamming_distance(&self, other: &BitStream) -> (usize, usize) {
        let n = self.len().min(other.len());
        let errors = (0..n).filter(|&i| self.bits[i] != other.bits[i]).count();
        (errors, n)
    }

    /// Finds the cyclic shift of `other` that best matches `self` (fewest
    /// errors), searching shifts `0..max_shift`. Returns `(shift, errors)`.
    ///
    /// Receivers use this to word-align a deserialized stream before
    /// comparing against the expected pattern.
    pub fn best_alignment(&self, other: &BitStream, max_shift: usize) -> (usize, usize) {
        let mut best = (0, usize::MAX);
        for shift in 0..max_shift.max(1) {
            let mut errors = 0;
            let n = self.len().min(other.len().saturating_sub(shift));
            for i in 0..n {
                if self.bits[i] != other.bits[i + shift] {
                    errors += 1;
                }
            }
            if errors < best.1 {
                best = (shift, errors);
            }
        }
        best
    }
}

impl Index<usize> for BitStream {
    type Output = bool;
    #[inline]
    fn index(&self, index: usize) -> &bool {
        &self.bits[index]
    }
}

impl FromIterator<bool> for BitStream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitStream { bits: iter.into_iter().collect() }
    }
}

impl Extend<bool> for BitStream {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        self.bits.extend(iter);
    }
}

impl From<Vec<bool>> for BitStream {
    fn from(bits: Vec<bool>) -> Self {
        BitStream { bits }
    }
}

impl IntoIterator for BitStream {
    type Item = bool;
    type IntoIter = std::vec::IntoIter<bool>;
    fn into_iter(self) -> Self::IntoIter {
        self.bits.into_iter()
    }
}

impl<'a> IntoIterator for &'a BitStream {
    type Item = bool;
    type IntoIter = core::iter::Copied<core::slice::Iter<'a, bool>>;
    fn into_iter(self) -> Self::IntoIter {
        self.bits.iter().copied()
    }
}

impl fmt::Display for BitStream {
    /// Renders as a `01`-string (truncated with `…` beyond 256 bits).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const LIMIT: usize = 256;
        for &b in self.bits.iter().take(LIMIT) {
            f.write_str(if b { "1" } else { "0" })?;
        }
        if self.bits.len() > LIMIT {
            write!(f, "… ({} bits)", self.bits.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(BitStream::zeros(3).to_string(), "000");
        assert_eq!(BitStream::ones(3).to_string(), "111");
        assert_eq!(BitStream::alternating(5).to_string(), "10101");
        assert_eq!(BitStream::from_bits(&[true, false]).to_string(), "10");
        assert_eq!(BitStream::from_str_bits("10_1 1").to_string(), "1011");
        assert_eq!(BitStream::from_fn(4, |i| i >= 2).to_string(), "0011");
        assert!(BitStream::new().is_empty());
        assert_eq!(BitStream::with_capacity(10).len(), 0);
    }

    #[test]
    fn word_packing_round_trips() {
        let s = BitStream::from_word_msb_first(0xA5, 8);
        assert_eq!(s.to_string(), "10100101");
        assert_eq!(s.word_msb_first(0, 8), 0xA5);
        let l = BitStream::from_word_lsb_first(0xA5, 8);
        assert_eq!(l.to_string(), "10100101".chars().rev().collect::<String>());
    }

    #[test]
    fn transitions_and_runs() {
        let s = BitStream::from_str_bits("11101000");
        assert_eq!(s.transition_count(), 3);
        assert_eq!(s.count_ones(), 4);
        assert_eq!(s.max_run_length(), 3);
        assert!((BitStream::alternating(100).transition_density() - 1.0).abs() < 1e-12);
        assert_eq!(BitStream::ones(5).transition_density(), 0.0);
        assert_eq!(BitStream::new().transition_density(), 0.0);
    }

    #[test]
    fn run_length_before_edges() {
        let s = BitStream::from_str_bits("11101");
        assert_eq!(s.run_length_before(0), 0);
        assert_eq!(s.run_length_before(3), 3); // three 1s before index 3
        assert_eq!(s.run_length_before(4), 1); // one 0 before index 4
        assert_eq!(s.run_length_before(99), 0);
    }

    #[test]
    fn interleave_is_mux_order() {
        // Two lanes A=1100, B=1010 -> 2:1 mux output ABABABAB.
        let a = BitStream::from_str_bits("1100");
        let b = BitStream::from_str_bits("1010");
        let muxed = BitStream::interleave(&[a.clone(), b.clone()]);
        assert_eq!(muxed.to_string(), "11100100");
        let lanes = muxed.deinterleave(2);
        assert_eq!(lanes[0], a);
        assert_eq!(lanes[1], b);
    }

    #[test]
    fn sixteen_to_one_mux_composition() {
        // The mini-tester path: 16 lanes of 4 bits each -> 64-bit serial.
        let lanes: Vec<BitStream> =
            (0..16).map(|i| BitStream::from_word_msb_first(i as u64 % 2, 4)).collect();
        let serial = BitStream::interleave(&lanes);
        assert_eq!(serial.len(), 64);
        assert_eq!(serial.deinterleave(16), lanes);
    }

    #[test]
    fn editing() {
        let mut s = BitStream::new();
        s.push(true);
        s.extend([false, true]);
        assert_eq!(s.to_string(), "101");
        s.append(&BitStream::from_str_bits("00"));
        assert_eq!(s.to_string(), "10100");
        assert_eq!(s.concat(&BitStream::ones(1)).to_string(), "101001");
        assert_eq!(BitStream::from_str_bits("10").repeat(3).to_string(), "101010");
        assert_eq!(s.inverted().to_string(), "01011");
    }

    #[test]
    fn indexing_and_iteration() {
        let s = BitStream::from_str_bits("101");
        assert!(s[0]);
        assert!(!s[1]);
        assert_eq!(s.get(5), None);
        assert_eq!(s.iter().filter(|b| *b).count(), 2);
        let collected: BitStream = s.iter().collect();
        assert_eq!(collected, s);
        let v: Vec<bool> = (&s).into_iter().collect();
        assert_eq!(v, vec![true, false, true]);
        let v2: Vec<bool> = s.clone().into_iter().collect();
        assert_eq!(v2, v);
        assert_eq!(s.as_slice().len(), 3);
        let from_vec = BitStream::from(vec![true]);
        assert_eq!(from_vec.len(), 1);
    }

    #[test]
    fn error_counting_and_alignment() {
        let tx = BitStream::from_str_bits("10110010");
        let rx = BitStream::from_str_bits("10100010");
        assert_eq!(tx.hamming_distance(&rx), (1, 8));

        // rx delayed by 2 bits: alignment should find shift 2 with 0 errors.
        let delayed = BitStream::from_str_bits("xx".replace("x", "0").as_str()).concat(&tx);
        let (shift, errors) = tx.best_alignment(&delayed, 4);
        assert_eq!(shift, 2);
        assert_eq!(errors, 0);
    }

    #[test]
    fn display_truncation() {
        let s = BitStream::zeros(300);
        let txt = s.to_string();
        assert!(txt.contains("(300 bits)"));
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn bad_bit_char_panics() {
        let _ = BitStream::from_str_bits("10x");
    }

    #[test]
    #[should_panic(expected = "equal-length lanes")]
    fn unequal_interleave_panics() {
        let _ = BitStream::interleave(&[BitStream::ones(2), BitStream::ones(3)]);
    }
}
