//! Oscilloscope-style scalar measurements on analog waveforms.
//!
//! These functions reproduce the measurements the paper reports from its
//! sampling oscilloscope: 20–80 % transition times (Figs. 6 and 18),
//! single-edge jitter histograms (Fig. 9), and programmed-level checks
//! (Figs. 10–11).

use pstime::{DataRate, Duration, Instant};

use crate::analog::AnalogWaveform;
use crate::digital::EdgePolarity;
use crate::stats::{Histogram, RunningStats};
use crate::{Result, SignalError};

/// A measured transition: its polarity, threshold-crossing instant, and
/// 20–80 % transition time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionMeasurement {
    /// Transition direction.
    pub polarity: EdgePolarity,
    /// The instant the signal crosses the mid level.
    pub mid_crossing: Instant,
    /// Time between the 20 % and 80 % amplitude points.
    pub t_2080: Duration,
}

/// Measures the transition around the `edge_index`-th digital edge of
/// `wave`: mid-level crossing time and 20–80 % transition time.
///
/// # Errors
///
/// Returns an error if the edge index is out of range or the amplitude
/// thresholds are not crossed within half a UI of the edge (severe ISI).
pub fn measure_transition(
    wave: &AnalogWaveform,
    edge_index: usize,
    rate: DataRate,
) -> Result<TransitionMeasurement> {
    let edges = wave.digital().edges();
    let edge = edges.get(edge_index).ok_or(SignalError::InsufficientTransitions {
        found: edges.len(),
        required: edge_index + 1,
    })?;
    let ui = rate.unit_interval();
    let lo = edge.at - ui / 2;
    let hi = edge.at + ui / 2;

    let levels = wave.levels();
    let swing = levels.swing().as_f64();
    let v20 = levels.vol().as_f64() + 0.2 * swing;
    let v80 = levels.vol().as_f64() + 0.8 * swing;
    let mid = levels.mid().as_f64();

    let mid_crossing = wave.find_crossing(mid, lo, hi)?;
    let (t_first, t_second) = match edge.polarity {
        EdgePolarity::Rising => {
            (wave.find_crossing(v20, lo, mid_crossing)?, wave.find_crossing(v80, mid_crossing, hi)?)
        }
        EdgePolarity::Falling => {
            (wave.find_crossing(v80, lo, mid_crossing)?, wave.find_crossing(v20, mid_crossing, hi)?)
        }
    };
    Ok(TransitionMeasurement { polarity: edge.polarity, mid_crossing, t_2080: t_second - t_first })
}

/// Measures the 20–80 % transition time of every edge and returns the
/// per-polarity statistics `(rise, fall)` in picoseconds.
///
/// # Errors
///
/// Returns an error if no transitions are measurable.
pub fn transition_time_stats(
    wave: &AnalogWaveform,
    rate: DataRate,
) -> Result<(RunningStats, RunningStats)> {
    let mut rise = RunningStats::new();
    let mut fall = RunningStats::new();
    for i in 0..wave.digital().num_edges() {
        if let Ok(m) = measure_transition(wave, i, rate) {
            match m.polarity {
                EdgePolarity::Rising => rise.push(m.t_2080.as_ps_f64()),
                EdgePolarity::Falling => fall.push(m.t_2080.as_ps_f64()),
            }
        }
    }
    if rise.count() + fall.count() == 0 {
        return Err(SignalError::InsufficientTransitions { found: 0, required: 1 });
    }
    Ok((rise, fall))
}

/// Measured settled logic levels: mean VOH and VOL sampled at bit centers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelMeasurement {
    /// Mean settled high level (mV).
    pub voh_mv: f64,
    /// Mean settled low level (mV).
    pub vol_mv: f64,
    /// Number of high samples.
    pub high_samples: usize,
    /// Number of low samples.
    pub low_samples: usize,
}

impl LevelMeasurement {
    /// Measured swing (mV).
    pub fn swing_mv(&self) -> f64 {
        self.voh_mv - self.vol_mv
    }

    /// Measured midpoint (mV).
    pub fn mid_mv(&self) -> f64 {
        (self.voh_mv + self.vol_mv) / 2.0
    }
}

/// Samples every bit center and reports the mean settled high and low
/// levels — the measurement behind the paper's Figs. 10–11 level sweeps.
///
/// # Errors
///
/// Returns an error if the waveform never visits one of the levels.
pub fn measure_levels(wave: &AnalogWaveform, rate: DataRate) -> Result<LevelMeasurement> {
    let ui = rate.unit_interval();
    let digital = wave.digital();
    let n = (digital.span() / ui) as usize;
    if n == 0 {
        return Err(SignalError::EmptyWaveform { context: "measuring levels" });
    }
    let threshold = wave.levels().mid().as_f64();
    let mut high = RunningStats::new();
    let mut low = RunningStats::new();
    for i in 0..n {
        let t = digital.start() + ui * i as i64 + ui / 2;
        let v = wave.value_at(t);
        if v >= threshold {
            high.push(v);
        } else {
            low.push(v);
        }
    }
    if high.count() == 0 || low.count() == 0 {
        return Err(SignalError::InsufficientTransitions { found: 0, required: 1 });
    }
    Ok(LevelMeasurement {
        voh_mv: high.mean(),
        vol_mv: low.mean(),
        high_samples: high.count() as usize,
        low_samples: low.count() as usize,
    })
}

/// Result of a repeated-acquisition single-edge jitter measurement
/// (the paper's Fig. 9: 24 ps p-p, 3.2 ps rms on one falling edge).
#[derive(Debug, Clone)]
pub struct EdgeJitterMeasurement {
    /// Crossing-time statistics (picoseconds, relative to the mean).
    pub stats: RunningStats,
    /// Histogram of crossing times (picoseconds, relative to the mean).
    pub histogram: Histogram,
}

impl EdgeJitterMeasurement {
    /// Peak-to-peak jitter.
    pub fn peak_to_peak(&self) -> Duration {
        Duration::from_ps_f64(self.stats.peak_to_peak())
    }

    /// rms jitter.
    pub fn rms(&self) -> Duration {
        Duration::from_ps_f64(self.stats.std_dev())
    }
}

/// Accumulates repeated acquisitions of the *same* edge into a jitter
/// histogram, the way a sampling scope in infinite-persistence mode does.
///
/// `acquisitions` yields the measured mid-crossing instant of the edge on
/// each repetition (each from a freshly seeded waveform realization).
///
/// # Errors
///
/// Returns an error if fewer than two acquisitions are provided.
pub fn edge_jitter_from_acquisitions(
    acquisitions: impl IntoIterator<Item = Instant>,
    hist_bins: usize,
) -> Result<EdgeJitterMeasurement> {
    let times: Vec<Instant> = acquisitions.into_iter().collect();
    if times.len() < 2 {
        return Err(SignalError::InsufficientTransitions { found: times.len(), required: 2 });
    }
    let mut stats = RunningStats::new();
    let mean_fs = times.iter().map(|t| t.as_fs() as f64).sum::<f64>() / times.len() as f64;
    for t in &times {
        stats.push((t.as_fs() as f64 - mean_fs) / 1_000.0);
    }
    let spread = stats.peak_to_peak().max(1e-3);
    let mut histogram =
        Histogram::new(stats.min() - 0.05 * spread, stats.max() + 0.05 * spread, hist_bins.max(1));
    for t in &times {
        histogram.push((t.as_fs() as f64 - mean_fs) / 1_000.0);
    }
    Ok(EdgeJitterMeasurement { stats, histogram })
}

/// Measures skew between two waveforms: the difference between the
/// mid-level crossing of each waveform's edge nearest to `near`.
///
/// Used by channel-deskew calibration to verify the ±25 ps alignment claim.
///
/// # Errors
///
/// Returns an error if either waveform has no edge near `near` (within one
/// UI) or crossings cannot be bracketed.
pub fn measure_skew(
    a: &AnalogWaveform,
    b: &AnalogWaveform,
    near: Instant,
    rate: DataRate,
) -> Result<Duration> {
    let ui = rate.unit_interval();
    let find = |w: &AnalogWaveform| -> Result<Instant> {
        let edge = w
            .digital()
            .nearest_edge(near)
            .ok_or(SignalError::EmptyWaveform { context: "measuring skew" })?;
        if (edge.at - near).abs() > ui {
            return Err(SignalError::CrossingNotFound { context: "no edge within one UI" });
        }
        w.find_crossing(w.levels().mid().as_f64(), edge.at - ui / 2, edge.at + ui / 2)
    };
    Ok(find(a)? - find(b)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::{JitterBudget, NoJitter};
    use crate::{BitStream, DigitalWaveform, EdgeShape, LevelSet};
    use pstime::Millivolts;

    fn wave(bits: &str, gbps: f64, rise_ps: f64) -> (AnalogWaveform, DataRate) {
        let rate = DataRate::from_gbps(gbps);
        let d = DigitalWaveform::from_bits(&BitStream::from_str_bits(bits), rate, &NoJitter, 0);
        (AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::from_rise_2080_ps(rise_ps)), rate)
    }

    #[test]
    fn transition_2080_measurement() {
        let (a, rate) = wave("0011", 2.5, 72.0);
        let m = measure_transition(&a, 0, rate).unwrap();
        assert_eq!(m.polarity, EdgePolarity::Rising);
        assert!((m.t_2080.as_ps_f64() - 72.0).abs() < 1.0, "t2080 {}", m.t_2080);
        assert!((m.mid_crossing - Instant::from_ps(800)).abs() < Duration::from_ps(1));
    }

    #[test]
    fn asymmetric_rise_fall() {
        let rate = DataRate::from_gbps(2.5);
        let d = DigitalWaveform::from_bits(&BitStream::from_str_bits("001100"), rate, &NoJitter, 0);
        let a =
            AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::from_rise_fall_2080_ps(70.0, 75.0));
        let (rise, fall) = transition_time_stats(&a, rate).unwrap();
        assert_eq!(rise.count(), 1);
        assert_eq!(fall.count(), 1);
        assert!((rise.mean() - 70.0).abs() < 1.0);
        assert!((fall.mean() - 75.0).abs() < 1.0);
    }

    #[test]
    fn transition_stats_over_pattern() {
        let (a, rate) = wave("010101010101", 2.5, 72.0);
        let (rise, fall) = transition_time_stats(&a, rate).unwrap();
        assert!(rise.count() >= 5);
        assert!(fall.count() >= 5);
        // Fig. 6 claim: rise/fall in the 70–75 ps range.
        assert!(rise.mean() > 68.0 && rise.mean() < 77.0);
        assert!(fall.mean() > 68.0 && fall.mean() < 77.0);
    }

    #[test]
    fn out_of_range_edge_errors() {
        let (a, rate) = wave("01", 2.5, 72.0);
        assert!(measure_transition(&a, 5, rate).is_err());
    }

    #[test]
    fn no_transitions_errors() {
        let (a, rate) = wave("1111", 2.5, 72.0);
        assert!(transition_time_stats(&a, rate).is_err());
        assert!(measure_levels(&a, rate).is_err()); // only one level present
    }

    #[test]
    fn level_measurement_matches_programmed_dac() {
        let rate = DataRate::from_gbps(1.25);
        let levels = LevelSet::pecl().with_voh(Millivolts::new(-1100));
        let d = DigitalWaveform::from_bits(&BitStream::alternating(64), rate, &NoJitter, 0);
        let a = AnalogWaveform::new(d, levels, EdgeShape::from_rise_2080_ps(72.0));
        let m = measure_levels(&a, rate).unwrap();
        assert!((m.voh_mv + 1100.0).abs() < 5.0, "voh {}", m.voh_mv);
        assert!((m.vol_mv + 1700.0).abs() < 5.0, "vol {}", m.vol_mv);
        assert!((m.swing_mv() - 600.0).abs() < 10.0);
        assert!((m.mid_mv() + 1400.0).abs() < 5.0);
        assert!(m.high_samples > 0 && m.low_samples > 0);
    }

    #[test]
    fn edge_jitter_reproduces_fig9() {
        // Repeated acquisitions of one edge with 3.2 ps rms RJ.
        let budget = JitterBudget::new().with_rj_rms_ps(3.2);
        let rate = DataRate::from_gbps(2.5);
        let bits = BitStream::from_str_bits("1100");
        let acqs: Vec<Instant> = (0..5_000)
            .map(|seed| {
                let d = DigitalWaveform::from_bits(&bits, rate, &budget, seed);
                let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
                measure_transition(&a, 0, rate).unwrap().mid_crossing
            })
            .collect();
        let m = edge_jitter_from_acquisitions(acqs, 50).unwrap();
        let rms = m.rms().as_ps_f64();
        let pp = m.peak_to_peak().as_ps_f64();
        assert!((rms - 3.2).abs() < 0.4, "rms {rms} ps, expected ~3.2");
        assert!(pp > 18.0 && pp < 30.0, "p-p {pp} ps, expected ~24");
        assert!(m.histogram.total() > 4_500);
        assert!(m.histogram.mode_bin().is_some());
    }

    #[test]
    fn edge_jitter_requires_two_acquisitions() {
        assert!(edge_jitter_from_acquisitions([Instant::ZERO], 10).is_err());
    }

    #[test]
    fn skew_measurement() {
        let rate = DataRate::from_gbps(2.5);
        let bits = BitStream::alternating(16);
        let d = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let a = AnalogWaveform::new(d.clone(), LevelSet::pecl(), EdgeShape::default());
        let b = AnalogWaveform::new(
            d.delayed(Duration::from_ps(30)),
            LevelSet::pecl(),
            EdgeShape::default(),
        );
        let skew = measure_skew(&b, &a, Instant::from_ps(1200), rate).unwrap();
        assert!((skew - Duration::from_ps(30)).abs() < Duration::from_ps(1), "skew {skew}");
    }

    #[test]
    fn skew_needs_nearby_edges() {
        let rate = DataRate::from_gbps(2.5);
        let quiet = DigitalWaveform::from_bits(&BitStream::ones(8), rate, &NoJitter, 0);
        let busy = DigitalWaveform::from_bits(&BitStream::alternating(8), rate, &NoJitter, 0);
        let a = AnalogWaveform::new(quiet, LevelSet::pecl(), EdgeShape::default());
        let b = AnalogWaveform::new(busy, LevelSet::pecl(), EdgeShape::default());
        assert!(measure_skew(&a, &b, Instant::from_ps(1000), rate).is_err());
    }
}
