//! Jitter models: random, duty-cycle, periodic, and data-dependent.
//!
//! The paper decomposes its timing error the way ATE engineers do:
//!
//! * **Random jitter (RJ)** — Gaussian, quoted as an rms value. Fig. 9
//!   measures 3.2 ps rms on a single repeated edge.
//! * **Deterministic jitter (DJ)** — bounded, quoted peak-to-peak. The
//!   dominant contributors in the paper's signal path are duty-cycle
//!   distortion (DCD) in the 2:1 PECL muxes, data-dependent / inter-symbol
//!   interference (ISI) from bandwidth limits, and periodic jitter (PJ)
//!   coupled from supplies.
//!
//! Each impairment is a [`JitterModel`]; [`JitterBudget`] composes them and
//! reports the analytic RJ (root-sum-square) and DJ (linear sum) totals so a
//! signal-path budget can be checked against measured eyes.
//!
//! All randomness flows through a caller-provided seed, so simulations are
//! reproducible bit-for-bit.

use pstime::{Duration, Frequency, Instant};
use rng::{Rng, SeedTree, StreamId};

use crate::digital::EdgePolarity;

/// Substream identity for Gaussian random-jitter samplers.
pub const RJ_STREAM: StreamId = StreamId::named("signal.jitter.rj");

/// Everything a jitter model may condition an edge displacement on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeContext {
    /// Sequential index of this edge within the waveform.
    pub index: u64,
    /// The ideal (jitter-free) transition instant.
    pub ideal: Instant,
    /// Transition direction.
    pub polarity: EdgePolarity,
    /// Number of identical bits immediately preceding the transition
    /// (run length at the previous level) — what ISI depends on.
    pub run_length: usize,
}

/// A stateful per-waveform jitter sampler produced by a [`JitterModel`].
pub trait JitterSampler {
    /// The displacement to add to one edge's ideal time.
    fn displacement(&mut self, ctx: &EdgeContext) -> Duration;
}

/// A timing-impairment model that can be applied to a waveform's edges.
///
/// Implementations provide a stateful [`JitterSampler`] (seeded for
/// reproducibility) plus their analytic contribution to the RJ/DJ budget.
pub trait JitterModel {
    /// Creates a sampler for one waveform realization.
    fn sampler(&self, seed: u64) -> Box<dyn JitterSampler + '_>;

    /// Analytic rms of the model's Gaussian (unbounded) component.
    fn rj_rms(&self) -> Duration {
        Duration::ZERO
    }

    /// Analytic peak-to-peak bound of the model's deterministic component.
    fn dj_pp(&self) -> Duration {
        Duration::ZERO
    }

    /// Estimated total peak-to-peak jitter at a population of `n` edges:
    /// `DJ + 2·Q(n)·RJ`, where `Q(n)` is the expected Gaussian extreme for
    /// `n` samples. This is what a scope's "p-p over N acquisitions"
    /// readout converges to.
    fn total_pp_estimate(&self, n: u64) -> Duration {
        let q = gaussian_extreme_q(n);
        self.dj_pp() + self.rj_rms().mul_f64(2.0 * q)
    }
}

/// Expected half-width (in σ) of the extreme spread of `n` Gaussian samples.
///
/// For n = 10⁴ this is ≈ 3.7 σ; the paper's "24 ps p-p / 3.2 ps rms"
/// single-edge measurement (Fig. 9) matches a ±3.75 σ excursion.
pub fn gaussian_extreme_q(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    // Asymptotic expected maximum of n standard normals.
    let ln_n = (n as f64).ln(); // xlint::allow(no-lossy-cast, edge count converts exactly to f64 below 2^53)
    (2.0 * ln_n).sqrt()
        - ((ln_n.ln()) + (4.0 * core::f64::consts::PI).ln()) / (2.0 * (2.0 * ln_n).sqrt())
}

/// The absence of jitter: every edge lands exactly on its ideal instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoJitter;

struct NoJitterSampler;

impl JitterSampler for NoJitterSampler {
    fn displacement(&mut self, _ctx: &EdgeContext) -> Duration {
        Duration::ZERO
    }
}

impl JitterModel for NoJitter {
    fn sampler(&self, _seed: u64) -> Box<dyn JitterSampler + '_> {
        Box::new(NoJitterSampler)
    }
}

/// Gaussian random jitter with a given rms value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomJitter {
    sigma: Duration,
}

impl RandomJitter {
    /// Creates Gaussian jitter with rms `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn new(sigma: Duration) -> Self {
        assert!(!sigma.is_negative(), "jitter sigma must be nonnegative");
        RandomJitter { sigma }
    }

    /// Creates Gaussian jitter from an rms value in picoseconds.
    pub fn from_rms_ps(ps: f64) -> Self {
        RandomJitter::new(Duration::from_ps_f64(ps))
    }
}

struct RandomJitterSampler {
    sigma_fs: f64,
    rng: Rng,
}

impl JitterSampler for RandomJitterSampler {
    fn displacement(&mut self, _ctx: &EdgeContext) -> Duration {
        Duration::from_fs((self.rng.gaussian() * self.sigma_fs).round() as i64) // xlint::allow(no-lossy-cast, rounded gaussian displacement in fs fits i64)
    }
}

impl JitterModel for RandomJitter {
    fn sampler(&self, seed: u64) -> Box<dyn JitterSampler + '_> {
        Box::new(RandomJitterSampler {
            sigma_fs: self.sigma.as_fs() as f64, // xlint::allow(no-lossy-cast, sigma in fs converts exactly to f64 below 2^53)
            rng: SeedTree::new(seed).derive(RJ_STREAM).rng(),
        })
    }

    fn rj_rms(&self) -> Duration {
        self.sigma
    }
}

/// Duty-cycle distortion: rising edges displaced `+pp/2`, falling `−pp/2`.
///
/// A 2:1 PECL mux whose select clock has asymmetric half-periods produces
/// exactly this signature; it is usually the largest single DJ term in a
/// mux-tree serializer like the paper's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycleDistortion {
    pp: Duration,
}

impl DutyCycleDistortion {
    /// Creates DCD with the given peak-to-peak magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `pp` is negative.
    pub fn new(pp: Duration) -> Self {
        assert!(!pp.is_negative(), "DCD peak-to-peak must be nonnegative");
        DutyCycleDistortion { pp }
    }

    /// Creates DCD from a peak-to-peak value in picoseconds.
    pub fn from_pp_ps(ps: f64) -> Self {
        DutyCycleDistortion::new(Duration::from_ps_f64(ps))
    }
}

struct DcdSampler {
    half: Duration,
}

impl JitterSampler for DcdSampler {
    fn displacement(&mut self, ctx: &EdgeContext) -> Duration {
        match ctx.polarity {
            EdgePolarity::Rising => self.half,
            EdgePolarity::Falling => -self.half,
        }
    }
}

impl JitterModel for DutyCycleDistortion {
    fn sampler(&self, _seed: u64) -> Box<dyn JitterSampler + '_> {
        Box::new(DcdSampler { half: self.pp / 2 })
    }

    fn dj_pp(&self) -> Duration {
        self.pp
    }
}

/// Sinusoidal periodic jitter (e.g. supply ripple coupling into a delay
/// line): displacement `A·sin(2π·f·t + φ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicJitter {
    amplitude: Duration,
    freq: Frequency,
    phase: f64,
}

impl PeriodicJitter {
    /// Creates periodic jitter with peak `amplitude`, frequency `freq`, and
    /// phase offset `phase` (radians).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or `phase` is not finite.
    pub fn new(amplitude: Duration, freq: Frequency, phase: f64) -> Self {
        assert!(!amplitude.is_negative(), "PJ amplitude must be nonnegative");
        assert!(phase.is_finite(), "PJ phase must be finite");
        PeriodicJitter { amplitude, freq, phase }
    }
}

struct PjSampler {
    amp_fs: f64,
    omega_per_fs: f64,
    phase: f64,
}

impl JitterSampler for PjSampler {
    fn displacement(&mut self, ctx: &EdgeContext) -> Duration {
        let arg = self.omega_per_fs * ctx.ideal.as_fs() as f64 + self.phase; // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
        Duration::from_fs((self.amp_fs * arg.sin()).round() as i64)
    }
}

impl JitterModel for PeriodicJitter {
    fn sampler(&self, _seed: u64) -> Box<dyn JitterSampler + '_> {
        Box::new(PjSampler {
            amp_fs: self.amplitude.as_fs() as f64, // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
            omega_per_fs: 2.0 * core::f64::consts::PI * self.freq.as_hz() as f64 / 1e15,
            phase: self.phase,
        })
    }

    fn dj_pp(&self) -> Duration {
        self.amplitude * 2
    }
}

/// Data-dependent (inter-symbol interference) jitter: an edge following a
/// run of `r` identical bits is displaced late by
/// `max_shift · (1 − e^{−(r−1)/τ})`.
///
/// After a long run the line has settled further from the switching
/// threshold, so the next transition crosses it later — the classic
/// bandwidth-limited ISI signature. `tau_bits` is the channel's settling
/// constant in bit periods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsiJitter {
    max_shift: Duration,
    tau_bits: f64,
}

impl IsiJitter {
    /// Creates ISI jitter with asymptotic displacement `max_shift` and
    /// settling constant `tau_bits` (in bit periods).
    ///
    /// # Panics
    ///
    /// Panics if `max_shift` is negative or `tau_bits` is not positive.
    pub fn new(max_shift: Duration, tau_bits: f64) -> Self {
        assert!(!max_shift.is_negative(), "ISI max shift must be nonnegative");
        assert!(tau_bits.is_finite() && tau_bits > 0.0, "ISI settling constant must be positive");
        IsiJitter { max_shift, tau_bits }
    }

    /// Creates ISI jitter from a maximum shift in picoseconds with a 1-bit
    /// settling constant (a mildly band-limited channel).
    pub fn from_max_ps(ps: f64) -> Self {
        IsiJitter::new(Duration::from_ps_f64(ps), 1.0)
    }
}

struct IsiSampler {
    max_fs: f64,
    tau: f64,
}

impl JitterSampler for IsiSampler {
    fn displacement(&mut self, ctx: &EdgeContext) -> Duration {
        let r = ctx.run_length.max(1) as f64; // xlint::allow(no-lossy-cast, run length is a small positive count; exact in f64)
        let frac = 1.0 - (-(r - 1.0) / self.tau).exp();
        Duration::from_fs((self.max_fs * frac).round() as i64) // xlint::allow(no-lossy-cast, rounded ISI shift in fs fits i64)
    }
}

impl JitterModel for IsiJitter {
    fn sampler(&self, _seed: u64) -> Box<dyn JitterSampler + '_> {
        // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
        Box::new(IsiSampler { max_fs: self.max_shift.as_fs() as f64, tau: self.tau_bits })
    }

    fn dj_pp(&self) -> Duration {
        self.max_shift
    }
}

/// A composite jitter budget: RJ + DCD + PJ + ISI, composed the way the
/// paper's signal chain composes them (each mux/buffer stage contributes).
///
/// The builder-style constructors cover the common case; arbitrary models
/// can be added with [`JitterBudget::with_model`].
///
/// # Examples
///
/// ```
/// use pstime::Duration;
/// use signal::jitter::{JitterBudget, JitterModel};
///
/// // The paper's test-bed output stage: 3.2 ps rms RJ, ~10 ps DCD,
/// // a hair of ISI from the output network.
/// let budget = JitterBudget::new()
///     .with_rj_rms_ps(3.2)
///     .with_dcd_ps(10.0)
///     .with_isi_ps(12.0);
/// assert_eq!(budget.rj_rms(), Duration::from_ps_f64(3.2));
/// assert_eq!(budget.dj_pp(), Duration::from_ps(22));
/// ```
#[derive(Default)]
pub struct JitterBudget {
    models: Vec<Box<dyn JitterModel + Send + Sync>>,
}

impl JitterBudget {
    /// Creates an empty (jitter-free) budget.
    pub fn new() -> Self {
        JitterBudget { models: Vec::new() }
    }

    /// Adds Gaussian random jitter with rms `ps` picoseconds.
    #[must_use]
    pub fn with_rj_rms_ps(mut self, ps: f64) -> Self {
        self.models.push(Box::new(RandomJitter::from_rms_ps(ps)));
        self
    }

    /// Adds duty-cycle distortion with peak-to-peak `ps` picoseconds.
    #[must_use]
    pub fn with_dcd_ps(mut self, ps: f64) -> Self {
        self.models.push(Box::new(DutyCycleDistortion::from_pp_ps(ps)));
        self
    }

    /// Adds sinusoidal periodic jitter.
    #[must_use]
    pub fn with_pj(mut self, amplitude: Duration, freq: Frequency, phase: f64) -> Self {
        self.models.push(Box::new(PeriodicJitter::new(amplitude, freq, phase)));
        self
    }

    /// Adds ISI jitter with maximum shift `ps` picoseconds (τ = 1 bit).
    #[must_use]
    pub fn with_isi_ps(mut self, ps: f64) -> Self {
        self.models.push(Box::new(IsiJitter::from_max_ps(ps)));
        self
    }

    /// Adds an arbitrary jitter model.
    #[must_use]
    pub fn with_model(mut self, model: impl JitterModel + Send + Sync + 'static) -> Self {
        self.models.push(Box::new(model));
        self
    }

    /// Number of component models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the budget is empty (jitter-free).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

impl core::fmt::Debug for JitterBudget {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JitterBudget")
            .field("models", &self.models.len())
            .field("rj_rms", &self.rj_rms())
            .field("dj_pp", &self.dj_pp())
            .finish()
    }
}

struct BudgetSampler<'a> {
    samplers: Vec<Box<dyn JitterSampler + 'a>>,
}

impl JitterSampler for BudgetSampler<'_> {
    fn displacement(&mut self, ctx: &EdgeContext) -> Duration {
        self.samplers.iter_mut().map(|s| s.displacement(ctx)).sum()
    }
}

impl JitterModel for JitterBudget {
    fn sampler(&self, seed: u64) -> Box<dyn JitterSampler + '_> {
        // Each component model gets its own numbered substream so adding a
        // model to the budget never perturbs the draws of the others.
        let tree = SeedTree::new(seed).stream("signal.jitter.budget");
        Box::new(BudgetSampler {
            samplers: self
                .models
                .iter()
                .enumerate()
                .map(|(i, m)| m.sampler(tree.index(i as u64).seed())) // xlint::allow(no-lossy-cast, model index widens losslessly into u64)
                .collect(),
        })
    }

    /// Component RJ values sum in quadrature (independent Gaussians).
    fn rj_rms(&self) -> Duration {
        let sum_sq: f64 = self
            .models
            .iter()
            .map(|m| {
                let fs = m.rj_rms().as_fs() as f64; // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
                fs * fs
            })
            .sum();
        Duration::from_fs(sum_sq.sqrt().round() as i64) // xlint::allow(no-lossy-cast, rounded quadrature sum in fs fits i64)
    }

    /// Component DJ bounds add linearly (worst-case alignment).
    fn dj_pp(&self) -> Duration {
        self.models.iter().map(|m| m.dj_pp()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(index: u64, ps: i64, polarity: EdgePolarity, run: usize) -> EdgeContext {
        EdgeContext { index, ideal: Instant::from_ps(ps), polarity, run_length: run }
    }

    #[test]
    fn no_jitter_is_zero() {
        let mut s = NoJitter.sampler(1);
        assert_eq!(s.displacement(&ctx(0, 100, EdgePolarity::Rising, 1)), Duration::ZERO);
        assert_eq!(NoJitter.rj_rms(), Duration::ZERO);
        assert_eq!(NoJitter.dj_pp(), Duration::ZERO);
    }

    #[test]
    fn random_jitter_statistics() {
        let rj = RandomJitter::from_rms_ps(3.2);
        let mut s = rj.sampler(42);
        let mut stats = crate::RunningStats::new();
        for i in 0..20_000 {
            let d = s.displacement(&ctx(i, i as i64 * 400, EdgePolarity::Rising, 1));
            stats.push(d.as_ps_f64());
        }
        assert!(stats.mean().abs() < 0.1, "mean {} should be ~0", stats.mean());
        assert!((stats.std_dev() - 3.2).abs() < 0.15, "rms {} should be ~3.2 ps", stats.std_dev());
        // p-p over 2e4 samples should be near 2*3.8 sigma = ~24 ps (Fig. 9).
        assert!(stats.peak_to_peak() > 20.0 && stats.peak_to_peak() < 30.0);
    }

    #[test]
    fn random_jitter_is_reproducible() {
        let rj = RandomJitter::from_rms_ps(5.0);
        let run = |seed| {
            let mut s = rj.sampler(seed);
            (0..10)
                .map(|i| s.displacement(&ctx(i, 0, EdgePolarity::Rising, 1)).as_fs())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn dcd_splits_by_polarity() {
        let dcd = DutyCycleDistortion::from_pp_ps(10.0);
        let mut s = dcd.sampler(0);
        assert_eq!(s.displacement(&ctx(0, 0, EdgePolarity::Rising, 1)), Duration::from_ps(5));
        assert_eq!(s.displacement(&ctx(1, 0, EdgePolarity::Falling, 1)), Duration::from_ps(-5));
        assert_eq!(dcd.dj_pp(), Duration::from_ps(10));
    }

    #[test]
    fn periodic_jitter_is_sinusoidal() {
        let freq = Frequency::from_mhz(100); // 10 ns period
        let pj = PeriodicJitter::new(Duration::from_ps(8), freq, 0.0);
        let mut s = pj.sampler(0);
        assert_eq!(s.displacement(&ctx(0, 0, EdgePolarity::Rising, 1)), Duration::ZERO);
        // Quarter period -> peak amplitude.
        assert_eq!(s.displacement(&ctx(1, 2_500, EdgePolarity::Rising, 1)), Duration::from_ps(8));
        // Half period -> zero again.
        assert!(
            s.displacement(&ctx(2, 5_000, EdgePolarity::Rising, 1)).abs() < Duration::from_fs(10)
        );
        assert_eq!(pj.dj_pp(), Duration::from_ps(16));
    }

    #[test]
    fn isi_grows_with_run_length() {
        let isi = IsiJitter::from_max_ps(12.0);
        let mut s = isi.sampler(0);
        let d1 = s.displacement(&ctx(0, 0, EdgePolarity::Rising, 1));
        let d2 = s.displacement(&ctx(1, 0, EdgePolarity::Rising, 2));
        let d5 = s.displacement(&ctx(2, 0, EdgePolarity::Rising, 5));
        assert_eq!(d1, Duration::ZERO);
        assert!(d2 > d1);
        assert!(d5 > d2);
        assert!(d5 <= Duration::from_ps(12));
        assert_eq!(isi.dj_pp(), Duration::from_ps(12));
    }

    #[test]
    fn budget_composes() {
        let b = JitterBudget::new()
            .with_rj_rms_ps(3.0)
            .with_rj_rms_ps(4.0)
            .with_dcd_ps(10.0)
            .with_isi_ps(6.0);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        // 3 and 4 in quadrature = 5.
        assert_eq!(b.rj_rms(), Duration::from_ps(5));
        assert_eq!(b.dj_pp(), Duration::from_ps(16));
        let dbg = format!("{b:?}");
        assert!(dbg.contains("JitterBudget"));
    }

    #[test]
    fn budget_sampler_sums_components() {
        let b = JitterBudget::new().with_dcd_ps(10.0).with_isi_ps(12.0);
        let mut s = b.sampler(0);
        // Rising edge after a very long run: +5 (DCD) + ~12 (ISI saturated).
        let d = s.displacement(&ctx(0, 0, EdgePolarity::Rising, 50));
        assert!(d > Duration::from_ps(16) && d <= Duration::from_ps(17));
    }

    #[test]
    fn total_pp_estimate_matches_fig9() {
        // 3.2 ps rms, no DJ, 1e4 acquisitions -> ~24 ps p-p.
        let b = JitterBudget::new().with_rj_rms_ps(3.2);
        let pp = b.total_pp_estimate(10_000);
        let ps = pp.as_ps_f64();
        assert!(ps > 20.0 && ps < 27.0, "estimated p-p {ps} ps should be ~24 ps");
    }

    #[test]
    fn gaussian_extreme_grows_slowly() {
        assert_eq!(gaussian_extreme_q(1), 0.0);
        let q4 = gaussian_extreme_q(10_000);
        let q6 = gaussian_extreme_q(1_000_000);
        assert!(q4 > 3.0 && q4 < 4.2, "q(1e4) = {q4}");
        assert!(q6 > q4 && q6 < 5.2, "q(1e6) = {q6}");
    }

    #[test]
    #[should_panic(expected = "sigma must be nonnegative")]
    fn negative_sigma_panics() {
        let _ = RandomJitter::new(Duration::from_ps(-1));
    }

    #[test]
    #[should_panic(expected = "settling constant must be positive")]
    fn bad_isi_tau_panics() {
        let _ = IsiJitter::new(Duration::from_ps(1), 0.0);
    }
}
