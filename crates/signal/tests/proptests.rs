//! Property-based tests for bit streams, waveforms, and eye analysis.
//!
//! Cases are drawn from named substreams of the first-party `rng` crate, so
//! every run covers the same randomized slice of the input space
//! deterministically.

use pstime::{DataRate, Duration, Instant};
use rng::{Rng, SeedTree};
use signal::jitter::{JitterBudget, NoJitter};
use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, EyeDiagram, LevelSet};

const CASES: usize = 64;

fn cases(label: &str) -> (Rng, usize) {
    (SeedTree::new(0x51634).stream("signal.proptests").stream(label).rng(), CASES)
}

fn random_bits(rng: &mut Rng, max_len: usize) -> BitStream {
    let len = rng.range_usize(1..max_len);
    BitStream::from_fn(len, |_| rng.bool())
}

#[test]
fn interleave_deinterleave_round_trip() {
    let (mut rng, n) = cases("interleave");
    for _ in 0..n {
        let lanes_n = 1usize << rng.range_u32(1..5);
        let lane_bits = rng.range_usize(1..32);
        let lanes: Vec<BitStream> =
            (0..lanes_n).map(|_| BitStream::from_fn(lane_bits, |_| rng.bool())).collect();
        let serial = BitStream::interleave(&lanes);
        assert_eq!(serial.len(), lanes_n * lane_bits);
        assert_eq!(serial.deinterleave(lanes_n), lanes, "lanes_n={lanes_n} lane_bits={lane_bits}");
    }
}

#[test]
fn inversion_preserves_transitions() {
    let (mut rng, n) = cases("inversion");
    for _ in 0..n {
        let bits = random_bits(&mut rng, 256);
        let inv = bits.inverted();
        assert_eq!(bits.transition_count(), inv.transition_count(), "bits={bits}");
        assert_eq!(bits.count_ones() + inv.count_ones(), bits.len(), "bits={bits}");
        assert_eq!(inv.inverted(), bits);
    }
}

#[test]
fn word_round_trip() {
    let (mut rng, n) = cases("word");
    for _ in 0..n {
        let word = rng.next_u64();
        let width = rng.range_u32(1..65);
        let masked = if width == 64 { word } else { word & ((1 << width) - 1) };
        let bits = BitStream::from_word_msb_first(masked, width);
        assert_eq!(bits.word_msb_first(0, width), masked, "word={word:#x} width={width}");
    }
}

#[test]
fn hamming_distance_is_a_metric() {
    let (mut rng, n) = cases("hamming");
    for _ in 0..n {
        let a = random_bits(&mut rng, 128);
        let b = random_bits(&mut rng, 128);
        let (d_ab, len) = a.hamming_distance(&b);
        let (d_ba, len2) = b.hamming_distance(&a);
        assert_eq!(d_ab, d_ba, "a={a} b={b}");
        assert_eq!(len, len2);
        assert!(d_ab <= len);
        assert_eq!(a.hamming_distance(&a).0, 0);
    }
}

#[test]
fn waveform_edge_count_matches_transitions() {
    let (mut rng, n) = cases("edge-count");
    for _ in 0..n {
        let bits = random_bits(&mut rng, 256);
        let rate = DataRate::from_gbps(2.5);
        let w = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        assert_eq!(w.num_edges(), bits.transition_count(), "bits={bits}");
        assert_eq!(w.span(), rate.unit_interval() * bits.len() as i64);
    }
}

#[test]
fn jittered_edges_stay_ordered_and_within_half_ui() {
    let (mut rng, n) = cases("jitter-order");
    for _ in 0..n {
        let bits = random_bits(&mut rng, 512);
        let seed = rng.next_u64();
        let rj = rng.range_f64(0.0, 20.0);
        let dcd = rng.range_f64(0.0, 40.0);
        let rate = DataRate::from_gbps(2.5);
        let budget = JitterBudget::new().with_rj_rms_ps(rj).with_dcd_ps(dcd);
        let w = DigitalWaveform::from_bits(&bits, rate, &budget, seed);
        let ui = rate.unit_interval();
        let mut prev: Option<Instant> = None;
        for e in w.edges() {
            if let Some(p) = prev {
                assert!(
                    e.at > p,
                    "edges must stay strictly ordered (seed={seed} rj={rj} dcd={dcd})"
                );
            }
            prev = Some(e.at);
            // Each edge within half a UI of some grid point.
            let phase = e.at.phase_in(ui);
            let dist = phase.min(ui - phase);
            assert!(dist <= ui / 2, "seed={seed} rj={rj} dcd={dcd}");
        }
    }
}

#[test]
fn waveform_round_trips_through_mid_bit_sampling() {
    let (mut rng, n) = cases("mid-bit");
    for _ in 0..n {
        let bits = random_bits(&mut rng, 256);
        let rate = DataRate::from_gbps(2.5);
        let w = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let recovered = w.to_bits(rate, rate.unit_interval() / 2);
        assert_eq!(recovered, bits);
    }
}

#[test]
fn xor_is_commutative_and_self_cancelling() {
    let (mut rng, n) = cases("xor");
    for _ in 0..n {
        let a = random_bits(&mut rng, 64);
        let b = random_bits(&mut rng, 64);
        let rate = DataRate::from_gbps(1.0);
        let wa = DigitalWaveform::from_bits(&a, rate, &NoJitter, 0);
        let wb = DigitalWaveform::from_bits(&b, rate, &NoJitter, 0);
        assert_eq!(wa.xor(&wb), wb.xor(&wa), "a={a} b={b}");
        assert_eq!(wa.xor(&wa).num_edges(), 0);
    }
}

#[test]
fn delay_is_additive() {
    let (mut rng, n) = cases("delay");
    for _ in 0..n {
        let bits = random_bits(&mut rng, 64);
        let d1 = rng.range_i64(0..10_000);
        let d2 = rng.range_i64(0..10_000);
        let rate = DataRate::from_gbps(1.0);
        let w = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let a = w.delayed(Duration::from_ps(d1)).delayed(Duration::from_ps(d2));
        let b = w.delayed(Duration::from_ps(d1 + d2));
        assert_eq!(a, b, "d1={d1} d2={d2}");
    }
}

#[test]
fn analog_value_stays_within_extended_rails() {
    let (mut rng, n) = cases("rails");
    for _ in 0..n {
        let bits = random_bits(&mut rng, 128);
        let rise = rng.range_f64(20.0, 150.0);
        let rate = DataRate::from_gbps(2.5);
        let d = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let levels = LevelSet::pecl();
        let w = AnalogWaveform::new(d, levels, EdgeShape::from_rise_2080_ps(rise));
        // Sample a handful of points; superposition can never exceed the
        // rails (logistic sums telescope between 0 and 1 per pair).
        for i in 0..24 {
            let t = Instant::from_ps(i * 137);
            let v = w.value_at(t);
            assert!(v <= levels.voh().as_f64() + 1.0, "v={v} rise={rise}");
            assert!(v >= levels.vol().as_f64() - 1.0, "v={v} rise={rise}");
        }
    }
}

#[test]
fn eye_opening_decreases_with_jitter() {
    let (mut rng, n) = cases("eye-jitter");
    for _ in 0..n {
        let seed = rng.next_u64();
        let dcd = rng.range_f64(10.0, 60.0);
        let rate = DataRate::from_gbps(2.5);
        let bits = BitStream::alternating(512);
        let clean = {
            let d = DigitalWaveform::from_bits(&bits, rate, &NoJitter, seed);
            let w = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
            EyeDiagram::analyze(&w, rate).unwrap().opening_ui().value()
        };
        let dirty = {
            let budget = JitterBudget::new().with_dcd_ps(dcd).with_rj_rms_ps(3.0);
            let d = DigitalWaveform::from_bits(&bits, rate, &budget, seed);
            let w = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
            EyeDiagram::analyze(&w, rate).unwrap().opening_ui().value()
        };
        assert!(dirty < clean, "dirty {dirty} !< clean {clean} (seed={seed} dcd={dcd})");
    }
}

#[test]
fn level_set_invariants() {
    let (mut rng, n) = cases("level-set");
    for _ in 0..n {
        let voh = rng.range_i32(-500..500);
        let swing = rng.range_i32(2..2_000);
        let levels =
            LevelSet::new(pstime::Millivolts::new(voh), pstime::Millivolts::new(voh - swing));
        assert_eq!(levels.swing().as_mv(), swing, "voh={voh} swing={swing}");
        let mid = levels.mid();
        assert!(mid > levels.vol() && mid < levels.voh());
        assert!((levels.voh() - mid) - (mid - levels.vol()) <= pstime::Millivolts::new(1));
        // with_swing preserves the midpoint to integer-mV quantization.
        let resized = levels.with_swing(pstime::Millivolts::new(swing.max(2) / 2 + 1));
        assert!(
            (resized.mid() - levels.mid()).abs() <= pstime::Millivolts::new(1),
            "voh={voh} swing={swing}"
        );
    }
}
