//! Property-based tests for bit streams, waveforms, and eye analysis.

use proptest::collection::vec;
use proptest::prelude::*;
use pstime::{DataRate, Duration, Instant};
use signal::jitter::{JitterBudget, NoJitter};
use signal::{AnalogWaveform, BitStream, DigitalWaveform, EdgeShape, EyeDiagram, LevelSet};

fn bits_strategy(max_len: usize) -> impl Strategy<Value = BitStream> {
    vec(any::<bool>(), 1..max_len).prop_map(BitStream::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleave_deinterleave_round_trip(
        lanes_pow in 1u32..5,
        lane_bits in 1usize..32,
        seed in any::<u64>(),
    ) {
        let lanes_n = 1usize << lanes_pow;
        let lanes: Vec<BitStream> = (0..lanes_n)
            .map(|i| {
                BitStream::from_fn(lane_bits, |j| {
                    (seed.rotate_left((i * 7 + j) as u32 % 63) & 1) == 1
                })
            })
            .collect();
        let serial = BitStream::interleave(&lanes);
        prop_assert_eq!(serial.len(), lanes_n * lane_bits);
        prop_assert_eq!(serial.deinterleave(lanes_n), lanes);
    }

    #[test]
    fn inversion_preserves_transitions(bits in bits_strategy(256)) {
        let inv = bits.inverted();
        prop_assert_eq!(bits.transition_count(), inv.transition_count());
        prop_assert_eq!(bits.count_ones() + inv.count_ones(), bits.len());
        prop_assert_eq!(inv.inverted(), bits);
    }

    #[test]
    fn word_round_trip(word in any::<u64>(), width in 1u32..=64) {
        let masked = if width == 64 { word } else { word & ((1 << width) - 1) };
        let bits = BitStream::from_word_msb_first(masked, width);
        prop_assert_eq!(bits.word_msb_first(0, width), masked);
    }

    #[test]
    fn hamming_distance_is_a_metric(a in bits_strategy(128), b in bits_strategy(128)) {
        let (d_ab, n) = a.hamming_distance(&b);
        let (d_ba, n2) = b.hamming_distance(&a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert_eq!(n, n2);
        prop_assert!(d_ab <= n);
        prop_assert_eq!(a.hamming_distance(&a).0, 0);
    }

    #[test]
    fn waveform_edge_count_matches_transitions(bits in bits_strategy(256)) {
        let rate = DataRate::from_gbps(2.5);
        let w = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        prop_assert_eq!(w.num_edges(), bits.transition_count());
        prop_assert_eq!(w.span(), rate.unit_interval() * bits.len() as i64);
    }

    #[test]
    fn jittered_edges_stay_ordered_and_within_half_ui(
        bits in bits_strategy(512),
        seed in any::<u64>(),
        rj in 0.0f64..20.0,
        dcd in 0.0f64..40.0,
    ) {
        let rate = DataRate::from_gbps(2.5);
        let budget = JitterBudget::new().with_rj_rms_ps(rj).with_dcd_ps(dcd);
        let w = DigitalWaveform::from_bits(&bits, rate, &budget, seed);
        let ui = rate.unit_interval();
        let mut prev: Option<Instant> = None;
        for e in w.edges() {
            if let Some(p) = prev {
                prop_assert!(e.at > p, "edges must stay strictly ordered");
            }
            prev = Some(e.at);
            // Each edge within half a UI of some grid point.
            let phase = e.at.phase_in(ui);
            let dist = phase.min(ui - phase);
            prop_assert!(dist <= ui / 2);
        }
    }

    #[test]
    fn waveform_round_trips_through_mid_bit_sampling(bits in bits_strategy(256)) {
        let rate = DataRate::from_gbps(2.5);
        let w = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let recovered = w.to_bits(rate, rate.unit_interval() / 2);
        prop_assert_eq!(recovered, bits);
    }

    #[test]
    fn xor_is_commutative_and_self_cancelling(
        a in bits_strategy(64),
        b in bits_strategy(64),
    ) {
        let rate = DataRate::from_gbps(1.0);
        let wa = DigitalWaveform::from_bits(&a, rate, &NoJitter, 0);
        let wb = DigitalWaveform::from_bits(&b, rate, &NoJitter, 0);
        prop_assert_eq!(wa.xor(&wb), wb.xor(&wa));
        prop_assert_eq!(wa.xor(&wa).num_edges(), 0);
    }

    #[test]
    fn delay_is_additive(bits in bits_strategy(64), d1 in 0i64..10_000, d2 in 0i64..10_000) {
        let rate = DataRate::from_gbps(1.0);
        let w = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let a = w.delayed(Duration::from_ps(d1)).delayed(Duration::from_ps(d2));
        let b = w.delayed(Duration::from_ps(d1 + d2));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn analog_value_stays_within_extended_rails(
        bits in bits_strategy(128),
        rise in 20.0f64..150.0,
    ) {
        let rate = DataRate::from_gbps(2.5);
        let d = DigitalWaveform::from_bits(&bits, rate, &NoJitter, 0);
        let levels = LevelSet::pecl();
        let w = AnalogWaveform::new(d, levels, EdgeShape::from_rise_2080_ps(rise));
        // Sample a handful of points; superposition can never exceed the
        // rails (logistic sums telescope between 0 and 1 per pair).
        for i in 0..24 {
            let t = Instant::from_ps(i * 137);
            let v = w.value_at(t);
            prop_assert!(v <= levels.voh().as_f64() + 1.0, "v={v}");
            prop_assert!(v >= levels.vol().as_f64() - 1.0, "v={v}");
        }
    }

    #[test]
    fn eye_opening_decreases_with_jitter(seed in any::<u64>(), dcd in 10.0f64..60.0) {
        let rate = DataRate::from_gbps(2.5);
        let bits = BitStream::alternating(512);
        let clean = {
            let d = DigitalWaveform::from_bits(&bits, rate, &NoJitter, seed);
            let w = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
            EyeDiagram::analyze(&w, rate).unwrap().opening_ui().value()
        };
        let dirty = {
            let budget = JitterBudget::new().with_dcd_ps(dcd).with_rj_rms_ps(3.0);
            let d = DigitalWaveform::from_bits(&bits, rate, &budget, seed);
            let w = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
            EyeDiagram::analyze(&w, rate).unwrap().opening_ui().value()
        };
        prop_assert!(dirty < clean, "dirty {dirty} !< clean {clean}");
    }

    #[test]
    fn level_set_invariants(voh in -500i32..500, swing in 2i32..2_000) {
        let levels = LevelSet::new(
            pstime::Millivolts::new(voh),
            pstime::Millivolts::new(voh - swing),
        );
        prop_assert_eq!(levels.swing().as_mv(), swing);
        let mid = levels.mid();
        prop_assert!(mid > levels.vol() && mid < levels.voh());
        prop_assert!((levels.voh() - mid) - (mid - levels.vol()) <= pstime::Millivolts::new(1));
        // with_swing preserves the midpoint to integer-mV quantization.
        let resized = levels.with_swing(pstime::Millivolts::new(swing.max(2) / 2 + 1));
        prop_assert!((resized.mid() - levels.mid()).abs() <= pstime::Millivolts::new(1));
    }
}
