//! Property-based tests for the time/rate/voltage unit types.
//!
//! Driven by the first-party `rng` crate instead of an external property
//! framework: each test draws its cases from a named, seeded substream, so
//! every run exercises the same (broad) slice of the input space and a
//! failure is reproducible from the assert message's case values alone.

use pstime::{DataRate, Duration, Frequency, Instant, Millivolts, UnitInterval};
use rng::{Rng, SeedTree};

// Keep magnitudes below i64::MAX/4 femtoseconds so sums cannot overflow.
const FS_BOUND: i64 = i64::MAX / 4;

const CASES: usize = 256;

fn cases(label: &str) -> (Rng, usize) {
    (SeedTree::new(0x9575).stream("pstime.proptests").stream(label).rng(), CASES)
}

#[test]
fn duration_addition_is_commutative() {
    let (mut rng, n) = cases("add-commutative");
    for _ in 0..n {
        let a = rng.range_i64(-FS_BOUND..FS_BOUND);
        let b = rng.range_i64(-FS_BOUND..FS_BOUND);
        let (x, y) = (Duration::from_fs(a), Duration::from_fs(b));
        assert_eq!(x + y, y + x, "a={a} b={b}");
    }
}

#[test]
fn duration_addition_is_associative() {
    let (mut rng, n) = cases("add-associative");
    for _ in 0..n {
        let a = rng.range_i64(-FS_BOUND / 2..FS_BOUND / 2);
        let b = rng.range_i64(-FS_BOUND / 2..FS_BOUND / 2);
        let c = rng.range_i64(-FS_BOUND / 2..FS_BOUND / 2);
        let (x, y, z) = (Duration::from_fs(a), Duration::from_fs(b), Duration::from_fs(c));
        assert_eq!((x + y) + z, x + (y + z), "a={a} b={b} c={c}");
    }
}

#[test]
fn duration_negation_is_involutive() {
    let (mut rng, n) = cases("negation");
    for _ in 0..n {
        let a = rng.range_i64(-FS_BOUND..FS_BOUND);
        let x = Duration::from_fs(a);
        assert_eq!(-(-x), x, "a={a}");
        assert_eq!(x + (-x), Duration::ZERO, "a={a}");
    }
}

#[test]
fn rem_euclid_is_a_valid_phase() {
    let (mut rng, n) = cases("rem-euclid");
    for _ in 0..n {
        let a = rng.range_i64(-FS_BOUND..FS_BOUND);
        let m = rng.range_i64(1..1_000_000_000);
        let phase = Duration::from_fs(a).rem_euclid(Duration::from_fs(m));
        assert!(phase >= Duration::ZERO, "a={a} m={m}");
        assert!(phase < Duration::from_fs(m), "a={a} m={m}");
        // Congruence: a - phase is a multiple of m.
        assert_eq!((a - phase.as_fs()).rem_euclid(m), 0, "a={a} m={m}");
    }
}

#[test]
fn round_to_lands_on_grid_within_half_step() {
    let (mut rng, n) = cases("round-to");
    for _ in 0..n {
        let a = rng.range_i64(-1_000_000_000..1_000_000_000);
        let step = rng.range_i64(1..100_000);
        let d = Duration::from_fs(a);
        let s = Duration::from_fs(step);
        let rounded = d.round_to(s);
        assert_eq!(rounded.as_fs().rem_euclid(step), 0, "a={a} step={step}");
        assert!((rounded - d).abs().as_fs() * 2 <= step, "a={a} step={step}");
    }
}

#[test]
fn instant_duration_algebra() {
    let (mut rng, n) = cases("instant-algebra");
    for _ in 0..n {
        let a = rng.range_i64(-FS_BOUND..FS_BOUND);
        let b = rng.range_i64(-FS_BOUND / 2..FS_BOUND / 2);
        let t = Instant::from_fs(a);
        let d = Duration::from_fs(b);
        assert_eq!((t + d) - t, d, "a={a} b={b}");
        assert_eq!((t + d) - d, t, "a={a} b={b}");
        assert_eq!(t.since(t + d), -d, "a={a} b={b}");
    }
}

#[test]
fn phase_in_is_stable_under_period_shifts() {
    let (mut rng, n) = cases("phase-in");
    for _ in 0..n {
        let a = rng.range_i64(-1_000_000_000..1_000_000_000);
        let period = rng.range_i64(1..10_000_000);
        let k = rng.range_i64(-100..100);
        let t = Instant::from_fs(a);
        let p = Duration::from_fs(period);
        let shifted = t + p * k;
        assert_eq!(t.phase_in(p), shifted.phase_in(p), "a={a} period={period} k={k}");
    }
}

#[test]
fn data_rate_ui_inverse() {
    // Rates 0.1..20 Gbps: UI * rate ≈ 1 second-in-fs within rounding.
    for gbps_tenths in 1u64..200 {
        let rate = DataRate::from_bps(gbps_tenths * 100_000_000);
        let ui = rate.unit_interval();
        let product = ui.as_fs() as i128 * rate.as_bps() as i128;
        let one_second = 1_000_000_000_000_000i128;
        assert!((product - one_second).abs() <= rate.as_bps() as i128, "gbps_tenths={gbps_tenths}");
    }
}

#[test]
fn demux_aggregate_round_trip() {
    let (mut rng, n) = cases("demux-aggregate");
    for _ in 0..n {
        let bps = rng.range_u64(1_000_000..10_000_000_000);
        let ways = rng.range_u64(1..64);
        let rate = DataRate::from_bps(bps * ways); // exactly divisible
        assert_eq!(rate.demux(ways).aggregate(ways), rate, "bps={bps} ways={ways}");
    }
}

#[test]
fn frequency_divide_multiply() {
    let (mut rng, n) = cases("freq-div-mul");
    for _ in 0..n {
        let hz = rng.range_u64(1_000..10_000_000_000);
        let div = rng.range_u64(1..1000);
        let f = Frequency::from_hz(hz * div);
        assert_eq!(f.divide(div).multiply(div), f, "hz={hz} div={div}");
    }
}

#[test]
fn unit_interval_round_trips_at_rate() {
    let (mut rng, n) = cases("ui-round-trip");
    for _ in 0..n {
        let frac = rng.f64();
        let gbps_tenths = rng.range_u64(1..100);
        let rate = DataRate::from_bps(gbps_tenths * 100_000_000);
        let ui = UnitInterval::new(frac);
        let back = UnitInterval::from_duration(ui.at_rate(rate), rate);
        assert!((back.value() - frac).abs() < 1e-5, "frac={frac} gbps_tenths={gbps_tenths}");
    }
}

#[test]
fn millivolt_algebra() {
    let (mut rng, n) = cases("millivolts");
    for _ in 0..n {
        let a = rng.range_i32(-100_000..100_000);
        let b = rng.range_i32(-100_000..100_000);
        let (x, y) = (Millivolts::new(a), Millivolts::new(b));
        assert_eq!(x + y, y + x, "a={a} b={b}");
        assert_eq!((x + y) - y, x, "a={a} b={b}");
        // Midpoint is between the two values.
        let mid = x.midpoint(y);
        assert!(mid >= x.min(y) && mid <= x.max(y), "a={a} b={b}");
    }
}

#[test]
fn display_never_panics() {
    let (mut rng, n) = cases("display");
    for _ in 0..n {
        let a = rng.range_i64(-FS_BOUND..FS_BOUND);
        let _ = Duration::from_fs(a).to_string();
        let _ = Instant::from_fs(a).to_string();
    }
    // And the extremes of the allowed range.
    for a in [-FS_BOUND, -1, 0, 1, FS_BOUND - 1] {
        let _ = Duration::from_fs(a).to_string();
        let _ = Instant::from_fs(a).to_string();
    }
}
