//! Property-based tests for the time/rate/voltage unit types.

use proptest::prelude::*;
use pstime::{DataRate, Duration, Frequency, Instant, Millivolts, UnitInterval};

// Keep magnitudes below i64::MAX/4 femtoseconds so sums cannot overflow.
const FS_BOUND: i64 = i64::MAX / 4;

proptest! {
    #[test]
    fn duration_addition_is_commutative(a in -FS_BOUND..FS_BOUND, b in -FS_BOUND..FS_BOUND) {
        let (x, y) = (Duration::from_fs(a), Duration::from_fs(b));
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn duration_addition_is_associative(
        a in -FS_BOUND / 2..FS_BOUND / 2,
        b in -FS_BOUND / 2..FS_BOUND / 2,
        c in -FS_BOUND / 2..FS_BOUND / 2,
    ) {
        let (x, y, z) = (Duration::from_fs(a), Duration::from_fs(b), Duration::from_fs(c));
        prop_assert_eq!((x + y) + z, x + (y + z));
    }

    #[test]
    fn duration_negation_is_involutive(a in -FS_BOUND..FS_BOUND) {
        let x = Duration::from_fs(a);
        prop_assert_eq!(-(-x), x);
        prop_assert_eq!(x + (-x), Duration::ZERO);
    }

    #[test]
    fn rem_euclid_is_a_valid_phase(a in -FS_BOUND..FS_BOUND, m in 1i64..1_000_000_000) {
        let phase = Duration::from_fs(a).rem_euclid(Duration::from_fs(m));
        prop_assert!(phase >= Duration::ZERO);
        prop_assert!(phase < Duration::from_fs(m));
        // Congruence: a - phase is a multiple of m.
        prop_assert_eq!((a - phase.as_fs()).rem_euclid(m), 0);
    }

    #[test]
    fn round_to_lands_on_grid_within_half_step(
        a in -1_000_000_000i64..1_000_000_000,
        step in 1i64..100_000,
    ) {
        let d = Duration::from_fs(a);
        let s = Duration::from_fs(step);
        let rounded = d.round_to(s);
        prop_assert_eq!(rounded.as_fs().rem_euclid(step), 0);
        prop_assert!((rounded - d).abs().as_fs() * 2 <= step);
    }

    #[test]
    fn instant_duration_algebra(a in -FS_BOUND..FS_BOUND, b in -FS_BOUND / 2..FS_BOUND / 2) {
        let t = Instant::from_fs(a);
        let d = Duration::from_fs(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!(t.since(t + d), -d);
    }

    #[test]
    fn phase_in_is_stable_under_period_shifts(
        a in -1_000_000_000i64..1_000_000_000,
        period in 1i64..10_000_000,
        k in -100i64..100,
    ) {
        let t = Instant::from_fs(a);
        let p = Duration::from_fs(period);
        let shifted = t + p * k;
        prop_assert_eq!(t.phase_in(p), shifted.phase_in(p));
    }

    #[test]
    fn data_rate_ui_inverse(gbps_tenths in 1u64..200) {
        // Rates 0.1..20 Gbps: UI * rate ≈ 1 second-in-fs within rounding.
        let rate = DataRate::from_bps(gbps_tenths * 100_000_000);
        let ui = rate.unit_interval();
        let product = ui.as_fs() as i128 * rate.as_bps() as i128;
        let one_second = 1_000_000_000_000_000i128;
        prop_assert!((product - one_second).abs() <= rate.as_bps() as i128);
    }

    #[test]
    fn demux_aggregate_round_trip(bps in 1_000_000u64..10_000_000_000, ways in 1u64..64) {
        let rate = DataRate::from_bps(bps * ways); // exactly divisible
        prop_assert_eq!(rate.demux(ways).aggregate(ways), rate);
    }

    #[test]
    fn frequency_divide_multiply(hz in 1_000u64..10_000_000_000, div in 1u64..1000) {
        let f = Frequency::from_hz(hz * div);
        prop_assert_eq!(f.divide(div).multiply(div), f);
    }

    #[test]
    fn unit_interval_round_trips_at_rate(frac in 0.0f64..1.0, gbps_tenths in 1u64..100) {
        let rate = DataRate::from_bps(gbps_tenths * 100_000_000);
        let ui = UnitInterval::new(frac);
        let back = UnitInterval::from_duration(ui.at_rate(rate), rate);
        prop_assert!((back.value() - frac).abs() < 1e-5);
    }

    #[test]
    fn millivolt_algebra(a in -100_000i32..100_000, b in -100_000i32..100_000) {
        let (x, y) = (Millivolts::new(a), Millivolts::new(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y) - y, x);
        // Midpoint is between the two values.
        let mid = x.midpoint(y);
        prop_assert!(mid >= x.min(y) && mid <= x.max(y));
    }

    #[test]
    fn display_never_panics(a in -FS_BOUND..FS_BOUND) {
        let _ = Duration::from_fs(a).to_string();
        let _ = Instant::from_fs(a).to_string();
    }
}
