//! Dimensionless unit-interval fractions.

use core::fmt;
use core::ops::{Add, Mul, Sub};

use crate::{DataRate, Duration};

/// A dimensionless fraction of one bit period (unit interval, UI).
///
/// Eye-diagram results in the paper are quoted in UI: "a usable eye opening
/// of 0.88 UI" at 2.5 Gbps, degrading to 0.75 UI at 5 Gbps. A `UnitInterval`
/// is meaningless without a data rate; [`UnitInterval::at_rate`] converts to
/// absolute time once the rate is known.
///
/// # Examples
///
/// ```
/// use pstime::{DataRate, Duration, UnitInterval};
///
/// let opening = UnitInterval::new(0.88);
/// let abs = opening.at_rate(DataRate::from_gbps(2.5));
/// assert_eq!(abs, Duration::from_ps(352));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct UnitInterval(f64);

impl UnitInterval {
    /// Zero UI.
    pub const ZERO: UnitInterval = UnitInterval(0.0);
    /// One full bit period.
    pub const ONE: UnitInterval = UnitInterval(1.0);

    /// Creates a UI fraction.
    ///
    /// # Panics
    ///
    /// Panics if `ui` is not finite.
    #[inline]
    pub fn new(ui: f64) -> Self {
        assert!(ui.is_finite(), "UI fraction must be finite");
        UnitInterval(ui)
    }

    /// Expresses an absolute span as a fraction of the unit interval at
    /// `rate`.
    #[inline]
    pub fn from_duration(span: Duration, rate: DataRate) -> Self {
        UnitInterval::new(span.ratio(rate.unit_interval()))
    }

    /// The raw fraction.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to absolute time at a given data rate, rounded to 1 fs.
    #[inline]
    pub fn at_rate(self, rate: DataRate) -> Duration {
        rate.unit_interval().mul_f64(self.0)
    }

    /// Clamps into `[0, 1]` — useful after subtracting jitter from an ideal
    /// opening.
    #[inline]
    pub fn clamp_unit(self) -> UnitInterval {
        UnitInterval(self.0.clamp(0.0, 1.0))
    }
}

impl Add for UnitInterval {
    type Output = UnitInterval;
    #[inline]
    fn add(self, rhs: UnitInterval) -> UnitInterval {
        UnitInterval(self.0 + rhs.0)
    }
}

impl Sub for UnitInterval {
    type Output = UnitInterval;
    #[inline]
    fn sub(self, rhs: UnitInterval) -> UnitInterval {
        UnitInterval(self.0 - rhs.0)
    }
}

impl Mul<f64> for UnitInterval {
    type Output = UnitInterval;
    #[inline]
    fn mul(self, rhs: f64) -> UnitInterval {
        UnitInterval(self.0 * rhs)
    }
}

impl fmt::Display for UnitInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} UI", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let rate = DataRate::from_gbps(2.5);
        assert_eq!(UnitInterval::new(0.5).at_rate(rate), Duration::from_ps(200));
        let ui = UnitInterval::from_duration(Duration::from_ps(100), rate);
        assert!((ui.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_eye_openings() {
        // Fig. 7: 46.7 ps p-p jitter at 2.5 Gbps eats ~0.12 UI.
        let rate = DataRate::from_gbps(2.5);
        let jitter_ui = UnitInterval::from_duration(Duration::from_ps_f64(46.7), rate);
        let opening = (UnitInterval::ONE - jitter_ui).clamp_unit();
        assert!((opening.value() - 0.88).abs() < 0.005);

        // Fig. 19: ~50 ps at 5 Gbps leaves ~0.75 UI.
        let rate5 = DataRate::from_gbps(5.0);
        let opening5 = (UnitInterval::ONE
            - UnitInterval::from_duration(Duration::from_ps(50), rate5))
        .clamp_unit();
        assert!((opening5.value() - 0.75).abs() < 0.005);
    }

    #[test]
    fn arithmetic_and_display() {
        let a = UnitInterval::new(0.4) + UnitInterval::new(0.2);
        assert!((a.value() - 0.6).abs() < 1e-12);
        let b = a * 0.5;
        assert!((b.value() - 0.3).abs() < 1e-12);
        assert_eq!(UnitInterval::new(0.88).to_string(), "0.88 UI");
        assert_eq!(UnitInterval::new(1.5).clamp_unit(), UnitInterval::ONE);
        assert_eq!(UnitInterval::new(-0.5).clamp_unit(), UnitInterval::ZERO);
    }

    #[test]
    #[should_panic(expected = "UI fraction must be finite")]
    fn non_finite_panics() {
        let _ = UnitInterval::new(f64::NAN);
    }
}
