//! Exact frequencies and data rates.

use core::fmt;

use crate::{Duration, FS_PER_S};

/// Unsigned twin of [`FS_PER_S`] for period math on `u64` rates.
const FS_PER_S_U64: u64 = 1_000_000_000_000_000;
const _: () = assert!(FS_PER_S == 1_000_000_000_000_000);

/// Rounds an asserted-positive, finite hertz/bps value to an exact count.
fn round_to_u64(x: f64) -> u64 {
    x.round() as u64 // xlint::allow(no-lossy-cast, callers assert the value is positive and finite and the saturating float cast is the intended rounding)
}

/// Approximate `f64` view of an exact count, for display and ratio math.
fn approx_f64(n: u64) -> f64 {
    n as f64 // xlint::allow(no-lossy-cast, approximate read-only view; exact below 2^53 which covers every rate in the paper)
}

/// An exact frequency in hertz.
///
/// All clock rates in the reproduced paper (12 MHz crystal, 0.5–2.5 GHz RF
/// reference, 1.25 GHz mini-tester clock) divide 10¹⁵ evenly, so their
/// periods are exact femtosecond counts.
///
/// # Examples
///
/// ```
/// use pstime::{Duration, Frequency};
///
/// let rf = Frequency::from_ghz(1.25);
/// assert_eq!(rf.period(), Duration::from_ps(800));
/// assert_eq!(rf.to_string(), "1.250 GHz");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from exact hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[inline]
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be nonzero");
        Frequency(hz)
    }

    /// Creates a frequency from exact kilohertz.
    #[inline]
    pub fn from_khz(khz: u64) -> Self {
        Frequency::from_hz(khz * 1_000)
    }

    /// Creates a frequency from exact megahertz.
    #[inline]
    pub fn from_mhz(mhz: u64) -> Self {
        Frequency::from_hz(mhz * 1_000_000)
    }

    /// Creates a frequency from fractional gigahertz, rounded to 1 Hz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not positive and finite.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Frequency::from_hz(round_to_u64(ghz * 1e9))
    }

    /// The frequency in exact hertz.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// The frequency as fractional gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        approx_f64(self.0) / 1e9
    }

    /// The period, rounded to the nearest femtosecond.
    ///
    /// Exact (no rounding) whenever the frequency divides 10¹⁵ Hz·fs, which
    /// holds for every clock in the paper.
    #[inline]
    pub fn period(self) -> Duration {
        let hz = self.0;
        let fs = (FS_PER_S_U64 + hz / 2) / hz;
        Duration::from_fs(i64::try_from(fs).unwrap_or(i64::MAX))
    }

    /// Frequency divided by an integer (a clock divider), rounded to 1 Hz.
    ///
    /// # Panics
    ///
    /// Panics if `div` is zero or the result would round to 0 Hz.
    #[inline]
    pub fn divide(self, div: u64) -> Frequency {
        assert!(div > 0, "clock divider must be nonzero");
        Frequency::from_hz(self.0 / div)
    }

    /// Frequency multiplied by an integer (a PLL multiplier).
    #[inline]
    pub fn multiply(self, mult: u64) -> Frequency {
        Frequency::from_hz(self.0 * mult)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hz = self.0;
        if hz >= 1_000_000_000 {
            write!(f, "{:.3} GHz", approx_f64(hz) / 1e9)
        } else if hz >= 1_000_000 {
            write!(f, "{:.3} MHz", approx_f64(hz) / 1e6)
        } else if hz >= 1_000 {
            write!(f, "{:.3} kHz", approx_f64(hz) / 1e3)
        } else {
            write!(f, "{hz} Hz")
        }
    }
}

/// An exact serial data rate in bits per second.
///
/// Distinct from [`Frequency`] because a bit rate and a clock rate differ by
/// the DDR factor: the paper's 2.5 Gbps streams are clocked by a 1.25 GHz RF
/// reference (both edges carry data through the final PECL mux).
///
/// # Examples
///
/// ```
/// use pstime::{DataRate, Duration};
///
/// let r = DataRate::from_gbps(5.0);
/// assert_eq!(r.unit_interval(), Duration::from_ps(200));
/// assert_eq!(r.ddr_clock().period(), Duration::from_ps(400));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataRate(u64);

impl DataRate {
    /// Creates a data rate from exact bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    #[inline]
    pub fn from_bps(bps: u64) -> Self {
        assert!(bps > 0, "data rate must be nonzero");
        DataRate(bps)
    }

    /// Creates a data rate from exact megabits per second.
    #[inline]
    pub fn from_mbps(mbps: u64) -> Self {
        DataRate::from_bps(mbps * 1_000_000)
    }

    /// Creates a data rate from fractional gigabits per second, rounded to
    /// 1 bps.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive and finite.
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        assert!(gbps.is_finite() && gbps > 0.0, "data rate must be positive");
        DataRate::from_bps(round_to_u64(gbps * 1e9))
    }

    /// The rate in exact bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// The rate as fractional gigabits per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        approx_f64(self.0) / 1e9
    }

    /// The unit interval (one bit period), rounded to the nearest
    /// femtosecond.
    #[inline]
    pub fn unit_interval(self) -> Duration {
        let fs = (FS_PER_S_U64 + self.0 / 2) / self.0;
        Duration::from_fs(i64::try_from(fs).unwrap_or(i64::MAX))
    }

    /// The half-rate clock that drives this stream through a DDR output
    /// stage (the paper's final 2:1 PECL mux toggles on both clock edges).
    #[inline]
    pub fn ddr_clock(self) -> Frequency {
        Frequency::from_hz(self.0 / 2)
    }

    /// The full-rate clock (one edge per bit).
    #[inline]
    pub fn sdr_clock(self) -> Frequency {
        Frequency::from_hz(self.0)
    }

    /// The per-lane rate when this stream is demultiplexed `ways` ways — the
    /// rate each FPGA I/O pin must sustain before the PECL mux tree.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    #[inline]
    pub fn demux(self, ways: u64) -> DataRate {
        assert!(ways > 0, "demux ways must be nonzero");
        DataRate::from_bps(self.0 / ways)
    }

    /// The aggregate rate of `lanes` parallel streams at this rate.
    #[inline]
    pub fn aggregate(self, lanes: u64) -> DataRate {
        DataRate::from_bps(self.0 * lanes)
    }

    /// Number of whole unit intervals in `span`.
    #[inline]
    pub fn bits_in(self, span: Duration) -> i64 {
        span / self.unit_interval()
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1_000_000_000_000 {
            write!(f, "{:.3} Tbps", approx_f64(bps) / 1e12)
        } else if bps >= 1_000_000_000 {
            write!(f, "{:.3} Gbps", approx_f64(bps) / 1e9)
        } else if bps >= 1_000_000 {
            write!(f, "{:.1} Mbps", approx_f64(bps) / 1e6)
        } else {
            write!(f, "{bps} bps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_periods_are_exact() {
        assert_eq!(Frequency::from_mhz(12).period(), Duration::from_ns_f64(1000.0 / 12.0));
        assert_eq!(Frequency::from_ghz(1.25).period(), Duration::from_ps(800));
        assert_eq!(Frequency::from_ghz(2.5).period(), Duration::from_ps(400));
        assert_eq!(Frequency::from_mhz(500).period(), Duration::from_ns(2));
    }

    #[test]
    fn paper_unit_intervals() {
        assert_eq!(DataRate::from_gbps(2.5).unit_interval(), Duration::from_ps(400));
        assert_eq!(DataRate::from_gbps(4.0).unit_interval(), Duration::from_ps(250));
        assert_eq!(DataRate::from_gbps(5.0).unit_interval(), Duration::from_ps(200));
        assert_eq!(DataRate::from_gbps(1.0).unit_interval(), Duration::from_ps(1000));
        assert_eq!(DataRate::from_mbps(400).unit_interval(), Duration::from_ps(2500));
    }

    #[test]
    fn ddr_relationship() {
        // 5 Gbps stream driven by a 2.5 GHz DDR clock.
        let r = DataRate::from_gbps(5.0);
        assert_eq!(r.ddr_clock(), Frequency::from_ghz(2.5));
        assert_eq!(r.sdr_clock().as_hz(), 5_000_000_000);
    }

    #[test]
    fn mux_tree_rates() {
        // Paper §4: 16 CMOS signals at 312.5 Mbps -> 5 Gbps serial.
        let out = DataRate::from_gbps(5.0);
        let lane = out.demux(16);
        assert_eq!(lane.as_bps(), 312_500_000);
        assert_eq!(lane.aggregate(16), out);
    }

    #[test]
    fn divide_multiply() {
        let f = Frequency::from_ghz(2.5);
        assert_eq!(f.divide(2), Frequency::from_ghz(1.25));
        assert_eq!(f.multiply(2), Frequency::from_ghz(5.0));
    }

    #[test]
    fn bits_in_span() {
        let r = DataRate::from_gbps(2.5);
        assert_eq!(r.bits_in(Duration::from_ns_f64(25.6)), 64);
    }

    #[test]
    fn display() {
        assert_eq!(Frequency::from_ghz(1.25).to_string(), "1.250 GHz");
        assert_eq!(Frequency::from_mhz(12).to_string(), "12.000 MHz");
        assert_eq!(Frequency::from_khz(32).to_string(), "32.000 kHz");
        assert_eq!(Frequency::from_hz(50).to_string(), "50 Hz");
        assert_eq!(DataRate::from_gbps(2.5).to_string(), "2.500 Gbps");
        assert_eq!(DataRate::from_mbps(400).to_string(), "400.0 Mbps");
        assert_eq!(DataRate::from_bps(100).to_string(), "100 bps");
        assert_eq!(DataRate::from_gbps(2.5).aggregate(400).to_string(), "1.000 Tbps");
    }

    #[test]
    #[should_panic(expected = "frequency must be nonzero")]
    fn zero_frequency_panics() {
        let _ = Frequency::from_hz(0);
    }

    #[test]
    #[should_panic(expected = "data rate must be nonzero")]
    fn zero_rate_panics() {
        let _ = DataRate::from_bps(0);
    }

    #[test]
    fn accessors() {
        assert!((Frequency::from_ghz(1.25).as_ghz() - 1.25).abs() < 1e-12);
        assert!((DataRate::from_gbps(4.0).as_gbps() - 4.0).abs() < 1e-12);
    }
}
