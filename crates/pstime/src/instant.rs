//! Absolute femtosecond timestamps.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use crate::Duration;

/// An absolute timestamp on the simulation timeline, in femtoseconds.
///
/// Time zero is the start of the current test burst (the first active clock
/// edge out of the Digital Logic Core). Instants may be negative: pre-clock
/// cycles emitted before the burst origin (Fig. 4's "pre-clocks for receiver
/// start-up") naturally live at negative time.
///
/// `Instant − Instant = Duration` and `Instant ± Duration = Instant`; two
/// instants cannot be added, which keeps timeline arithmetic honest.
///
/// # Examples
///
/// ```
/// use pstime::{Duration, Instant};
///
/// let origin = Instant::ZERO;
/// let edge = origin + Duration::from_ps(400);
/// assert_eq!(edge - origin, Duration::from_ps(400));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(i64);

impl Instant {
    /// The burst origin.
    pub const ZERO: Instant = Instant(0);
    /// Latest representable instant.
    pub const MAX: Instant = Instant(i64::MAX);
    /// Earliest representable instant.
    pub const MIN: Instant = Instant(i64::MIN);

    /// Creates an instant at an exact femtosecond offset from the origin.
    #[inline]
    pub const fn from_fs(fs: i64) -> Self {
        Instant(fs)
    }

    /// Creates an instant at an exact picosecond offset from the origin.
    #[inline]
    pub const fn from_ps(ps: i64) -> Self {
        Instant(ps * crate::FS_PER_PS)
    }

    /// Creates an instant at an exact nanosecond offset from the origin.
    #[inline]
    pub const fn from_ns(ns: i64) -> Self {
        Instant(ns * crate::FS_PER_NS)
    }

    /// Creates an instant from fractional picoseconds, rounded to 1 fs.
    #[inline]
    pub fn from_ps_f64(ps: f64) -> Self {
        Instant((ps * crate::FS_PER_PS as f64).round() as i64) // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Femtosecond offset from the origin.
    #[inline]
    pub const fn as_fs(self) -> i64 {
        self.0
    }

    /// Offset from the origin as fractional picoseconds.
    #[inline]
    pub fn as_ps_f64(self) -> f64 {
        self.0 as f64 / crate::FS_PER_PS as f64 // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Offset from the origin as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / crate::FS_PER_NS as f64 // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// The span from the origin to this instant.
    #[inline]
    pub const fn elapsed(self) -> Duration {
        Duration::from_fs(self.0)
    }

    /// Signed span from `earlier` to `self`.
    #[inline]
    pub fn since(self, earlier: Instant) -> Duration {
        Duration::from_fs(self.0 - earlier.0)
    }

    /// Checked offset; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, d: Duration) -> Option<Instant> {
        match self.0.checked_add(d.as_fs()) {
            Some(v) => Some(Instant(v)),
            None => None,
        }
    }

    /// Folds this instant into a repeating window of length `period`,
    /// returning the phase offset in `[ZERO, period)`.
    ///
    /// This is the core of eye-diagram folding: every sample time maps to
    /// its position within one unit interval.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[inline]
    pub const fn phase_in(self, period: Duration) -> Duration {
        Duration::from_fs(self.0.rem_euclid(period.as_fs()))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Instant) -> Instant {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Instant) -> Instant {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.as_fs())
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_fs();
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0 - rhs.as_fs())
    }
}

impl SubAssign<Duration> for Instant {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.as_fs();
    }
}

impl Sub for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        Duration::from_fs(self.0 - rhs.0)
    }
}

impl From<Duration> for Instant {
    /// Interprets a span from the origin as an absolute instant.
    #[inline]
    fn from(d: Duration) -> Instant {
        Instant(d.as_fs())
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Duration::from_fs(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Instant::from_ps(100);
        assert_eq!(t + Duration::from_ps(50), Instant::from_ps(150));
        assert_eq!(t - Duration::from_ps(50), Instant::from_ps(50));
        assert_eq!(Instant::from_ps(150) - t, Duration::from_ps(50));
        assert_eq!(t.since(Instant::from_ps(150)), Duration::from_ps(-50));
    }

    #[test]
    fn assign_ops() {
        let mut t = Instant::ZERO;
        t += Duration::from_ps(7);
        assert_eq!(t, Instant::from_ps(7));
        t -= Duration::from_ps(10);
        assert_eq!(t, Instant::from_ps(-3));
    }

    #[test]
    fn phase_folding() {
        let ui = Duration::from_ps(400);
        assert_eq!(Instant::from_ps(810).phase_in(ui), Duration::from_ps(10));
        assert_eq!(Instant::from_ps(-10).phase_in(ui), Duration::from_ps(390));
        assert_eq!(Instant::ZERO.phase_in(ui), Duration::ZERO);
    }

    #[test]
    fn negative_pre_clock_instants() {
        // Fig. 4 pre-clocks live before the burst origin.
        let pre = Instant::ZERO - Duration::from_ps(5 * 400);
        assert_eq!(pre.as_fs(), -2_000_000);
        assert!(pre < Instant::ZERO);
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Instant::from_ns(1).as_fs(), 1_000_000);
        assert!((Instant::from_ps(250).as_ps_f64() - 250.0).abs() < 1e-12);
        assert!((Instant::from_ps(2500).as_ns_f64() - 2.5).abs() < 1e-12);
        assert_eq!(Instant::from_ps_f64(10.4), Instant::from_fs(10_400));
        assert_eq!(Instant::from_ps(24).to_string(), "t=24 ps");
        assert_eq!(Instant::from(Duration::from_ps(9)), Instant::from_ps(9));
    }

    #[test]
    fn checked_and_minmax() {
        assert_eq!(Instant::MAX.checked_add(Duration::from_fs(1)), None);
        let a = Instant::from_ps(1);
        let b = Instant::from_ps(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.elapsed(), Duration::from_ps(1));
    }
}
