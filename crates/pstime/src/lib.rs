//! # gigatest-pstime — picosecond-domain units for multi-gigahertz test simulation
//!
//! Foundation crate for the Gigatest workspace (a software reproduction of
//! Keezer et al., *Low-Cost Multi-Gigahertz Test Systems Using CMOS FPGAs and
//! PECL*, DATE 2005). Everything in the paper lives in the picosecond domain:
//! 10 ps programmable-delay steps, 400 ps unit intervals at 2.5 Gbps, 200 ps
//! at 5 Gbps, 3.2 ps rms edge jitter. Floating-point nanoseconds accumulate
//! rounding error across the millions of unit intervals an eye-diagram fold
//! consumes, so this crate provides **exact integer femtosecond arithmetic**:
//!
//! * [`Duration`] — a signed span of time in femtoseconds (1 fs = 10⁻¹⁵ s).
//! * [`Instant`] — an absolute femtosecond timestamp on the simulation
//!   timeline (time zero is the start of a test burst).
//! * [`Frequency`] — exact hertz, with an exact femtosecond period for every
//!   frequency that divides 10¹⁵ Hz·fs (all the paper's clock rates do).
//! * [`DataRate`] — bits per second, with the unit interval as a [`Duration`].
//! * [`UnitInterval`] — a dimensionless fraction of one bit period, the unit
//!   eye openings are quoted in ("0.88 UI at 2.5 Gbps").
//! * [`Millivolts`] — exact integer millivolt levels for PECL voltage tuning
//!   (the paper steps VOH in 100 mV increments).
//!
//! An `i64` femtosecond count spans ±9 223 seconds — about two and a half
//! hours of simulated time at 1 fs resolution, which is ~10 orders of
//! magnitude longer than any test burst in the paper.
//!
//! # Examples
//!
//! ```
//! use pstime::{DataRate, Duration};
//!
//! let rate = DataRate::from_gbps(2.5);
//! assert_eq!(rate.unit_interval(), Duration::from_ps(400));
//!
//! // 64 bit slots of 400 ps = the paper's 25.6 ns packet slot (Fig. 4).
//! let slot = rate.unit_interval() * 64;
//! assert_eq!(slot, Duration::from_ns_f64(25.6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod duration;
mod instant;
mod rate;
mod ui;
mod voltage;

pub use duration::Duration;
pub use instant::Instant;
pub use rate::{DataRate, Frequency};
pub use ui::UnitInterval;
pub use voltage::Millivolts;

/// Femtoseconds per picosecond.
pub const FS_PER_PS: i64 = 1_000;
/// Femtoseconds per nanosecond.
pub const FS_PER_NS: i64 = 1_000_000;
/// Femtoseconds per microsecond.
pub const FS_PER_US: i64 = 1_000_000_000;
/// Femtoseconds per millisecond.
pub const FS_PER_MS: i64 = 1_000_000_000_000;
/// Femtoseconds per second.
pub const FS_PER_S: i64 = 1_000_000_000_000_000;
