//! Exact millivolt voltage levels.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact voltage in integer millivolts.
///
/// The paper tunes PECL output levels in 100 mV and 200 mV steps (Figs. 10
/// and 11), so integer millivolts represent every programmable level exactly.
/// Analog waveform *samples* use `f64` millivolts; this type is for the
/// programmed levels, thresholds, and DAC codes.
///
/// # Examples
///
/// ```
/// use pstime::Millivolts;
///
/// let voh = Millivolts::new(-900);
/// let vol = Millivolts::new(-1700);
/// assert_eq!(voh - vol, Millivolts::new(800)); // PECL swing
/// assert_eq!(voh.midpoint(vol), Millivolts::new(-1300));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Millivolts(i32);

impl Millivolts {
    /// Zero volts.
    pub const ZERO: Millivolts = Millivolts(0);

    /// Creates a level from an exact millivolt count.
    #[inline]
    pub const fn new(mv: i32) -> Self {
        Millivolts(mv)
    }

    /// Creates a level from fractional volts, rounded to 1 mV.
    #[inline]
    pub fn from_volts(v: f64) -> Self {
        Millivolts((v * 1000.0).round() as i32) // xlint::allow(no-lossy-cast, the saturating float cast is the intended rounding onto the representable millivolt range)
    }

    /// The exact millivolt count.
    #[inline]
    pub const fn as_mv(self) -> i32 {
        self.0
    }

    /// The level as fractional volts.
    #[inline]
    pub fn as_volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// The level as fractional millivolts (for analog math).
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }

    /// The midpoint between two levels (rounded toward negative infinity).
    #[inline]
    pub const fn midpoint(self, other: Millivolts) -> Millivolts {
        Millivolts((self.0 + other.0).div_euclid(2))
    }

    /// Magnitude of the level.
    #[inline]
    pub const fn abs(self) -> Millivolts {
        Millivolts(self.0.abs())
    }

    /// Clamps into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Millivolts, hi: Millivolts) -> Millivolts {
        assert!(lo <= hi, "Millivolts::clamp requires lo <= hi");
        Millivolts(self.0.clamp(lo.0, hi.0))
    }
}

impl Add for Millivolts {
    type Output = Millivolts;
    #[inline]
    fn add(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 + rhs.0)
    }
}

impl AddAssign for Millivolts {
    #[inline]
    fn add_assign(&mut self, rhs: Millivolts) {
        self.0 += rhs.0;
    }
}

impl Sub for Millivolts {
    type Output = Millivolts;
    #[inline]
    fn sub(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 - rhs.0)
    }
}

impl SubAssign for Millivolts {
    #[inline]
    fn sub_assign(&mut self, rhs: Millivolts) {
        self.0 -= rhs.0;
    }
}

impl Neg for Millivolts {
    type Output = Millivolts;
    #[inline]
    fn neg(self) -> Millivolts {
        Millivolts(-self.0)
    }
}

impl Mul<i32> for Millivolts {
    type Output = Millivolts;
    #[inline]
    fn mul(self, rhs: i32) -> Millivolts {
        Millivolts(self.0 * rhs)
    }
}

impl Div<i32> for Millivolts {
    type Output = Millivolts;
    #[inline]
    fn div(self, rhs: i32) -> Millivolts {
        Millivolts(self.0 / rhs)
    }
}

impl Sum for Millivolts {
    fn sum<I: Iterator<Item = Millivolts>>(iter: I) -> Millivolts {
        iter.fold(Millivolts::ZERO, Add::add)
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mV", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pecl_levels() {
        // Classic PECL referenced to VCC = 0.
        let voh = Millivolts::new(-900);
        let vol = Millivolts::new(-1700);
        assert_eq!(voh - vol, Millivolts::new(800));
        assert_eq!(voh.midpoint(vol), Millivolts::new(-1300));
    }

    #[test]
    fn dac_steps() {
        // Fig. 10: VOH lowered in 100 mV steps.
        let step = Millivolts::new(100);
        let voh = Millivolts::new(-900);
        let levels: Vec<Millivolts> = (0..4).map(|i| voh - step * i).collect();
        assert_eq!(levels[3], Millivolts::new(-1200));
    }

    #[test]
    fn conversions() {
        assert_eq!(Millivolts::from_volts(-1.3), Millivolts::new(-1300));
        assert!((Millivolts::new(-1300).as_volts() + 1.3).abs() < 1e-12);
        assert!((Millivolts::new(250).as_f64() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let mut v = Millivolts::new(100);
        v += Millivolts::new(50);
        assert_eq!(v, Millivolts::new(150));
        v -= Millivolts::new(200);
        assert_eq!(v, Millivolts::new(-50));
        assert_eq!(-v, Millivolts::new(50));
        assert_eq!(v.abs(), Millivolts::new(50));
        assert_eq!(Millivolts::new(10) / 4, Millivolts::new(2));
        let total: Millivolts = [Millivolts::new(1), Millivolts::new(2)].into_iter().sum();
        assert_eq!(total, Millivolts::new(3));
    }

    #[test]
    fn clamp_and_display() {
        let lo = Millivolts::new(-1700);
        let hi = Millivolts::new(-900);
        assert_eq!(Millivolts::new(0).clamp(lo, hi), hi);
        assert_eq!(Millivolts::new(-2000).clamp(lo, hi), lo);
        assert_eq!(Millivolts::new(-900).to_string(), "-900 mV");
    }

    #[test]
    fn midpoint_rounds_consistently() {
        assert_eq!(Millivolts::new(1).midpoint(Millivolts::new(2)), Millivolts::new(1));
        assert_eq!(Millivolts::new(-1).midpoint(Millivolts::new(-2)), Millivolts::new(-2));
    }
}
