//! Signed femtosecond time spans.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

use crate::{FS_PER_MS, FS_PER_NS, FS_PER_PS, FS_PER_S, FS_PER_US};

/// A signed span of simulated time, stored as an exact femtosecond count.
///
/// `Duration` is the workhorse unit of the Gigatest simulator: delay-line
/// steps (10 ps), unit intervals (400 ps at 2.5 Gbps), rise times (70 ps),
/// and packet slots (25.6 ns) are all exact multiples of 1 fs, so arithmetic
/// on them is free of rounding error.
///
/// Unlike [`std::time::Duration`], this type is signed: skews, jitter
/// displacements, and calibration offsets are naturally negative half the
/// time.
///
/// # Examples
///
/// ```
/// use pstime::Duration;
///
/// let ui = Duration::from_ps(400);
/// let step = Duration::from_ps(10);
/// assert_eq!(ui / step, 40);
/// assert_eq!(ui - step * 3, Duration::from_ps(370));
/// assert_eq!(format!("{}", ui), "400 ps");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable span (~9223 s).
    pub const MAX: Duration = Duration(i64::MAX);
    /// Most negative representable span.
    pub const MIN: Duration = Duration(i64::MIN);

    /// Creates a duration from an exact femtosecond count.
    #[inline]
    pub const fn from_fs(fs: i64) -> Self {
        Duration(fs)
    }

    /// Creates a duration from an exact picosecond count.
    #[inline]
    pub const fn from_ps(ps: i64) -> Self {
        Duration(ps * FS_PER_PS)
    }

    /// Creates a duration from an exact nanosecond count.
    #[inline]
    pub const fn from_ns(ns: i64) -> Self {
        Duration(ns * FS_PER_NS)
    }

    /// Creates a duration from an exact microsecond count.
    #[inline]
    pub const fn from_us(us: i64) -> Self {
        Duration(us * FS_PER_US)
    }

    /// Creates a duration from an exact millisecond count.
    #[inline]
    pub const fn from_ms(ms: i64) -> Self {
        Duration(ms * FS_PER_MS)
    }

    /// Creates a duration from fractional picoseconds, rounding to the
    /// nearest femtosecond.
    ///
    /// Use this at the boundary between analytic models (Gaussian jitter,
    /// filter group delay) and the exact integer timeline.
    #[inline]
    pub fn from_ps_f64(ps: f64) -> Self {
        Duration((ps * FS_PER_PS as f64).round() as i64) // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest femtosecond.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        Duration((ns * FS_PER_NS as f64).round() as i64) // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// femtosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s * FS_PER_S as f64).round() as i64) // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Creates a duration from a fractional femtosecond count, rounding
    /// to the nearest exact femtosecond.
    ///
    /// Use this where a statistic computed in float femtoseconds (jitter
    /// spreads, mean crossing phases) re-enters the exact timeline.
    #[inline]
    pub fn from_fs_f64(fs: f64) -> Self {
        Duration(fs.round() as i64) // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Returns the exact femtosecond count.
    #[inline]
    pub const fn as_fs(self) -> i64 {
        self.0
    }

    /// Approximate `f64` view of the femtosecond count, for statistics.
    #[inline]
    pub fn as_fs_f64(self) -> f64 {
        self.0 as f64 // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Returns the span in picoseconds, truncating sub-picosecond detail
    /// toward zero.
    #[inline]
    pub const fn as_ps(self) -> i64 {
        self.0 / FS_PER_PS
    }

    /// Returns the span as fractional picoseconds.
    #[inline]
    pub fn as_ps_f64(self) -> f64 {
        self.0 as f64 / FS_PER_PS as f64 // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Returns the span as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64 // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Returns the span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / FS_PER_S as f64 // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Returns the magnitude of the span.
    #[inline]
    pub const fn abs(self) -> Duration {
        Duration(self.0.abs())
    }

    /// Returns `true` if the span is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the span is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` on overflow.
    #[inline]
    pub const fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Checked multiplication by an integer count; `None` on overflow.
    #[inline]
    pub const fn checked_mul(self, rhs: i64) -> Option<Duration> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Scales the span by a real factor, rounding to the nearest femtosecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration((self.0 as f64 * factor).round() as i64) // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Returns the exact ratio of two spans as a float.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn ratio(self, rhs: Duration) -> f64 {
        assert!(!rhs.is_zero(), "division of Duration by zero Duration");
        self.0 as f64 / rhs.0 as f64 // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }

    /// Euclidean remainder: the result is always in `[ZERO, rhs.abs())`.
    ///
    /// Used to fold absolute timestamps into one unit interval when building
    /// eye diagrams.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn rem_euclid(self, rhs: Duration) -> Duration {
        Duration(self.0.rem_euclid(rhs.0))
    }

    /// Rounds to the nearest multiple of `step` (ties away from zero).
    ///
    /// This is how a 10 ps-resolution delay vernier quantizes a requested
    /// edge placement.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or negative.
    pub fn round_to(self, step: Duration) -> Duration {
        assert!(step.0 > 0, "rounding step must be positive");
        let half = step.0 / 2;
        let adj = if self.0 >= 0 { self.0 + half } else { self.0 - half };
        Duration((adj / step.0) * step.0)
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamps the span into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Duration, hi: Duration) -> Duration {
        assert!(lo <= hi, "Duration::clamp requires lo <= hi");
        Duration(self.0.clamp(lo.0, hi.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Neg for Duration {
    type Output = Duration;
    #[inline]
    fn neg(self) -> Duration {
        Duration(-self.0)
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for i64 {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

/// Integer division of one span by another yields a dimensionless count
/// (truncated toward zero): "how many 10 ps steps fit in 400 ps" = 40.
impl Div<Duration> for Duration {
    type Output = i64;
    #[inline]
    fn div(self, rhs: Duration) -> i64 {
        self.0 / rhs.0
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: i64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Duration> for Duration {
    fn sum<I: Iterator<Item = &'a Duration>>(iter: I) -> Duration {
        iter.copied().sum()
    }
}

impl fmt::Display for Duration {
    /// Formats with an auto-selected engineering unit: `3 fs`, `24 ps`,
    /// `25.6 ns`, `1.2 us`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        let afs = fs.abs();
        if afs < FS_PER_PS {
            write!(f, "{fs} fs")
        } else if afs < FS_PER_NS {
            format_scaled(f, fs, FS_PER_PS, "ps")
        } else if afs < FS_PER_US {
            format_scaled(f, fs, FS_PER_NS, "ns")
        } else if afs < FS_PER_MS {
            format_scaled(f, fs, FS_PER_US, "us")
        } else if afs < FS_PER_S {
            format_scaled(f, fs, FS_PER_MS, "ms")
        } else {
            format_scaled(f, fs, FS_PER_S, "s")
        }
    }
}

fn format_scaled(f: &mut fmt::Formatter<'_>, fs: i64, unit: i64, suffix: &str) -> fmt::Result {
    if fs % unit == 0 {
        write!(f, "{} {suffix}", fs / unit)
    } else {
        write!(f, "{:.3} {suffix}", fs as f64 / unit as f64) // xlint::allow(no-lossy-cast, fs counts stay far below 2^53 so the f64 round-trip is exact at this documented float boundary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_exact() {
        assert_eq!(Duration::from_ps(400).as_fs(), 400_000);
        assert_eq!(Duration::from_ns(25).as_fs(), 25_000_000);
        assert_eq!(Duration::from_us(1).as_fs(), 1_000_000_000);
        assert_eq!(Duration::from_ms(2).as_fs(), 2 * FS_PER_MS);
        assert_eq!(Duration::from_ps_f64(0.5).as_fs(), 500);
        assert_eq!(Duration::from_ns_f64(25.6).as_ps(), 25_600);
        assert_eq!(Duration::from_secs_f64(1e-12), Duration::from_ps(1));
    }

    #[test]
    fn arithmetic() {
        let a = Duration::from_ps(400);
        let b = Duration::from_ps(10);
        assert_eq!(a + b, Duration::from_ps(410));
        assert_eq!(a - b, Duration::from_ps(390));
        assert_eq!(a * 64, Duration::from_ns_f64(25.6));
        assert_eq!(a / b, 40);
        assert_eq!(a / 4, Duration::from_ps(100));
        assert_eq!(-a, Duration::from_ps(-400));
        assert_eq!(a % Duration::from_ps(150), Duration::from_ps(100));
    }

    #[test]
    fn rem_euclid_is_nonnegative() {
        let ui = Duration::from_ps(400);
        assert_eq!(Duration::from_ps(-10).rem_euclid(ui), Duration::from_ps(390));
        assert_eq!(Duration::from_ps(810).rem_euclid(ui), Duration::from_ps(10));
    }

    #[test]
    fn round_to_delay_step() {
        let step = Duration::from_ps(10);
        assert_eq!(Duration::from_ps_f64(13.0).round_to(step), Duration::from_ps(10));
        assert_eq!(Duration::from_ps_f64(15.0).round_to(step), Duration::from_ps(20));
        assert_eq!(Duration::from_ps_f64(-13.0).round_to(step), Duration::from_ps(-10));
        assert_eq!(Duration::from_ps_f64(-15.0).round_to(step), Duration::from_ps(-20));
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Duration::MAX.checked_add(Duration::from_fs(1)), None);
        assert_eq!(Duration::MIN.checked_sub(Duration::from_fs(1)), None);
        assert_eq!(Duration::MAX.checked_mul(2), None);
        assert_eq!(
            Duration::from_ps(5).checked_add(Duration::from_ps(5)),
            Some(Duration::from_ps(10))
        );
        assert_eq!(Duration::MAX.saturating_add(Duration::from_fs(1)), Duration::MAX);
    }

    #[test]
    fn float_conversions_round_trip() {
        let d = Duration::from_ps(123);
        assert!((d.as_ps_f64() - 123.0).abs() < 1e-12);
        assert!((d.as_ns_f64() - 0.123).abs() < 1e-12);
        assert_eq!(Duration::from_ps_f64(d.as_ps_f64()), d);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Duration::from_ps(100).mul_f64(0.5), Duration::from_ps(50));
        assert_eq!(Duration::from_fs(3).mul_f64(0.5), Duration::from_fs(2)); // 1.5 rounds to 2
    }

    #[test]
    fn display_engineering_units() {
        assert_eq!(Duration::from_fs(3).to_string(), "3 fs");
        assert_eq!(Duration::from_ps(24).to_string(), "24 ps");
        assert_eq!(Duration::from_ns_f64(25.6).to_string(), "25.600 ns");
        assert_eq!(Duration::from_ns(7).to_string(), "7 ns");
        assert_eq!(Duration::from_ps(-400).to_string(), "-400 ps");
        assert_eq!(Duration::from_us(3).to_string(), "3 us");
        assert_eq!(Duration::from_ms(3).to_string(), "3 ms");
    }

    #[test]
    fn ordering_and_clamp() {
        let a = Duration::from_ps(1);
        let b = Duration::from_ps(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Duration::from_ps(5).clamp(a, b), b);
        assert_eq!(Duration::from_ps(-5).clamp(a, b), a);
    }

    #[test]
    fn sum_iterator() {
        let total: Duration = (1..=4).map(Duration::from_ps).sum();
        assert_eq!(total, Duration::from_ps(10));
        let refs = [Duration::from_ps(1), Duration::from_ps(2)];
        let total: Duration = refs.iter().sum();
        assert_eq!(total, Duration::from_ps(3));
    }

    #[test]
    fn abs_and_signs() {
        assert_eq!(Duration::from_ps(-7).abs(), Duration::from_ps(7));
        assert!(Duration::from_ps(-7).is_negative());
        assert!(!Duration::ZERO.is_negative());
        assert!(Duration::ZERO.is_zero());
    }

    #[test]
    fn ratio() {
        assert!((Duration::from_ps(100).ratio(Duration::from_ps(400)) - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "division of Duration by zero")]
    fn ratio_by_zero_panics() {
        let _ = Duration::from_ps(1).ratio(Duration::ZERO);
    }
}
