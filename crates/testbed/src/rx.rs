//! The source-synchronous receiver.
//!
//! The test bed transmits a clock with the data ("precisely aligned in time
//! with a source-synchronous reference clock", §3), so the receiver does
//! not need clock recovery in the CDR sense: it locks to the first clock
//! transition of the slot window, derives the bit grid from it, and strobes
//! every channel mid-bit. The frame bit gates payload capture; the header
//! channels are sampled once, mid-window.

use pstime::{Duration, Instant, Millivolts};
use signal::AnalogWaveform;
use vortex::Wavelength;

use crate::frame::SlotTiming;
use crate::optics::{noise_rng, Photodetector, WdmLink};
use crate::tx::TransmittedSlot;
use crate::{Result, TestbedError};

/// One decoded slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceivedSlot {
    /// The recovered payload words.
    pub payload: [u32; 4],
    /// The recovered 4-bit routing address.
    pub address: u8,
    /// Whether the frame bit was asserted through the data window.
    pub frame_ok: bool,
    /// The instant the receiver locked to (first clock transition).
    pub lock_time: Instant,
}

/// The test-bed receiver.
///
/// # Examples
///
/// ```
/// use testbed::frame::{PacketSlot, SlotTiming};
/// use testbed::{Receiver, Transmitter};
///
/// let mut tx = Transmitter::new(SlotTiming::paper())?;
/// let rx = Receiver::new(SlotTiming::paper());
/// let slot = PacketSlot::new(SlotTiming::paper(), [0xCAFE_F00D, 1, 2, 3], 0b0101);
/// let received = rx.receive(&tx.transmit_slot(&slot, 3)?)?;
/// assert_eq!(received.payload[0], 0xCAFE_F00D);
/// assert_eq!(received.address, 0b0101);
/// assert!(received.frame_ok);
/// # Ok::<(), testbed::TestbedError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Receiver {
    timing: SlotTiming,
    threshold: Millivolts,
    sample_offset: Duration,
}

impl Receiver {
    /// Creates a receiver for the given slot timing with the standard PECL
    /// mid-level threshold and mid-bit sampling.
    pub fn new(timing: SlotTiming) -> Self {
        Receiver {
            timing,
            threshold: Millivolts::new(-1300),
            sample_offset: timing.bit_period() / 2,
        }
    }

    /// The decision threshold.
    pub fn threshold(&self) -> Millivolts {
        self.threshold
    }

    /// Overrides the decision threshold (for margin characterization).
    pub fn set_threshold(&mut self, threshold: Millivolts) {
        self.threshold = threshold;
    }

    /// Overrides the intra-bit sampling phase (for timing-margin scans).
    pub fn set_sample_offset(&mut self, offset: Duration) {
        self.sample_offset = offset;
    }

    /// Locks to the slot's clock: the first clock transition marks the
    /// window start.
    ///
    /// # Errors
    ///
    /// [`TestbedError::ClockRecoveryFailed`] if the clock channel has no
    /// transitions.
    pub fn lock(&self, clock: &AnalogWaveform) -> Result<Instant> {
        clock
            .digital()
            .edges()
            .first()
            .map(|e| e.at)
            .ok_or(TestbedError::ClockRecoveryFailed { reason: "clock channel has no edges" })
    }

    /// Decodes one transmitted slot (electrical loopback).
    ///
    /// # Errors
    ///
    /// [`TestbedError::ClockRecoveryFailed`] without clock transitions.
    pub fn receive(&self, sent: &TransmittedSlot) -> Result<ReceivedSlot> {
        let lock_time = self.lock(&sent.clock)?;
        let sample = |wave: &AnalogWaveform, bit_in_window: usize| -> bool {
            let t =
                lock_time + self.timing.bit_period() * bit_in_window as i64 + self.sample_offset;
            wave.value_at(t) >= self.threshold.as_f64()
        };
        Ok(self.decode(lock_time, |wave, bit| sample(wave, bit), sent))
    }

    /// Decodes a slot delivered optically: each channel is dropped from the
    /// WDM link and detected with `detector` (noise seeded by `seed`).
    ///
    /// # Errors
    ///
    /// [`TestbedError::ClockRecoveryFailed`] if the clock wavelength is
    /// missing or edge-free.
    pub fn receive_optical(
        &self,
        _sent: &TransmittedSlot,
        link: &WdmLink,
        detector: &Photodetector,
        seed: u64,
    ) -> Result<ReceivedSlot> {
        let clock_sig = link
            .drop_channel(Wavelength(0))
            .ok_or(TestbedError::ClockRecoveryFailed { reason: "clock wavelength missing" })?;
        let lock_time = self.lock(clock_sig.electrical())?;
        let mut rng = noise_rng(seed);
        let mut detector = detector.clone();

        let mut decide = |lambda: u8, bit_in_window: usize| -> bool {
            let t =
                lock_time + self.timing.bit_period() * bit_in_window as i64 + self.sample_offset;
            match link.drop_channel(Wavelength(lambda)) {
                Some(sig) => {
                    detector.auto_threshold(&sig);
                    detector.decide(&sig, t, &mut rng)
                }
                None => false,
            }
        };

        let t = &self.timing;
        let pre = t.pre_clock_bits;
        let mut payload = [0u32; 4];
        for (ch, word) in payload.iter_mut().enumerate() {
            for bit in 0..t.data_bits {
                *word = (*word << 1) | u32::from(decide(1 + ch as u8, pre + bit));
            }
        }
        let mid = pre + t.data_bits / 2;
        let frame_ok = decide(5, pre) && decide(5, pre + t.data_bits - 1);
        let mut address = 0u8;
        for bit in 0..4u8 {
            address = (address << 1) | u8::from(decide(6 + bit, mid));
        }
        Ok(ReceivedSlot { payload, address, frame_ok, lock_time })
    }

    fn decode(
        &self,
        lock_time: Instant,
        sample: impl Fn(&AnalogWaveform, usize) -> bool,
        sent: &TransmittedSlot,
    ) -> ReceivedSlot {
        let t = &self.timing;
        let pre = t.pre_clock_bits;
        let mut payload = [0u32; 4];
        for (ch, word) in payload.iter_mut().enumerate() {
            for bit in 0..t.data_bits {
                *word = (*word << 1) | u32::from(sample(&sent.payload[ch], pre + bit));
            }
        }
        let frame_ok = sample(&sent.frame, pre) && sample(&sent.frame, pre + t.data_bits - 1);
        let mid = pre + t.data_bits / 2;
        let mut address = 0u8;
        for bit in 0..4 {
            address = (address << 1) | u8::from(sample(&sent.header[bit], mid));
        }
        ReceivedSlot { payload, address, frame_ok, lock_time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PacketSlot;
    use crate::tx::Transmitter;

    fn loopback(payload: [u32; 4], address: u8) -> ReceivedSlot {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let rx = Receiver::new(SlotTiming::paper());
        let slot = PacketSlot::new(SlotTiming::paper(), payload, address);
        rx.receive(&tx.transmit_slot(&slot, 9).unwrap()).unwrap()
    }

    #[test]
    fn electrical_loopback_is_error_free() {
        let words = [0xDEAD_BEEF, 0x0123_4567, 0x89AB_CDEF, 0xA5A5_5A5A];
        let got = loopback(words, 0b1010);
        assert_eq!(got.payload, words);
        assert_eq!(got.address, 0b1010);
        assert!(got.frame_ok);
    }

    #[test]
    fn every_address_decodes() {
        for address in 0..16u8 {
            let got = loopback([0x5555_5555; 4], address);
            assert_eq!(got.address, address, "address {address}");
        }
    }

    #[test]
    fn lock_time_is_the_window_start() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let rx = Receiver::new(SlotTiming::paper());
        let slot = PacketSlot::new(SlotTiming::paper(), [1; 4], 0);
        let sent = tx.transmit_slot(&slot, 0).unwrap();
        let got = rx.receive(&sent).unwrap();
        // Window starts at bit 13 = 5.2 ns (± chain jitter).
        let expected = Instant::from_ps(13 * 400);
        assert!(
            (got.lock_time - expected).abs() < Duration::from_ps(100),
            "lock at {}",
            got.lock_time
        );
    }

    #[test]
    fn clock_recovery_needs_edges() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let rx = Receiver::new(SlotTiming::paper());
        let slot = PacketSlot::new(SlotTiming::paper(), [0; 4], 0);
        let mut sent = tx.transmit_slot(&slot, 0).unwrap();
        // Sabotage: replace the clock with a dead channel.
        sent.clock = sent.payload[0].clone();
        assert!(matches!(rx.receive(&sent), Err(TestbedError::ClockRecoveryFailed { .. })));
    }

    #[test]
    fn threshold_margin_affects_decoding() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let mut rx = Receiver::new(SlotTiming::paper());
        let slot = PacketSlot::new(SlotTiming::paper(), [!0u32; 4], 0b1111);
        let sent = tx.transmit_slot(&slot, 2).unwrap();
        // Threshold above VOH: everything decodes as zero.
        rx.set_threshold(Millivolts::new(-500));
        let got = rx.receive(&sent).unwrap();
        assert_eq!(got.payload, [0; 4]);
        assert!(!got.frame_ok);
        assert_eq!(rx.threshold(), Millivolts::new(-500));
    }

    #[test]
    fn sample_offset_scan_finds_the_eye() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let mut rx = Receiver::new(SlotTiming::paper());
        let words = [0x0F0F_0F0F, 0xAAAA_5555, 0x1234_5678, 0x9ABC_DEF0];
        let slot = PacketSlot::new(SlotTiming::paper(), words, 0b0001);
        let sent = tx.transmit_slot(&slot, 4).unwrap();
        // Mid-bit sampling decodes cleanly.
        rx.set_sample_offset(Duration::from_ps(200));
        assert_eq!(rx.receive(&sent).unwrap().payload, words);
        // Sampling right at the bit boundary is unreliable (jittered
        // edges): decoded words differ from the sent ones.
        rx.set_sample_offset(Duration::from_ps(0));
        let edge_sampled = rx.receive(&sent).unwrap();
        assert_ne!(edge_sampled.payload, words);
    }

    #[test]
    fn optical_path_round_trips() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let rx = Receiver::new(SlotTiming::paper());
        let words = [0xFACE_B00C, 0x0BAD_F00D, 0xFFFF_0000, 0x0000_FFFF];
        let slot = PacketSlot::new(SlotTiming::paper(), words, 0b0110);
        let sent = tx.transmit_slot(&slot, 6).unwrap();
        let link = sent.to_optical(500.0, 10.0);
        let detector = Photodetector::testbed();
        let got = rx.receive_optical(&sent, &link, &detector, 123).unwrap();
        assert_eq!(got.payload, words);
        assert_eq!(got.address, 0b0110);
        assert!(got.frame_ok);
    }

    #[test]
    fn noisy_optical_path_flips_bits() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let rx = Receiver::new(SlotTiming::paper());
        let slot = PacketSlot::new(SlotTiming::paper(), [0xAAAA_AAAA; 4], 0b0101);
        let sent = tx.transmit_slot(&slot, 8).unwrap();
        // Crush the optical power so receiver noise dominates.
        let link = sent.to_optical(2.0, 1.5);
        let noisy = Photodetector::new(2.0, 30.0);
        let mut errors = 0usize;
        for seed in 0..20 {
            let got = rx.receive_optical(&sent, &link, &noisy, seed).unwrap();
            for ch in 0..4 {
                errors += (got.payload[ch] ^ sent.slot.payload()[ch]).count_ones() as usize;
            }
        }
        assert!(errors > 0, "a starved optical link must show bit errors");
    }
}
