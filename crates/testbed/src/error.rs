//! Error type for Optical Test Bed operations.

use core::fmt;

/// Errors raised by the test-bed layers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TestbedError {
    /// A slot-timing configuration whose segments do not tile the slot.
    BadSlotTiming {
        /// Explanation of the inconsistency.
        reason: &'static str,
    },
    /// The receiver could not lock to the source-synchronous clock.
    ClockRecoveryFailed {
        /// What went wrong.
        reason: &'static str,
    },
    /// A routing address beyond the fabric's ports.
    BadAddress {
        /// The offending address.
        address: u32,
        /// Number of output ports.
        ports: u32,
    },
    /// Error from the DLC layer.
    Dlc(dlc::DlcError),
    /// Error from the PECL layer.
    Pecl(pecl::PeclError),
    /// Error from the fabric.
    Vortex(vortex::VortexError),
    /// Error from signal analysis.
    Signal(signal::SignalError),
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::BadSlotTiming { reason } => write!(f, "bad slot timing: {reason}"),
            TestbedError::ClockRecoveryFailed { reason } => {
                write!(f, "clock recovery failed: {reason}")
            }
            TestbedError::BadAddress { address, ports } => {
                write!(f, "routing address {address} exceeds {ports} ports")
            }
            TestbedError::Dlc(e) => write!(f, "DLC error: {e}"),
            TestbedError::Pecl(e) => write!(f, "PECL error: {e}"),
            TestbedError::Vortex(e) => write!(f, "fabric error: {e}"),
            TestbedError::Signal(e) => write!(f, "signal error: {e}"),
        }
    }
}

impl std::error::Error for TestbedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TestbedError::Dlc(e) => Some(e),
            TestbedError::Pecl(e) => Some(e),
            TestbedError::Vortex(e) => Some(e),
            TestbedError::Signal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dlc::DlcError> for TestbedError {
    fn from(e: dlc::DlcError) -> Self {
        TestbedError::Dlc(e)
    }
}

impl From<pecl::PeclError> for TestbedError {
    fn from(e: pecl::PeclError) -> Self {
        TestbedError::Pecl(e)
    }
}

impl From<vortex::VortexError> for TestbedError {
    fn from(e: vortex::VortexError) -> Self {
        TestbedError::Vortex(e)
    }
}

impl From<signal::SignalError> for TestbedError {
    fn from(e: signal::SignalError) -> Self {
        TestbedError::Signal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = TestbedError::BadSlotTiming { reason: "segments exceed slot" };
        assert!(e.to_string().contains("segments exceed slot"));
        assert!(e.source().is_none());

        let e = TestbedError::from(dlc::DlcError::NotConfigured);
        assert!(e.to_string().contains("DLC error"));
        assert!(e.source().is_some());

        let e = TestbedError::from(pecl::PeclError::DacCodeOutOfRange { code: 9, codes: 8 });
        assert!(e.to_string().contains("PECL error"));

        let e = TestbedError::from(vortex::VortexError::EntryBlocked { angle: 0 });
        assert!(e.to_string().contains("fabric error"));

        let e = TestbedError::from(signal::SignalError::EmptyWaveform { context: "x" });
        assert!(e.to_string().contains("signal error"));

        let e = TestbedError::BadAddress { address: 9, ports: 8 };
        assert!(e.to_string().contains("9"));
        let e = TestbedError::ClockRecoveryFailed { reason: "no edges" };
        assert!(e.to_string().contains("no edges"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<TestbedError>();
    }
}
