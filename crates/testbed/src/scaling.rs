//! The paper's end-application scaling study.
//!
//! §1: "The end-application will require extending the word width to at
//! least 64 bits, and increasing channel data rates to 10 Gbps at each
//! wavelength, so that the aggregate data rate will be of the order of a
//! Terabit-per-second." This module does that arithmetic honestly —
//! including the framing efficiency of the Fig. 4 slot structure — and
//! checks what the DLC + PECL architecture needs to supply it.

use core::fmt;

use pstime::DataRate;

use crate::frame::SlotTiming;

/// One configuration point of the scaling study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingPoint {
    /// Parallel word width (wavelength channels carrying payload).
    pub word_width: u32,
    /// Serial rate per wavelength.
    pub rate_per_lambda: DataRate,
}

impl ScalingPoint {
    /// The paper's demonstrated test bed: 4-bit word at 2.5 Gbps.
    pub fn demonstrated() -> Self {
        ScalingPoint { word_width: 4, rate_per_lambda: DataRate::from_gbps(2.5) }
    }

    /// The paper's stated end goal: ≥64-bit word at 10 Gbps per λ.
    pub fn end_goal() -> Self {
        ScalingPoint { word_width: 64, rate_per_lambda: DataRate::from_gbps(10.0) }
    }

    /// Raw aggregate rate: `word_width × rate_per_lambda`.
    pub fn aggregate(&self) -> DataRate {
        self.rate_per_lambda.aggregate(u64::from(self.word_width))
    }

    /// Payload-efficient aggregate after Fig. 4 framing: only
    /// `data_bits / slot_bits` of each slot carries payload.
    pub fn effective(&self, timing: &SlotTiming) -> DataRate {
        let num = self.aggregate().as_bps() * timing.data_bits as u64;
        DataRate::from_bps((num / timing.slot_bits as u64).max(1))
    }

    /// Number of FPGA I/O pins needed to feed the serializers at
    /// `lane_rate_mbps` per pin (the DLC-side feasibility check).
    pub fn fpga_pins_needed(&self, lane_rate_mbps: u64) -> u64 {
        let lane = DataRate::from_mbps(lane_rate_mbps);
        let per_lambda_lanes = self.rate_per_lambda.as_bps().div_ceil(lane.as_bps());
        per_lambda_lanes * u64::from(self.word_width)
    }

    /// Mux fan-in per wavelength at a given FPGA lane rate.
    pub fn mux_ways(&self, lane_rate_mbps: u64) -> u64 {
        self.rate_per_lambda
            .as_bps()
            .div_ceil(DataRate::from_mbps(lane_rate_mbps).as_bps())
            .next_power_of_two()
    }
}

impl fmt::Display for ScalingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} λ × {} = {}", self.word_width, self.rate_per_lambda, self.aggregate())
    }
}

/// Produces the scaling table from the demonstrated system to the stated
/// end goal: word width doubling from 4 to `max_width`, per-λ rate stepping
/// 2.5 → 10 Gbps.
pub fn scaling_table(max_width: u32) -> Vec<ScalingPoint> {
    let mut rows = Vec::new();
    let mut width = 4u32;
    while width <= max_width {
        for gbps in [2.5, 5.0, 10.0] {
            rows.push(ScalingPoint {
                word_width: width,
                rate_per_lambda: DataRate::from_gbps(gbps),
            });
        }
        width *= 2;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demonstrated_system_numbers() {
        let p = ScalingPoint::demonstrated();
        assert_eq!(p.aggregate(), DataRate::from_gbps(10.0));
        // With Fig. 4 framing only half the slot carries payload.
        let eff = p.effective(&SlotTiming::paper());
        assert_eq!(eff, DataRate::from_gbps(5.0));
    }

    #[test]
    fn end_goal_is_order_terabit() {
        let p = ScalingPoint::end_goal();
        let aggregate = p.aggregate().as_gbps();
        // 64 x 10 Gbps = 640 Gbps: "of the order of a Terabit-per-second".
        assert!((aggregate - 640.0).abs() < 1e-6);
        assert!(aggregate > 100.0 && aggregate < 10_000.0);
        assert!(p.to_string().contains("64"));
    }

    #[test]
    fn fpga_feasibility() {
        // Demonstrated: 2.5 Gbps per λ from 400 Mbps pins = 8 lanes/λ,
        // 4 λ -> 32 pins. Well within the DLC's ~200 I/O.
        let p = ScalingPoint::demonstrated();
        assert_eq!(p.mux_ways(400), 8);
        assert_eq!(p.fpga_pins_needed(400), 28); // ceil(2.5G/400M)=7 lanes x 4
                                                 // End goal: 10 Gbps per λ needs 25 lanes -> 32:1 mux, 64 λ
                                                 // -> 1600 pins: more than one DLC, which is why the paper
                                                 // envisions replication.
        let goal = ScalingPoint::end_goal();
        assert_eq!(goal.mux_ways(400), 32);
        assert!(goal.fpga_pins_needed(400) > 200);
    }

    #[test]
    fn scaling_table_shape() {
        let rows = scaling_table(64);
        // Widths 4, 8, 16, 32, 64 x 3 rates.
        assert_eq!(rows.len(), 15);
        assert_eq!(rows[0], ScalingPoint::demonstrated().clone_with_rate(2.5));
        let last = rows.last().unwrap();
        assert_eq!(last.word_width, 64);
        assert_eq!(last.rate_per_lambda, DataRate::from_gbps(10.0));
        // Monotone aggregate within each width group.
        for w in rows.chunks(3) {
            assert!(w[0].aggregate() < w[1].aggregate());
            assert!(w[1].aggregate() < w[2].aggregate());
        }
    }

    impl ScalingPoint {
        fn clone_with_rate(mut self, gbps: f64) -> Self {
            self.rate_per_lambda = DataRate::from_gbps(gbps);
            self
        }
    }

    #[test]
    fn framing_efficiency_is_exactly_half_for_paper_timing() {
        let t = SlotTiming::paper();
        for p in scaling_table(16) {
            let eff = p.effective(&t).as_bps() as f64;
            let agg = p.aggregate().as_bps() as f64;
            assert!((eff / agg - 0.5).abs() < 1e-9);
        }
    }
}
