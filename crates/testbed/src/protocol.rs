//! Signaling-protocol evaluation.
//!
//! §1: "Various signaling protocols are evaluated for the transmission of
//! data packets through an optical switching network." A protocol here is
//! a packet-slot layout — how the fixed 64-bit slot is divided between
//! dead time, guard bands, pre/post clocks, and payload. More payload
//! means higher efficiency; more protocol overhead means more tolerance
//! for receiver start-up time and switch timing uncertainty. This module
//! makes that trade measurable.

use core::fmt;

use pstime::Duration;

use crate::frame::{PacketSlot, SlotTiming};
use crate::rx::Receiver;
use crate::tx::Transmitter;
use crate::Result;

/// A named slot-layout variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolVariant {
    /// Human-readable name.
    pub name: &'static str,
    /// The slot layout.
    pub timing: SlotTiming,
}

impl ProtocolVariant {
    /// The paper's Fig. 4 layout: 32 payload bits of 64 (50 % efficient),
    /// generous guards and pre/post clocks.
    pub fn paper() -> Self {
        ProtocolVariant { name: "paper-fig4", timing: SlotTiming::paper() }
    }

    /// An aggressive layout: the same 32 payload bits squeezed into a
    /// shorter 48-bit slot (67 % efficient), minimal guards — fine with
    /// fast-locking receivers and a well-behaved switch, fragile
    /// otherwise.
    pub fn aggressive() -> Self {
        let mut t = SlotTiming::paper();
        t.slot_bits = 48;
        t.dead_bits = 6;
        t.guard_bits = 2;
        t.pre_clock_bits = 3;
        t.data_bits = 32;
        t.post_clock_bits = 3;
        ProtocolVariant { name: "aggressive", timing: t }
    }

    /// A conservative layout: only 20 payload bits (31 % efficient) but
    /// big margins everywhere.
    pub fn conservative() -> Self {
        let mut t = SlotTiming::paper();
        t.dead_bits = 10;
        t.guard_bits = 7;
        t.pre_clock_bits = 10;
        t.data_bits = 20;
        t.post_clock_bits = 10;
        ProtocolVariant { name: "conservative", timing: t }
    }

    /// All built-in variants, most conservative first.
    pub fn catalog() -> Vec<ProtocolVariant> {
        vec![Self::conservative(), Self::paper(), Self::aggressive()]
    }

    /// Payload efficiency: data bits over slot bits.
    pub fn efficiency(&self) -> f64 {
        self.timing.data_bits as f64 / self.timing.slot_bits as f64
    }
}

/// What the receiving side of the network needs from a protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverRequirements {
    /// Clock cycles the receiver PLL/DLL needs before data is trustworthy.
    pub startup_clocks: usize,
    /// Clock cycles needed after the data to flush the receive pipeline.
    pub flush_clocks: usize,
    /// Worst-case packet-arrival uncertainty through the switch (the slack
    /// the dead time + guard band must absorb).
    pub arrival_uncertainty: Duration,
}

impl ReceiverRequirements {
    /// The test bed's measured receiver: 3 start-up cycles, 2 flush
    /// cycles, 3 ns of switch timing uncertainty.
    pub fn testbed() -> Self {
        ReceiverRequirements {
            startup_clocks: 3,
            flush_clocks: 2,
            arrival_uncertainty: Duration::from_ns(3),
        }
    }

    /// A sluggish receiver: long lock time, sloppy switch.
    pub fn demanding() -> Self {
        ReceiverRequirements {
            startup_clocks: 5,
            flush_clocks: 4,
            arrival_uncertainty: Duration::from_ns_f64(4.5),
        }
    }
}

/// The verdict for one protocol against one receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolEvaluation {
    /// The variant's name.
    pub name: &'static str,
    /// Payload efficiency (0..1).
    pub efficiency: f64,
    /// Pre-clock cycles provided vs required.
    pub startup_margin_cycles: i64,
    /// Post-clock cycles provided vs required.
    pub flush_margin_cycles: i64,
    /// Arrival-slack margin (dead + guard − uncertainty).
    pub arrival_margin: Duration,
    /// Whether an actual loopback transmission decoded cleanly.
    pub loopback_clean: bool,
}

impl ProtocolEvaluation {
    /// Whether every requirement is met (including the measured loopback).
    pub fn viable(&self) -> bool {
        self.startup_margin_cycles >= 0
            && self.flush_margin_cycles >= 0
            && !self.arrival_margin.is_negative()
            && self.loopback_clean
    }

    /// The figure of merit: efficiency if viable, zero otherwise.
    pub fn score(&self) -> f64 {
        if self.viable() {
            self.efficiency
        } else {
            0.0
        }
    }
}

impl fmt::Display for ProtocolEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} eff {:>4.0}%  startup {:+} cyc  flush {:+} cyc  arrival {:>8}  loopback {}  -> {}",
            self.name,
            100.0 * self.efficiency,
            self.startup_margin_cycles,
            self.flush_margin_cycles,
            self.arrival_margin,
            if self.loopback_clean { "ok" } else { "FAIL" },
            if self.viable() { "viable" } else { "NOT viable" }
        )
    }
}

/// Evaluates one protocol variant against receiver requirements: computes
/// the margins and performs a real framed loopback at the variant's
/// timing.
///
/// # Errors
///
/// Propagates transmitter/receiver errors; invalid slot layouts fail at
/// [`SlotTiming::validate`].
pub fn evaluate(
    variant: &ProtocolVariant,
    rx: &ReceiverRequirements,
    seed: u64,
) -> Result<ProtocolEvaluation> {
    variant.timing.validate()?;
    let t = &variant.timing;
    // One clock cycle = 2 bits (the source-synchronous clock toggles per
    // bit, a full cycle spans two).
    let startup_provided = t.pre_clock_bits / 2;
    let flush_provided = t.post_clock_bits / 2;
    let arrival_slack = t.dead_duration() + t.guard_duration();

    // Measured check: a full transmit/decode round trip at this layout.
    let mut tx = Transmitter::new(*t)?;
    let receiver = Receiver::new(*t);
    let mask = if t.data_bits >= 32 { u32::MAX } else { (1u32 << t.data_bits) - 1 };
    let words = [0xDEAD_BEEF & mask, 0x0123_4567 & mask, 0xA5A5_5A5A & mask, 0x0F0F_F0F0 & mask];
    let slot = PacketSlot::new(*t, words, 0b0110);
    let sent = tx.transmit_slot(&slot, seed)?;
    let got = receiver.receive(&sent)?;
    let loopback_clean = got.payload == words && got.address == 0b0110 && got.frame_ok;

    Ok(ProtocolEvaluation {
        name: variant.name,
        efficiency: variant.efficiency(),
        startup_margin_cycles: startup_provided as i64 - rx.startup_clocks as i64,
        flush_margin_cycles: flush_provided as i64 - rx.flush_clocks as i64,
        arrival_margin: arrival_slack - rx.arrival_uncertainty,
        loopback_clean,
    })
}

/// Evaluates the whole catalog and returns evaluations in catalog order —
/// the "various signaling protocols" comparison as data.
///
/// # Errors
///
/// Propagates per-variant evaluation errors.
pub fn evaluate_catalog(rx: &ReceiverRequirements, seed: u64) -> Result<Vec<ProtocolEvaluation>> {
    ProtocolVariant::catalog().iter().map(|v| evaluate(v, rx, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_variants_are_valid_and_ordered_by_efficiency() {
        let catalog = ProtocolVariant::catalog();
        assert_eq!(catalog.len(), 3);
        for v in &catalog {
            v.timing.validate().unwrap();
        }
        assert!(catalog[0].efficiency() < catalog[1].efficiency());
        assert!(catalog[1].efficiency() < catalog[2].efficiency());
        assert!((ProtocolVariant::paper().efficiency() - 0.5).abs() < 1e-12);
        assert!((ProtocolVariant::aggressive().efficiency() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_protocol_is_viable_for_the_testbed_receiver() {
        let eval =
            evaluate(&ProtocolVariant::paper(), &ReceiverRequirements::testbed(), 1).unwrap();
        assert!(eval.viable(), "{eval}");
        assert!(eval.loopback_clean);
        assert!((eval.score() - 0.5).abs() < 1e-12);
        // Pre-clocks: 7 bits = 3 cycles, exactly the requirement.
        assert_eq!(eval.startup_margin_cycles, 0);
        // Arrival slack: 3.2 + 2.0 = 5.2 ns vs 3 ns needed.
        assert_eq!(eval.arrival_margin, Duration::from_ns_f64(2.2));
    }

    #[test]
    fn aggressive_protocol_wins_on_easy_networks_only() {
        let easy = ReceiverRequirements {
            startup_clocks: 1,
            flush_clocks: 1,
            arrival_uncertainty: Duration::from_ns(1),
        };
        let evals = evaluate_catalog(&easy, 2).unwrap();
        let best = evals.iter().max_by(|a, b| a.score().total_cmp(&b.score())).unwrap();
        assert_eq!(best.name, "aggressive", "easy network favors payload");

        // A demanding network disqualifies it.
        let evals = evaluate_catalog(&ReceiverRequirements::demanding(), 2).unwrap();
        let aggressive = evals.iter().find(|e| e.name == "aggressive").unwrap();
        assert!(!aggressive.viable(), "{aggressive}");
        assert_eq!(aggressive.score(), 0.0);
        // The conservative variant survives.
        let conservative = evals.iter().find(|e| e.name == "conservative").unwrap();
        assert!(conservative.viable(), "{conservative}");
    }

    #[test]
    fn every_variant_loopbacks_cleanly() {
        // The measured part: all layouts decode their own payloads.
        for v in ProtocolVariant::catalog() {
            let eval = evaluate(&v, &ReceiverRequirements::testbed(), 3).unwrap();
            assert!(eval.loopback_clean, "{} failed loopback", v.name);
        }
    }

    #[test]
    fn display_row() {
        let eval =
            evaluate(&ProtocolVariant::paper(), &ReceiverRequirements::testbed(), 4).unwrap();
        let row = eval.to_string();
        assert!(row.contains("paper-fig4"));
        assert!(row.contains("viable"));
        assert!(row.contains("50%"));
    }

    #[test]
    fn short_payload_masking() {
        // The conservative layout's 20-bit payload must mask correctly.
        let eval = evaluate(&ProtocolVariant::conservative(), &ReceiverRequirements::testbed(), 5)
            .unwrap();
        assert!(eval.loopback_clean);
    }
}
