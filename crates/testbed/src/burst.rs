//! Continuous burst operation: many packet slots on one timeline.
//!
//! The per-slot API in [`crate::tx`]/[`crate::rx`] treats each slot in
//! isolation. Real test-bed operation is a *stream*: back-to-back slots
//! separated only by the Fig. 4 dead time, with the receiver re-locking at
//! every slot window. This module renders a whole burst as one continuous
//! waveform per channel and gives the receiver the slot-detection logic
//! (cluster clock edges, re-lock per cluster) the stream needs.

use pstime::{Duration, Instant, Millivolts};
use signal::{AnalogWaveform, BitStream};

use crate::frame::{PacketSlot, SlotTiming};
use crate::rx::ReceivedSlot;
use crate::tx::Transmitter;
use crate::{Result, TestbedError};

/// A rendered burst: continuous channel waveforms spanning every slot.
#[derive(Debug, Clone)]
pub struct StreamTransmission {
    /// The continuous source-synchronous clock channel.
    pub clock: AnalogWaveform,
    /// The four continuous payload channels.
    pub payload: [AnalogWaveform; 4],
    /// The continuous frame channel.
    pub frame: AnalogWaveform,
    /// The four continuous header channels.
    pub header: [AnalogWaveform; 4],
    /// The slots that were sent, in order.
    pub slots: Vec<PacketSlot>,
    timing: SlotTiming,
}

impl StreamTransmission {
    /// The slot timing of the burst.
    pub fn timing(&self) -> &SlotTiming {
        &self.timing
    }

    /// Number of slots in the burst.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total burst duration.
    pub fn duration(&self) -> Duration {
        self.timing.slot_duration() * self.slots.len() as i64
    }
}

impl Transmitter {
    /// Renders a burst of slots as one continuous transmission: channel
    /// bit streams are concatenated and rendered through the PECL chain in
    /// a single pass, so inter-slot timing (dead time included) is exact.
    ///
    /// # Errors
    ///
    /// Propagates PECL rate errors; fails on an empty burst.
    pub fn transmit_stream(
        &mut self,
        slots: &[PacketSlot],
        seed: u64,
    ) -> Result<StreamTransmission> {
        if slots.is_empty() {
            return Err(TestbedError::BadSlotTiming { reason: "empty burst" })?;
        }
        let timing = *self.timing();
        let mut clock = BitStream::new();
        let mut payload: [BitStream; 4] = Default::default();
        let mut frame = BitStream::new();
        let mut header: [BitStream; 4] = Default::default();
        for slot in slots {
            let ch = slot.render_bits();
            clock.append(&ch.clock);
            frame.append(&ch.frame);
            for i in 0..4 {
                payload[i].append(&ch.payload[i]);
                header[i].append(&ch.header[i]);
            }
        }
        let rate = timing.rate;
        let chain = self.chain().clone();
        // One lane = one derived channel: clock 0, payload 1–4, frame 5,
        // header 6–9 (same layout as testbed.tx.slot, distinct stream).
        let tree = rng::SeedTree::new(seed).stream("testbed.burst.render");
        let render = |bits: &BitStream, lane: u64| -> Result<AnalogWaveform> {
            Ok(chain.render(bits, rate, tree.channel(lane).seed())?)
        };
        Ok(StreamTransmission {
            clock: render(&clock, 0)?,
            payload: [
                render(&payload[0], 1)?,
                render(&payload[1], 2)?,
                render(&payload[2], 3)?,
                render(&payload[3], 4)?,
            ],
            frame: render(&frame, 5)?,
            header: [
                render(&header[0], 6)?,
                render(&header[1], 7)?,
                render(&header[2], 8)?,
                render(&header[3], 9)?,
            ],
            slots: slots.to_vec(),
            timing,
        })
    }
}

/// A burst receiver: detects slot windows on the continuous clock and
/// decodes each one.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReceiver {
    timing: SlotTiming,
    threshold: Millivolts,
    sample_offset: Duration,
}

impl StreamReceiver {
    /// Creates a burst receiver for the given slot timing.
    pub fn new(timing: SlotTiming) -> Self {
        StreamReceiver {
            timing,
            threshold: Millivolts::new(-1300),
            sample_offset: timing.bit_period() / 2,
        }
    }

    /// Detects the slot-window lock instants on the clock channel: clock
    /// edges separated by more than the guard + dead gap start a new slot.
    pub fn detect_slots(&self, stream: &StreamTransmission) -> Vec<Instant> {
        let edges = stream.clock.digital().edges();
        // Between slots the clock is quiet for 2·guard + dead bits; inside
        // the window edges are one bit period apart. Use half the gap as
        // the clustering threshold.
        let gap =
            self.timing.bit_period() * (self.timing.dead_bits + self.timing.guard_bits) as i64 / 2;
        let mut locks = Vec::new();
        let mut prev: Option<Instant> = None;
        for e in edges {
            let is_new = match prev {
                None => true,
                Some(p) => e.at - p > gap,
            };
            if is_new {
                locks.push(e.at);
            }
            prev = Some(e.at);
        }
        locks
    }

    /// Decodes every detected slot in the burst.
    ///
    /// # Errors
    ///
    /// [`TestbedError::ClockRecoveryFailed`] if no slot windows are found.
    pub fn receive_stream(&self, stream: &StreamTransmission) -> Result<Vec<ReceivedSlot>> {
        let locks = self.detect_slots(stream);
        if locks.is_empty() {
            return Err(TestbedError::ClockRecoveryFailed {
                reason: "no slot windows detected in burst",
            });
        }
        Ok(locks.iter().map(|lock| self.decode_at(*lock, stream)).collect())
    }

    fn sample(&self, wave: &AnalogWaveform, lock: Instant, bit_in_window: usize) -> bool {
        let t = lock + self.timing.bit_period() * bit_in_window as i64 + self.sample_offset;
        wave.value_at(t) >= self.threshold.as_f64()
    }

    fn decode_at(&self, lock: Instant, stream: &StreamTransmission) -> ReceivedSlot {
        let t = &self.timing;
        let pre = t.pre_clock_bits;
        let mut payload = [0u32; 4];
        for (ch, word) in payload.iter_mut().enumerate() {
            for bit in 0..t.data_bits {
                *word = (*word << 1) | u32::from(self.sample(&stream.payload[ch], lock, pre + bit));
            }
        }
        let frame_ok = self.sample(&stream.frame, lock, pre)
            && self.sample(&stream.frame, lock, pre + t.data_bits - 1);
        let mid = pre + t.data_bits / 2;
        let mut address = 0u8;
        for bit in 0..4 {
            address = (address << 1) | u8::from(self.sample(&stream.header[bit], lock, mid));
        }
        ReceivedSlot { payload, address, frame_ok, lock_time: lock }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SlotTiming;

    fn burst(n: usize) -> (StreamTransmission, Vec<[u32; 4]>) {
        let timing = SlotTiming::paper();
        let mut tx = Transmitter::new(timing).unwrap();
        let payloads: Vec<[u32; 4]> = (0..n)
            .map(|i| {
                let base = (i as u32).wrapping_mul(0x2545_F491) ^ 0xA5A5_0000;
                [base, base ^ 0xFFFF_FFFF, base.rotate_left(7), base.rotate_right(3)]
            })
            .collect();
        let slots: Vec<PacketSlot> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| PacketSlot::new(timing, *p, (i % 16) as u8))
            .collect();
        (tx.transmit_stream(&slots, 9).unwrap(), payloads)
    }

    #[test]
    fn burst_geometry() {
        let (stream, _) = burst(5);
        assert_eq!(stream.n_slots(), 5);
        assert_eq!(stream.duration(), Duration::from_ns_f64(25.6 * 5.0));
        assert_eq!(stream.timing().slot_bits, 64);
        // The clock spans the whole burst.
        assert_eq!(stream.clock.digital().span(), Duration::from_ns_f64(25.6 * 5.0));
    }

    #[test]
    fn slot_detection_finds_every_window() {
        let (stream, _) = burst(8);
        let rx = StreamReceiver::new(SlotTiming::paper());
        let locks = rx.detect_slots(&stream);
        assert_eq!(locks.len(), 8, "one lock per slot");
        // Locks are one slot period apart.
        for pair in locks.windows(2) {
            let spacing = pair[1] - pair[0];
            assert!(
                (spacing - Duration::from_ns_f64(25.6)).abs() < Duration::from_ps(200),
                "spacing {spacing}"
            );
        }
    }

    #[test]
    fn stream_decodes_every_slot() {
        let (stream, payloads) = burst(6);
        let rx = StreamReceiver::new(SlotTiming::paper());
        let got = rx.receive_stream(&stream).unwrap();
        assert_eq!(got.len(), 6);
        for (i, slot) in got.iter().enumerate() {
            assert_eq!(slot.payload, payloads[i], "slot {i}");
            assert_eq!(slot.address, (i % 16) as u8);
            assert!(slot.frame_ok);
        }
    }

    #[test]
    fn single_slot_stream() {
        let (stream, payloads) = burst(1);
        let rx = StreamReceiver::new(SlotTiming::paper());
        let got = rx.receive_stream(&stream).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, payloads[0]);
    }

    #[test]
    fn empty_burst_rejected() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        assert!(tx.transmit_stream(&[], 0).is_err());
    }

    #[test]
    fn quiet_stream_has_no_windows() {
        // All-zero payload with a sabotaged (payload-as-clock) stream.
        let timing = SlotTiming::paper();
        let mut tx = Transmitter::new(timing).unwrap();
        let slots = vec![PacketSlot::new(timing, [0; 4], 0)];
        let mut stream = tx.transmit_stream(&slots, 1).unwrap();
        stream.clock = stream.payload[0].clone(); // zero channel
        let rx = StreamReceiver::new(timing);
        assert!(matches!(
            rx.receive_stream(&stream),
            Err(TestbedError::ClockRecoveryFailed { .. })
        ));
    }

    #[test]
    fn long_burst_stays_locked() {
        // 32 slots = 2048 bits of continuous stream: no drift.
        let (stream, payloads) = burst(32);
        let rx = StreamReceiver::new(SlotTiming::paper());
        let got = rx.receive_stream(&stream).unwrap();
        assert_eq!(got.len(), 32);
        let errors: usize = got
            .iter()
            .zip(&payloads)
            .map(|(g, p)| {
                (0..4).map(|ch| (g.payload[ch] ^ p[ch]).count_ones() as usize).sum::<usize>()
            })
            .sum();
        assert_eq!(errors, 0, "long burst must decode error-free");
    }
}
