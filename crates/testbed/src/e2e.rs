//! Closed-loop end-to-end runs: TX → Data Vortex → RX.
//!
//! The test bed's purpose: push framed packets through the optical switch
//! and verify delivery, latency, and payload integrity under programmable
//! signal conditions. This module wires the transmitter, the fabric
//! simulator, and the receiver into one measurement.

use core::fmt;

use rng::SeedTree;
use vortex::{DataVortex, Packet, VortexParams};

use crate::frame::{PacketSlot, SlotTiming};
use crate::optics::Photodetector;
use crate::rx::Receiver;
use crate::tx::Transmitter;
use crate::{Result, TestbedError};

/// Configuration of an end-to-end run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2eConfig {
    /// Number of packets to send.
    pub packets: usize,
    /// Fabric geometry.
    pub fabric: VortexParams,
    /// Optical "on" power per wavelength (µW).
    pub p_on_uw: f64,
    /// Laser extinction ratio (linear).
    pub extinction_ratio: f64,
    /// Receiver noise rms (mV).
    pub rx_noise_mv: f64,
    /// Optical loss per fabric hop (linear transmission factor per node
    /// traversal, 1.0 = lossless). Every deflection adds a hop, so
    /// congested routes arrive dimmer — the cascaded-loss budget real
    /// Data Vortex hardware lives or dies by.
    pub loss_per_hop: f64,
    /// Seed for payload generation, fabric injection, and receiver noise.
    pub seed: u64,
}

impl Default for E2eConfig {
    /// 64 packets through the 8-node fabric at healthy optical power.
    fn default() -> Self {
        E2eConfig {
            packets: 64,
            fabric: VortexParams::eight_node(),
            p_on_uw: 500.0,
            extinction_ratio: 10.0,
            rx_noise_mv: 4.0,
            loss_per_hop: 0.97, // ~0.13 dB per node after SOA compensation
            seed: 1,
        }
    }
}

/// Results of an end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct E2eReport {
    /// Packets offered to the transmitter.
    pub sent: usize,
    /// Packets delivered by the fabric and decoded.
    pub delivered: usize,
    /// Payload bits compared.
    pub bits_compared: u64,
    /// Payload bits in error after the full path.
    pub bit_errors: u64,
    /// Packets whose decoded routing address disagreed with the intent.
    pub address_errors: usize,
    /// Mean fabric latency in slot times.
    pub mean_latency_slots: f64,
    /// Mean fabric latency in nanoseconds (slots × 25.6 ns).
    pub mean_latency_ns: f64,
    /// Total deflections across delivered packets.
    pub deflections: u64,
}

impl E2eReport {
    /// Measured payload bit error ratio.
    pub fn ber(&self) -> f64 {
        if self.bits_compared == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits_compared as f64
        }
    }

    /// Fraction of offered packets delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

impl fmt::Display for E2eReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} packets, BER {:.2e} ({} / {} bits), {} addr errors, latency {:.1} slots = {:.1} ns, {} deflections",
            self.delivered,
            self.sent,
            self.ber(),
            self.bit_errors,
            self.bits_compared,
            self.address_errors,
            self.mean_latency_slots,
            self.mean_latency_ns,
            self.deflections
        )
    }
}

/// Runs packets end to end: frame → transmit (electrical + optical) →
/// decode the header at the fabric input → route through the Data Vortex →
/// re-transmit at the output → decode and compare payloads.
///
/// # Errors
///
/// Propagates transmitter boot, PECL, fabric, and receiver errors.
pub fn run(config: &E2eConfig) -> Result<E2eReport> {
    let timing = SlotTiming::paper();
    let mut tx = Transmitter::new(timing)?;
    let rx = Receiver::new(timing);
    let detector = Photodetector::new(2.0, config.rx_noise_mv);
    let mut fabric = DataVortex::new(config.fabric);
    let tree = SeedTree::new(config.seed).stream("testbed.e2e");
    let mut rng = tree.stream("traffic").rng();

    let ports = config.fabric.heights();
    if ports > 16 {
        return Err(TestbedError::BadAddress { address: ports - 1, ports: 16 });
    }

    let mut sent_slots = Vec::with_capacity(config.packets);
    let mut out: Vec<vortex::Delivered> = Vec::new();
    let mut delivered = 0usize;
    let mut bit_errors = 0u64;
    let mut bits_compared = 0u64;
    let mut address_errors = 0usize;
    let mut deflections = 0u64;

    for id in 0..config.packets {
        let payload: [u32; 4] = core::array::from_fn(|_| rng.next_u32());
        let dest = rng.range_u32(0..ports);
        let slot = PacketSlot::new(timing, payload, dest as u8);
        let per_packet = tree.index(id as u64);
        let sent = tx.transmit_slot(&slot, per_packet.stream("tx").seed())?;

        // Header decode at the fabric input (through the optics).
        let link = sent.to_optical(config.p_on_uw, config.extinction_ratio);
        let at_input =
            rx.receive_optical(&sent, &link, &detector, per_packet.stream("rx-in").seed())?;
        let decoded_dest = u32::from(at_input.address) % ports.max(1);
        if decoded_dest != dest {
            address_errors += 1;
        }

        // Inject with the *decoded* address — a header bit error misroutes,
        // exactly as it would in the real fabric.
        let angle = (id as u32) % config.fabric.angles();
        let _ = fabric.inject(Packet::new(id as u64, decoded_dest, 1), angle);
        sent_slots.push((sent, dest, payload));
        out.extend(fabric.step());
    }

    out.extend(fabric.run_until_drained(100_000));
    for d in &out {
        let (sent, _intended_dest, payload) = &sent_slots[d.packet.id() as usize];
        deflections += u64::from(d.packet.deflections());
        // Output-side decode of the same physical slot: the fabric is
        // transparent at the payload wavelengths, but every hop costs
        // optical power — deflected packets arrive dimmer.
        let hops = d.packet.hops();
        let transmission = config.loss_per_hop.powi(hops as i32).clamp(1e-6, 1.0);
        let launch = (config.p_on_uw * transmission).max(1e-3);
        let link = sent.to_optical(launch, config.extinction_ratio);
        let got = rx.receive_optical(
            sent,
            &link,
            &detector,
            tree.index(d.packet.id()).stream("rx-out").seed(),
        )?;
        for (got_word, sent_word) in got.payload.iter().zip(payload) {
            bit_errors += u64::from((got_word ^ sent_word).count_ones());
            bits_compared += 32;
        }
        delivered += 1;
    }

    let stats = fabric.stats();
    let mean_latency_slots = stats.latency.mean();
    Ok(E2eReport {
        sent: config.packets,
        delivered,
        bits_compared,
        bit_errors,
        address_errors,
        mean_latency_slots,
        mean_latency_ns: mean_latency_slots * timing.slot_duration().as_ns_f64(),
        deflections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_delivers_everything_error_free() {
        let report = run(&E2eConfig { packets: 32, ..E2eConfig::default() }).unwrap();
        assert_eq!(report.sent, 32);
        assert_eq!(report.delivered, 32);
        assert_eq!(report.bit_errors, 0, "clean optics must be error-free");
        assert_eq!(report.address_errors, 0);
        assert_eq!(report.bits_compared, 32 * 128);
        assert!(report.delivery_ratio() > 0.99);
        assert_eq!(report.ber(), 0.0);
        // Fabric latency: at least 3 slots through 3 cylinders.
        assert!(report.mean_latency_slots >= 3.0);
        assert!(report.mean_latency_ns >= 3.0 * 25.6);
        let text = report.to_string();
        assert!(text.contains("32/32"));
    }

    #[test]
    fn starved_optics_create_bit_errors() {
        let config = E2eConfig {
            packets: 16,
            p_on_uw: 3.0,
            extinction_ratio: 1.3,
            rx_noise_mv: 25.0,
            seed: 5,
            ..E2eConfig::default()
        };
        let report = run(&config).unwrap();
        assert!(report.bit_errors > 0, "starved link must show errors: {report}");
        assert!(report.ber() > 1e-4);
    }

    #[test]
    fn latency_reported_in_both_units() {
        let report = run(&E2eConfig { packets: 8, seed: 9, ..E2eConfig::default() }).unwrap();
        let ratio = report.mean_latency_ns / report.mean_latency_slots;
        assert!((ratio - 25.6).abs() < 1e-9);
    }

    #[test]
    fn oversized_fabric_rejected() {
        let config = E2eConfig {
            fabric: VortexParams::new(5, 8), // 32 ports > 4 header bits
            ..E2eConfig::default()
        };
        assert!(matches!(run(&config), Err(TestbedError::BadAddress { .. })));
    }

    #[test]
    fn deterministic_given_seed() {
        let config = E2eConfig { packets: 12, seed: 77, ..E2eConfig::default() };
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert_eq!(a, b);
    }
}

/// Streaming variant of [`run`]: the whole packet train is rendered as one
/// continuous burst (dead time and all), the fabric is stepped
/// slot-synchronously, and the receiver re-locks on every detected slot
/// window — the test bed's actual operating mode.
///
/// # Errors
///
/// Propagates transmitter, stream-receiver, and fabric errors.
pub fn run_stream(config: &E2eConfig) -> Result<E2eReport> {
    use crate::burst::StreamReceiver;

    let timing = SlotTiming::paper();
    let mut tx = Transmitter::new(timing)?;
    let stream_rx = StreamReceiver::new(timing);
    let mut fabric = DataVortex::new(config.fabric);
    let mut rng = SeedTree::new(config.seed).stream("testbed.e2e.stream").rng();

    let ports = config.fabric.heights();
    if ports > 16 {
        return Err(TestbedError::BadAddress { address: ports - 1, ports: 16 });
    }

    // Build and transmit the whole train as one burst.
    let payloads: Vec<[u32; 4]> =
        (0..config.packets).map(|_| core::array::from_fn(|_| rng.next_u32())).collect();
    let dests: Vec<u32> = (0..config.packets).map(|_| rng.range_u32(0..ports)).collect();
    let slots: Vec<PacketSlot> =
        payloads.iter().zip(&dests).map(|(p, d)| PacketSlot::new(timing, *p, *d as u8)).collect();
    let stream = tx.transmit_stream(&slots, config.seed)?;

    // Decode the burst at the fabric input: one ReceivedSlot per window.
    let decoded = stream_rx.receive_stream(&stream)?;
    let mut out: Vec<vortex::Delivered> = Vec::new();
    let mut address_errors = 0usize;
    for (i, slot) in decoded.iter().enumerate() {
        let dest = u32::from(slot.address) % ports.max(1);
        if dest != dests[i] {
            address_errors += 1;
        }
        let angle = (i as u32) % config.fabric.angles();
        let _ = fabric.inject(Packet::new(i as u64, dest, 1), angle);
        out.extend(fabric.step());
    }
    out.extend(fabric.run_until_drained(100_000));

    // Compare payloads of delivered packets against intent.
    let mut bit_errors = 0u64;
    let mut bits_compared = 0u64;
    let mut deflections = 0u64;
    for d in &out {
        let i = d.packet.id() as usize;
        deflections += u64::from(d.packet.deflections());
        for (got_word, sent_word) in decoded[i].payload.iter().zip(&payloads[i]) {
            bit_errors += u64::from((got_word ^ sent_word).count_ones());
            bits_compared += 32;
        }
    }

    let stats = fabric.stats();
    let mean_latency_slots = stats.latency.mean();
    Ok(E2eReport {
        sent: config.packets,
        delivered: out.len(),
        bits_compared,
        bit_errors,
        address_errors,
        mean_latency_slots,
        mean_latency_ns: mean_latency_slots * timing.slot_duration().as_ns_f64(),
        deflections,
    })
}

#[cfg(test)]
mod stream_tests {
    use super::*;

    #[test]
    fn stream_run_is_error_free_on_clean_hardware() {
        let report = run_stream(&E2eConfig { packets: 24, ..E2eConfig::default() }).unwrap();
        assert_eq!(report.sent, 24);
        assert_eq!(report.delivered, 24, "{report}");
        assert_eq!(report.bit_errors, 0);
        assert_eq!(report.address_errors, 0);
        assert!(report.mean_latency_slots >= 3.0);
    }

    #[test]
    fn stream_and_per_slot_runs_agree_on_clean_hardware() {
        let config = E2eConfig { packets: 16, seed: 8, ..E2eConfig::default() };
        let per_slot = run(&config).unwrap();
        let stream = run_stream(&config).unwrap();
        assert_eq!(per_slot.bit_errors, 0);
        assert_eq!(stream.bit_errors, 0);
        assert_eq!(per_slot.delivered, stream.delivered);
    }

    #[test]
    fn stream_rejects_oversized_fabric() {
        let config = E2eConfig { fabric: vortex::VortexParams::new(5, 8), ..E2eConfig::default() };
        assert!(matches!(run_stream(&config), Err(TestbedError::BadAddress { .. })));
    }

    #[test]
    fn stream_deterministic() {
        let config = E2eConfig { packets: 10, seed: 21, ..E2eConfig::default() };
        assert_eq!(run_stream(&config).unwrap(), run_stream(&config).unwrap());
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;

    #[test]
    fn hop_loss_couples_congestion_to_signal_quality() {
        // With heavy per-hop loss and a marginal receiver, a congested run
        // (hotspot-ish traffic creating deflections) shows more errors
        // than a lossless fabric carrying the same packets.
        let base = E2eConfig {
            packets: 24,
            p_on_uw: 40.0,
            extinction_ratio: 3.0,
            rx_noise_mv: 10.0,
            seed: 13,
            ..E2eConfig::default()
        };
        let lossless = run(&E2eConfig { loss_per_hop: 1.0, ..base }).unwrap();
        let lossy = run(&E2eConfig { loss_per_hop: 0.55, ..base }).unwrap();
        assert!(lossy.deflections > 0, "need deflections to see the effect");
        assert!(
            lossy.bit_errors > lossless.bit_errors,
            "hop loss must cost bit errors: lossless {} vs lossy {}",
            lossless.bit_errors,
            lossy.bit_errors
        );
    }

    #[test]
    fn default_loss_is_benign_at_full_power() {
        let report = run(&E2eConfig { packets: 16, seed: 2, ..E2eConfig::default() }).unwrap();
        assert_eq!(report.bit_errors, 0, "{report}");
    }
}
