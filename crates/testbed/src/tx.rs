//! The Optical Test Bed transmitter.
//!
//! DLC state machines assemble the Fig. 4 framed channels; the calibrated
//! PECL chain serializes them at 2.5 Gbps; laser drivers put each channel
//! on its own wavelength. The transmitter also exposes the LFSR eye-test
//! mode used for the paper's Figs. 7–9 measurements.

use dlc::{Bitstream, DigitalLogicCore, PatternKind};
use pecl::SignalChain;
use pstime::DataRate;
use signal::{AnalogWaveform, BitStream, LevelSet};
use vortex::Wavelength;

use crate::frame::{PacketSlot, SlotTiming};
use crate::optics::{OpticalSignal, WdmLink};
use crate::Result;

/// One transmitted slot: all ten channels as analog waveforms.
#[derive(Debug, Clone)]
pub struct TransmittedSlot {
    /// The source-synchronous clock channel.
    pub clock: AnalogWaveform,
    /// The four payload channels.
    pub payload: [AnalogWaveform; 4],
    /// The frame-bit channel.
    pub frame: AnalogWaveform,
    /// The four header (routing address) channels.
    pub header: [AnalogWaveform; 4],
    /// The logical slot that was sent.
    pub slot: PacketSlot,
}

impl TransmittedSlot {
    /// Modulates every channel onto its own wavelength and combines them
    /// into a WDM link: clock on λ0, payload on λ1–λ4, frame on λ5,
    /// header on λ6–λ9.
    ///
    /// # Panics
    ///
    /// Panics only on internal wavelength collisions (impossible by
    /// construction).
    pub fn to_optical(&self, p_on_uw: f64, er: f64) -> WdmLink {
        let mut channels = Vec::with_capacity(10);
        channels.push(OpticalSignal::modulate(self.clock.clone(), Wavelength(0), p_on_uw, er));
        for (i, ch) in self.payload.iter().enumerate() {
            channels.push(OpticalSignal::modulate(
                ch.clone(),
                Wavelength(1 + i as u8),
                p_on_uw,
                er,
            ));
        }
        channels.push(OpticalSignal::modulate(self.frame.clone(), Wavelength(5), p_on_uw, er));
        for (i, ch) in self.header.iter().enumerate() {
            channels.push(OpticalSignal::modulate(
                ch.clone(),
                Wavelength(6 + i as u8),
                p_on_uw,
                er,
            ));
        }
        WdmLink::new(channels, 0.9, 0.8)
    }
}

/// The test-bed transmitter: a booted DLC plus the calibrated PECL chain.
///
/// # Examples
///
/// ```
/// use testbed::frame::{PacketSlot, SlotTiming};
/// use testbed::Transmitter;
///
/// let mut tx = Transmitter::new(SlotTiming::paper())?;
/// let slot = PacketSlot::new(SlotTiming::paper(), [1, 2, 3, 4], 0b0011);
/// let sent = tx.transmit_slot(&slot, 7)?;
/// assert_eq!(sent.slot.address(), 0b0011);
/// # Ok::<(), testbed::TestbedError>(())
/// ```
#[derive(Debug)]
pub struct Transmitter {
    core: DigitalLogicCore,
    chain: SignalChain,
    timing: SlotTiming,
}

impl Transmitter {
    /// Boots a DLC (flash + power-up) and attaches the calibrated test-bed
    /// PECL chain.
    ///
    /// # Errors
    ///
    /// Propagates DLC boot failures.
    pub fn new(timing: SlotTiming) -> Result<Self> {
        timing.validate()?;
        let mut core = DigitalLogicCore::new();
        core.program_flash_via_jtag(&Bitstream::example_design())?;
        core.power_up()?;
        Ok(Transmitter { core, chain: SignalChain::testbed_transmitter(), timing })
    }

    /// The slot timing in use.
    pub fn timing(&self) -> &SlotTiming {
        &self.timing
    }

    /// The PECL chain (for level reprogramming in the Figs. 10–11 sweeps).
    pub fn chain_mut(&mut self) -> &mut SignalChain {
        &mut self.chain
    }

    /// Borrow of the PECL chain.
    pub fn chain(&self) -> &SignalChain {
        &self.chain
    }

    /// Reprograms the output levels on every channel driver.
    pub fn set_levels(&mut self, levels: LevelSet) {
        self.chain.set_levels(levels);
    }

    /// Renders one framed slot through the PECL chain.
    ///
    /// # Errors
    ///
    /// Propagates PECL rate-limit errors.
    pub fn transmit_slot(&mut self, slot: &PacketSlot, seed: u64) -> Result<TransmittedSlot> {
        let bits = slot.render_bits();
        let rate = self.timing.rate;
        // One lane = one derived channel: clock 0, payload 1–4, frame 5,
        // header 6–9.
        let tree = rng::SeedTree::new(seed).stream("testbed.tx.slot");
        let render = |stream: &BitStream, lane: u64| -> Result<AnalogWaveform> {
            Ok(self.chain.render(stream, rate, tree.channel(lane).seed())?)
        };
        Ok(TransmittedSlot {
            clock: render(&bits.clock, 0)?,
            payload: [
                render(&bits.payload[0], 1)?,
                render(&bits.payload[1], 2)?,
                render(&bits.payload[2], 3)?,
                render(&bits.payload[3], 4)?,
            ],
            frame: render(&bits.frame, 5)?,
            header: [
                render(&bits.header[0], 6)?,
                render(&bits.header[1], 7)?,
                render(&bits.header[2], 8)?,
                render(&bits.header[3], 9)?,
            ],
            slot: *slot,
        })
    }

    /// Renders a burst of consecutive slots (dead time included in each
    /// slot's tail keeps them directly concatenable in time).
    ///
    /// # Errors
    ///
    /// As [`transmit_slot`](Self::transmit_slot).
    pub fn transmit_burst(
        &mut self,
        slots: &[PacketSlot],
        seed: u64,
    ) -> Result<Vec<TransmittedSlot>> {
        let tree = rng::SeedTree::new(seed).stream("testbed.tx.burst");
        slots
            .iter()
            .enumerate()
            .map(|(i, s)| self.transmit_slot(s, tree.index(i as u64).seed()))
            .collect()
    }

    /// The paper's eye-test mode: the DLC LFSR drives the chain with PRBS
    /// at `rate` — the source behind Figs. 7 and 8.
    ///
    /// # Errors
    ///
    /// Propagates DLC channel and PECL rate errors.
    pub fn prbs_eye_source(
        &mut self,
        rate: DataRate,
        n_bits: usize,
        seed: u64,
    ) -> Result<AnalogWaveform> {
        // Lane rate after 8:1 serialization.
        let lane_rate = rate.demux(8);
        for ch in 0..8 {
            self.core.configure_channel(
                ch,
                PatternKind::Prbs15 { seed: 0x1234 + ch as u32 },
                lane_rate,
            )?;
        }
        let lane_bits = n_bits / 8;
        let lanes: Vec<BitStream> =
            (0..8).map(|ch| self.core.generate(ch, lane_bits)).collect::<dlc::Result<_>>()?;
        Ok(self.chain.serialize_8(&lanes, rate, seed)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstime::{Duration, Instant};
    use signal::EyeDiagram;

    #[test]
    fn transmit_slot_produces_ten_channels() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let slot = PacketSlot::new(SlotTiming::paper(), [0xAAAA_AAAA, 0, !0u32, 7], 0b1001);
        let sent = tx.transmit_slot(&slot, 3).unwrap();
        // Clock: 23 rising + 23 falling edges in the window.
        assert_eq!(sent.clock.digital().num_edges(), 46);
        // Payload 1 (all zeros) never moves.
        assert_eq!(sent.payload[1].digital().num_edges(), 0);
        // Header channels 0 and 3: address 0b1001 -> one pulse each.
        assert_eq!(sent.header[0].digital().num_edges(), 2);
        assert_eq!(sent.header[1].digital().num_edges(), 0);
        assert_eq!(sent.header[3].digital().num_edges(), 2);
        assert_eq!(sent.slot.payload()[3], 7);
        assert_eq!(tx.timing().slot_bits, 64);
    }

    #[test]
    fn slot_waveforms_span_25_6_ns() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let slot = PacketSlot::new(SlotTiming::paper(), [1; 4], 0);
        let sent = tx.transmit_slot(&slot, 0).unwrap();
        assert_eq!(sent.clock.digital().span(), Duration::from_ns_f64(25.6));
        assert_eq!(sent.frame.digital().span(), Duration::from_ns_f64(25.6));
    }

    #[test]
    fn prbs_eye_matches_fig7() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let rate = DataRate::from_gbps(2.5);
        let wave = tx.prbs_eye_source(rate, 4096, 11).unwrap();
        let eye = EyeDiagram::analyze(&wave, rate).unwrap();
        let opening = eye.opening_ui().value();
        assert!((opening - 0.88).abs() < 0.04, "opening {opening}, expected ~0.88 UI");
        let jitter = eye.jitter_pp().as_ps_f64();
        assert!((jitter - 46.7).abs() < 8.0, "jitter {jitter} ps, expected ~46.7");
    }

    #[test]
    fn burst_renders_every_slot() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let slots: Vec<PacketSlot> =
            (0..4).map(|i| PacketSlot::new(SlotTiming::paper(), [i; 4], i as u8)).collect();
        let sent = tx.transmit_burst(&slots, 5).unwrap();
        assert_eq!(sent.len(), 4);
        for (i, s) in sent.iter().enumerate() {
            assert_eq!(s.slot.payload()[0], i as u32);
        }
    }

    #[test]
    fn level_reprogramming_reaches_the_waveform() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        tx.set_levels(LevelSet::pecl().with_voh(pstime::Millivolts::new(-1100)));
        assert_eq!(tx.chain().levels().voh(), pstime::Millivolts::new(-1100));
        let slot = PacketSlot::new(SlotTiming::paper(), [!0u32; 4], 0);
        let sent = tx.transmit_slot(&slot, 0).unwrap();
        // Mid-data instant: payload 0 is high at the reduced VOH.
        let t = Instant::from_ps((20 + 16) * 400);
        let v = sent.payload[0].value_at(t);
        assert!((v + 1100.0).abs() < 10.0, "v = {v}");
        let _ = tx.chain_mut();
    }

    #[test]
    fn optical_conversion_assigns_wavelengths() {
        let mut tx = Transmitter::new(SlotTiming::paper()).unwrap();
        let slot = PacketSlot::new(SlotTiming::paper(), [0x0F0F_0F0F; 4], 0b1111);
        let sent = tx.transmit_slot(&slot, 1).unwrap();
        let link = sent.to_optical(500.0, 10.0);
        assert_eq!(link.num_channels(), 10);
        assert!(link.drop_channel(Wavelength(0)).is_some()); // clock
        assert!(link.drop_channel(Wavelength(9)).is_some()); // header bit 3
        assert!(link.drop_channel(Wavelength(10)).is_none());
    }
}
