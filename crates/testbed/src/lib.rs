//! # gigatest-testbed — the Optical Test Bed application
//!
//! The first of the paper's two systems (§3): a DLC + PECL transmitter and
//! receiver that emulate "a parallel slice from a microprocessor-to-memory
//! communication channel" to exercise a Data Vortex optical packet switch.
//!
//! * [`frame`] — the Fig. 4 packet-slot structure: a 25.6 ns slot of 64
//!   400 ps bit periods (dead time, guard bands, pre/post clocks, a 32-bit
//!   valid-data window), a source-synchronous clock, a frame bit, and four
//!   header bits carrying the routing address.
//! * [`optics`] — E/O and O/E conversion: laser drivers with finite
//!   extinction ratio, WDM combining, receiver noise.
//! * [`tx`] / [`rx`] — the transmitter that serializes DLC patterns through
//!   the calibrated PECL chain, and the source-synchronous receiver that
//!   recovers the parallel word.
//! * [`e2e`] — closed-loop runs: packets through TX → Data Vortex → RX with
//!   bit-error accounting.
//! * [`scaling`] — the paper's stated end-goal arithmetic: ≥64-bit words at
//!   10 Gbps per wavelength for ~Tb/s aggregate.
//!
//! ## Example
//!
//! ```
//! use testbed::frame::{PacketSlot, SlotTiming};
//!
//! let timing = SlotTiming::paper();
//! let slot = PacketSlot::new(timing, [0xDEAD_BEEF, 0x0123_4567, 0x89AB_CDEF, 0x5555_AAAA], 0b0101);
//! let channels = slot.render_bits();
//! assert_eq!(channels.clock.len(), 64);
//! assert_eq!(channels.payload[0].len(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod e2e;
mod error;
pub mod frame;
pub mod optics;
pub mod protocol;
pub mod rx;
pub mod scaling;
pub mod tx;

pub use burst::{StreamReceiver, StreamTransmission};
pub use e2e::{E2eConfig, E2eReport};
pub use error::TestbedError;
pub use frame::{PacketSlot, SlotChannels, SlotTiming};
pub use optics::{OpticalSignal, Photodetector, WdmLink};
pub use rx::{ReceivedSlot, Receiver};
pub use tx::{TransmittedSlot, Transmitter};

/// Convenient result alias for test-bed operations.
pub type Result<T> = std::result::Result<T, TestbedError>;
