//! Electro-optic and opto-electronic conversion.
//!
//! The test bed's electrical signals "control laser drivers which converted
//! the signals to light pulses of differing wavelengths. The optical
//! signals are combined at the transmitting end, and optically split at the
//! receiving end" (§1, §3). The models here carry the impairments that
//! matter to the receiver's eye: finite extinction ratio, insertion loss,
//! receiver responsivity, and additive receiver noise.

use pstime::{Duration, Instant, Millivolts};
use rng::{Rng, SeedTree, StreamId};
use signal::{AnalogWaveform, LevelSet};
use vortex::Wavelength;

/// An optical on-off-keyed signal on one wavelength: power as a function of
/// time, derived from the driving electrical waveform.
///
/// Power is expressed in microwatts; the mapping is linear between the
/// "off" power (set by the extinction ratio) and the "on" power.
#[derive(Debug, Clone)]
pub struct OpticalSignal {
    electrical: AnalogWaveform,
    wavelength: Wavelength,
    p_on_uw: f64,
    p_off_uw: f64,
}

impl OpticalSignal {
    /// Modulates `electrical` onto `wavelength` with peak power `p_on_uw`
    /// (µW) and extinction ratio `er` (linear, > 1).
    ///
    /// # Panics
    ///
    /// Panics if `p_on_uw` is not positive or `er <= 1`.
    pub fn modulate(
        electrical: AnalogWaveform,
        wavelength: Wavelength,
        p_on_uw: f64,
        er: f64,
    ) -> Self {
        assert!(p_on_uw > 0.0, "on power must be positive");
        assert!(er > 1.0, "extinction ratio must exceed 1");
        OpticalSignal { electrical, wavelength, p_on_uw, p_off_uw: p_on_uw / er }
    }

    /// The carrier wavelength.
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// Peak ("on") power in µW.
    pub fn p_on_uw(&self) -> f64 {
        self.p_on_uw
    }

    /// Residual ("off") power in µW.
    pub fn p_off_uw(&self) -> f64 {
        self.p_off_uw
    }

    /// Extinction ratio (linear).
    pub fn extinction_ratio(&self) -> f64 {
        self.p_on_uw / self.p_off_uw
    }

    /// Instantaneous optical power (µW) at `t`.
    pub fn power_at(&self, t: Instant) -> f64 {
        let levels = self.electrical.levels();
        let lo = levels.vol().as_f64();
        let hi = levels.voh().as_f64();
        let v = self.electrical.value_at(t);
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        self.p_off_uw + frac * (self.p_on_uw - self.p_off_uw)
    }

    /// Applies an insertion loss (linear factor `0 < loss ≤ 1`) — a
    /// splitter, combiner, or fiber segment.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `(0, 1]`.
    #[must_use]
    pub fn attenuated(&self, loss: f64) -> OpticalSignal {
        assert!(loss > 0.0 && loss <= 1.0, "loss factor must be in (0, 1]");
        OpticalSignal {
            electrical: self.electrical.clone(),
            wavelength: self.wavelength,
            p_on_uw: self.p_on_uw * loss,
            p_off_uw: self.p_off_uw * loss,
        }
    }

    /// The driving electrical waveform (for timing reference).
    pub fn electrical(&self) -> &AnalogWaveform {
        &self.electrical
    }
}

/// A WDM link: multiple wavelengths sharing one fiber, with per-element
/// insertion losses for the combiner and splitter.
#[derive(Debug, Clone)]
pub struct WdmLink {
    channels: Vec<OpticalSignal>,
    combiner_loss: f64,
    splitter_loss: f64,
}

impl WdmLink {
    /// Builds a link from per-wavelength signals with the given combiner
    /// and splitter losses (linear factors).
    ///
    /// # Panics
    ///
    /// Panics if any loss is outside `(0, 1]` or wavelengths collide.
    pub fn new(channels: Vec<OpticalSignal>, combiner_loss: f64, splitter_loss: f64) -> Self {
        assert!(combiner_loss > 0.0 && combiner_loss <= 1.0, "combiner loss in (0, 1]");
        assert!(splitter_loss > 0.0 && splitter_loss <= 1.0, "splitter loss in (0, 1]");
        let mut seen = std::collections::BTreeSet::new();
        for ch in &channels {
            assert!(seen.insert(ch.wavelength()), "duplicate wavelength {}", ch.wavelength());
        }
        WdmLink { channels, combiner_loss, splitter_loss }
    }

    /// Number of wavelength channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Demultiplexes one wavelength at the receiving end, including the
    /// combiner and splitter losses.
    ///
    /// Returns `None` for an absent wavelength.
    pub fn drop_channel(&self, wavelength: Wavelength) -> Option<OpticalSignal> {
        self.channels
            .iter()
            .find(|c| c.wavelength() == wavelength)
            .map(|c| c.attenuated(self.combiner_loss * self.splitter_loss))
    }

    /// Total optical power (µW) on the fiber at `t` (what a power monitor
    /// tap sees).
    pub fn total_power_at(&self, t: Instant) -> f64 {
        self.channels.iter().map(|c| c.power_at(t) * self.combiner_loss).sum()
    }
}

/// A photodetector + transimpedance receiver: converts optical power back
/// to an electrical level with responsivity and additive Gaussian noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Photodetector {
    responsivity_mv_per_uw: f64,
    noise_rms_mv: f64,
    threshold: Millivolts,
}

impl Photodetector {
    /// Creates a detector with `responsivity_mv_per_uw` (electrical mV out
    /// per optical µW in) and `noise_rms_mv` additive noise.
    ///
    /// # Panics
    ///
    /// Panics if responsivity is not positive or noise is negative.
    pub fn new(responsivity_mv_per_uw: f64, noise_rms_mv: f64) -> Self {
        assert!(responsivity_mv_per_uw > 0.0, "responsivity must be positive");
        assert!(noise_rms_mv >= 0.0, "noise must be nonnegative");
        Photodetector { responsivity_mv_per_uw, noise_rms_mv, threshold: Millivolts::ZERO }
    }

    /// A typical test-bed receiver: 2 mV/µW, 4 mV rms noise.
    pub fn testbed() -> Self {
        Photodetector::new(2.0, 4.0)
    }

    /// The receiver noise rms (mV).
    pub fn noise_rms_mv(&self) -> f64 {
        self.noise_rms_mv
    }

    /// Sets the decision threshold (mV of detected signal).
    pub fn set_threshold(&mut self, threshold: Millivolts) {
        self.threshold = threshold;
    }

    /// The decision threshold.
    pub fn threshold(&self) -> Millivolts {
        self.threshold
    }

    /// The detected electrical level (mV) for an optical signal at `t`,
    /// noise-free.
    pub fn detect_mv(&self, signal: &OpticalSignal, t: Instant) -> f64 {
        signal.power_at(t) * self.responsivity_mv_per_uw
    }

    /// Hard decision at `t` with noise drawn from `rng`.
    pub fn decide(&self, signal: &OpticalSignal, t: Instant, rng: &mut Rng) -> bool {
        let noise = if self.noise_rms_mv == 0.0 { 0.0 } else { rng.gaussian() * self.noise_rms_mv };
        self.detect_mv(signal, t) + noise >= self.threshold.as_f64()
    }

    /// Chooses the optimal threshold for an OOK signal: midway between the
    /// detected on and off levels.
    pub fn auto_threshold(&mut self, signal: &OpticalSignal) {
        let hi = signal.p_on_uw() * self.responsivity_mv_per_uw;
        let lo = signal.p_off_uw() * self.responsivity_mv_per_uw;
        self.threshold = Millivolts::new(((hi + lo) / 2.0).round() as i32);
    }

    /// The receiver's Q factor for a given optical signal (signal
    /// separation over two noise sigmas) — feeds
    /// [`signal::ber_from_q`].
    pub fn q_factor(&self, signal: &OpticalSignal) -> f64 {
        if self.noise_rms_mv == 0.0 {
            return f64::INFINITY;
        }
        let separation = (signal.p_on_uw() - signal.p_off_uw()) * self.responsivity_mv_per_uw;
        separation / (2.0 * self.noise_rms_mv)
    }
}

/// Substream identity for receiver/photodetector noise.
pub const RX_NOISE_STREAM: StreamId = StreamId::named("testbed.optics.rx-noise");

/// Deterministic seeded RNG for receiver noise.
pub fn noise_rng(seed: u64) -> Rng {
    SeedTree::new(seed).derive(RX_NOISE_STREAM).rng()
}

/// Builds an optical signal around a settled electrical level for testing
/// and examples: a constant waveform at VOH or VOL.
pub fn constant_optical(level_high: bool, wavelength: Wavelength) -> OpticalSignal {
    use signal::{DigitalWaveform, EdgeShape};
    let d = DigitalWaveform::constant(
        level_high,
        Instant::ZERO,
        Instant::ZERO + Duration::from_ns(100),
    );
    let a = AnalogWaveform::new(d, LevelSet::pecl(), EdgeShape::default());
    OpticalSignal::modulate(a, wavelength, 500.0, 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstime::DataRate;
    use signal::jitter::NoJitter;
    use signal::{BitStream, DigitalWaveform, EdgeShape};

    fn electrical(bits: &str) -> AnalogWaveform {
        AnalogWaveform::new(
            DigitalWaveform::from_bits(
                &BitStream::from_str_bits(bits),
                DataRate::from_gbps(2.5),
                &NoJitter,
                0,
            ),
            LevelSet::pecl(),
            EdgeShape::default(),
        )
    }

    #[test]
    fn modulation_maps_levels_to_power() {
        let sig = OpticalSignal::modulate(electrical("0011"), Wavelength(2), 500.0, 10.0);
        assert_eq!(sig.wavelength(), Wavelength(2));
        assert!((sig.extinction_ratio() - 10.0).abs() < 1e-9);
        // Settled low -> off power; settled high -> on power.
        assert!((sig.power_at(Instant::from_ps(200)) - 50.0).abs() < 1.0);
        assert!((sig.power_at(Instant::from_ps(1400)) - 500.0).abs() < 1.0);
        assert!(sig.electrical().levels().swing().as_mv() > 0);
    }

    #[test]
    fn attenuation_scales_power() {
        let sig = OpticalSignal::modulate(electrical("1"), Wavelength(0), 400.0, 8.0);
        let half = sig.attenuated(0.5);
        assert!((half.p_on_uw() - 200.0).abs() < 1e-9);
        assert!((half.p_off_uw() - 25.0).abs() < 1e-9);
        // ER preserved.
        assert!((half.extinction_ratio() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn wdm_link_combines_and_drops() {
        let a = OpticalSignal::modulate(electrical("1111"), Wavelength(0), 500.0, 10.0);
        let b = OpticalSignal::modulate(electrical("0000"), Wavelength(1), 500.0, 10.0);
        let link = WdmLink::new(vec![a, b], 0.8, 0.5);
        assert_eq!(link.num_channels(), 2);
        // Dropping λ0 applies both losses: 500 * 0.8 * 0.5 = 200.
        let dropped = link.drop_channel(Wavelength(0)).unwrap();
        assert!((dropped.p_on_uw() - 200.0).abs() < 1e-9);
        assert!(link.drop_channel(Wavelength(9)).is_none());
        // Total power at a settled instant: (500 + 50) * 0.8.
        let total = link.total_power_at(Instant::from_ps(1000));
        assert!((total - 440.0).abs() < 2.0, "total {total}");
    }

    #[test]
    #[should_panic(expected = "duplicate wavelength")]
    fn duplicate_wavelengths_panic() {
        let a = constant_optical(true, Wavelength(0));
        let b = constant_optical(false, Wavelength(0));
        let _ = WdmLink::new(vec![a, b], 1.0, 1.0);
    }

    #[test]
    fn photodetection_and_decisions() {
        let sig = OpticalSignal::modulate(electrical("0011"), Wavelength(0), 500.0, 10.0);
        let mut pd = Photodetector::testbed();
        pd.auto_threshold(&sig);
        // Threshold midway between 1000 mV (on) and 100 mV (off).
        assert_eq!(pd.threshold(), Millivolts::new(550));
        let mut rng = noise_rng(1);
        assert!(!pd.decide(&sig, Instant::from_ps(200), &mut rng));
        assert!(pd.decide(&sig, Instant::from_ps(1400), &mut rng));
        // Detected level follows responsivity.
        assert!((pd.detect_mv(&sig, Instant::from_ps(1400)) - 1000.0).abs() < 2.0);
    }

    #[test]
    fn q_factor_and_noise() {
        let sig = OpticalSignal::modulate(electrical("01"), Wavelength(0), 500.0, 10.0);
        let pd = Photodetector::testbed();
        // Separation (500-50)*2 = 900 mV over 2*4 mV -> Q = 112.5.
        assert!((pd.q_factor(&sig) - 112.5).abs() < 0.1);
        let quiet = Photodetector::new(2.0, 0.0);
        assert!(quiet.q_factor(&sig).is_infinite());
        assert!((pd.noise_rms_mv() - 4.0).abs() < 1e-12);
        // A heavily attenuated link degrades Q.
        let weak = sig.attenuated(0.01);
        assert!(pd.q_factor(&weak) < 2.0);
    }

    #[test]
    fn noisy_decisions_flip_near_threshold() {
        // Off-level power detected right at the threshold: noise decides.
        let sig = OpticalSignal::modulate(electrical("0000"), Wavelength(0), 500.0, 10.0);
        let mut pd = Photodetector::new(2.0, 10.0);
        pd.set_threshold(Millivolts::new(100)); // exactly the off level
        let mut rng = noise_rng(3);
        let decisions: Vec<bool> =
            (0..100).map(|_| pd.decide(&sig, Instant::from_ps(600), &mut rng)).collect();
        let highs = decisions.iter().filter(|d| **d).count();
        assert!(highs > 20 && highs < 80, "expected ~50/50 split, got {highs}");
    }

    #[test]
    #[should_panic(expected = "extinction ratio must exceed 1")]
    fn bad_er_panics() {
        let _ = OpticalSignal::modulate(electrical("0"), Wavelength(0), 100.0, 1.0);
    }
}
