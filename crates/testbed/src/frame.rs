//! The Fig. 4 packet-slot structure.
//!
//! One packet slot is 64 bit periods of 400 ps = **25.6 ns**:
//!
//! ```text
//! | dead 8 | guard 5 |      clock/data window 46       | guard 5 |
//!                    | pre-clk 7 | data 32 | post-clk 7 |
//! ```
//!
//! * **Dead time** 8 × 400 ps = 3.2 ns between slots.
//! * **Guard times** 5 × 400 ps = 2.0 ns on each side of the active window.
//! * **Maximum allowed window for valid clock/data** 46 × 400 ps = 18.4 ns.
//! * **Valid data** 32 × 400 ps = 12.8 ns, bracketed by **pre-clocks** (for
//!   receiver start-up) and **post-clocks** (for receiver pipeline flush).
//! * A slow **frame bit** marks when the data is valid, and four **header
//!   bits** carry the routing address used by the Data Vortex.

use pstime::{DataRate, Duration};
use signal::BitStream;

use crate::{Result, TestbedError};

/// Timing parameters of one packet slot, in bit periods.
///
/// [`SlotTiming::paper`] gives the exact Fig. 4 numbers; the type checks
/// any custom configuration for consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotTiming {
    /// Serial channel bit rate.
    pub rate: DataRate,
    /// Total slot length in bits.
    pub slot_bits: usize,
    /// Dead time before the window, in bits.
    pub dead_bits: usize,
    /// Guard band on each side of the window, in bits.
    pub guard_bits: usize,
    /// Pre-clock cycles for receiver start-up, in bits.
    pub pre_clock_bits: usize,
    /// Valid payload bits.
    pub data_bits: usize,
    /// Post-clock cycles for pipeline flush, in bits.
    pub post_clock_bits: usize,
}

impl SlotTiming {
    /// The paper's exact Fig. 4 configuration at 2.5 Gbps.
    pub fn paper() -> Self {
        SlotTiming {
            rate: DataRate::from_gbps(2.5),
            slot_bits: 64,
            dead_bits: 8,
            guard_bits: 5,
            pre_clock_bits: 7,
            data_bits: 32,
            post_clock_bits: 7,
        }
    }

    /// Validates that the segments tile the slot exactly:
    /// `dead + guard + pre + data + post + guard == slot`.
    ///
    /// # Errors
    ///
    /// [`TestbedError::BadSlotTiming`] on any inconsistency.
    pub fn validate(&self) -> Result<()> {
        let used = self.dead_bits
            + 2 * self.guard_bits
            + self.pre_clock_bits
            + self.data_bits
            + self.post_clock_bits;
        if used != self.slot_bits {
            return Err(TestbedError::BadSlotTiming {
                reason: "segments do not tile the slot exactly",
            });
        }
        if self.data_bits == 0 {
            return Err(TestbedError::BadSlotTiming { reason: "zero payload bits" });
        }
        if !self.data_bits.is_multiple_of(2) {
            return Err(TestbedError::BadSlotTiming {
                reason: "payload bits must be even for DDR clocking",
            });
        }
        Ok(())
    }

    /// One bit period.
    pub fn bit_period(&self) -> Duration {
        self.rate.unit_interval()
    }

    /// Total slot duration (25.6 ns for the paper values).
    pub fn slot_duration(&self) -> Duration {
        self.bit_period() * self.slot_bits as i64
    }

    /// Dead-time duration (3.2 ns).
    pub fn dead_duration(&self) -> Duration {
        self.bit_period() * self.dead_bits as i64
    }

    /// One guard-band duration (2.0 ns).
    pub fn guard_duration(&self) -> Duration {
        self.bit_period() * self.guard_bits as i64
    }

    /// Valid-data duration (12.8 ns).
    pub fn data_duration(&self) -> Duration {
        self.bit_period() * self.data_bits as i64
    }

    /// The maximum allowed clock/data window (18.4 ns): pre + data + post.
    pub fn window_bits(&self) -> usize {
        self.pre_clock_bits + self.data_bits + self.post_clock_bits
    }

    /// Window duration.
    pub fn window_duration(&self) -> Duration {
        self.bit_period() * self.window_bits() as i64
    }

    /// Bit offset of the window start within the slot (dead + guard).
    pub fn window_start_bit(&self) -> usize {
        self.dead_bits + self.guard_bits
    }

    /// Bit offset of the first payload bit within the slot.
    pub fn data_start_bit(&self) -> usize {
        self.window_start_bit() + self.pre_clock_bits
    }
}

/// The per-channel bit streams of one rendered slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotChannels {
    /// Source-synchronous clock channel (toggles through the window).
    pub clock: BitStream,
    /// Four payload channels.
    pub payload: [BitStream; 4],
    /// Frame bit (high during valid data only).
    pub frame: BitStream,
    /// Four header channels, each holding one routing-address bit for the
    /// whole slot.
    pub header: [BitStream; 4],
}

/// One packet slot: four 32-bit payload words plus a 4-bit routing address.
///
/// # Examples
///
/// ```
/// use testbed::frame::{PacketSlot, SlotTiming};
///
/// let slot = PacketSlot::new(SlotTiming::paper(), [1, 2, 3, 4], 0b1010);
/// let ch = slot.render_bits();
/// // The clock toggles exactly through the 46-bit window.
/// assert_eq!(ch.clock.count_ones(), 23);
/// // Frame marks the 32 payload bits.
/// assert_eq!(ch.frame.count_ones(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSlot {
    timing: SlotTiming,
    payload: [u32; 4],
    address: u8,
}

impl PacketSlot {
    /// Creates a slot with four payload words and a 4-bit routing address.
    ///
    /// # Panics
    ///
    /// Panics if the timing is internally inconsistent (use
    /// [`SlotTiming::validate`] first for fallible checking) or the payload
    /// width exceeds the timing's data bits.
    pub fn new(timing: SlotTiming, payload: [u32; 4], address: u8) -> Self {
        // xlint::allow(no-panic-in-lib, documented panic contract; SlotTiming::validate is the fallible path callers are told to use first)
        timing.validate().expect("slot timing must be consistent");
        assert!(timing.data_bits <= 32, "u32 payload supports at most 32 data bits");
        PacketSlot { timing, payload, address: address & 0x0F }
    }

    /// The slot timing.
    pub fn timing(&self) -> &SlotTiming {
        &self.timing
    }

    /// The payload words.
    pub fn payload(&self) -> [u32; 4] {
        self.payload
    }

    /// The 4-bit routing address.
    pub fn address(&self) -> u8 {
        self.address
    }

    /// Renders all ten channels (clock, 4 payload, frame, 4 header) as
    /// slot-length bit streams at the serial rate.
    pub fn render_bits(&self) -> SlotChannels {
        let t = &self.timing;
        let n = t.slot_bits;
        let window_start = t.window_start_bit();
        let window_end = window_start + t.window_bits();
        let data_start = t.data_start_bit();
        let data_end = data_start + t.data_bits;

        let clock = BitStream::from_fn(n, |i| {
            i >= window_start && i < window_end && (i - window_start).is_multiple_of(2)
        });
        let payload = core::array::from_fn(|ch| {
            let word = self.payload[ch];
            BitStream::from_fn(n, |i| {
                if i >= data_start && i < data_end {
                    let bit = i - data_start;
                    // MSB first across the valid window.
                    (word >> (t.data_bits - 1 - bit)) & 1 == 1
                } else {
                    false
                }
            })
        });
        let frame = BitStream::from_fn(n, |i| i >= data_start && i < data_end);
        let header = core::array::from_fn(|bit| {
            let value = (self.address >> (3 - bit)) & 1 == 1;
            // Header channels are low-speed: held for the whole active
            // window so the Data Vortex can sample them lazily.
            BitStream::from_fn(n, |i| value && i >= window_start && i < window_end)
        });
        SlotChannels { clock, payload, frame, header }
    }

    /// Extracts the payload back out of slot-aligned channel bit streams —
    /// the receiver-side inverse of [`render_bits`](Self::render_bits).
    ///
    /// # Panics
    ///
    /// Panics if the streams are shorter than the slot.
    pub fn extract_payload(timing: &SlotTiming, channels: &SlotChannels) -> [u32; 4] {
        let data_start = timing.data_start_bit();
        core::array::from_fn(|ch| {
            let mut word = 0u32;
            for i in 0..timing.data_bits {
                word = (word << 1) | u32::from(channels.payload[ch][data_start + i]);
            }
            word
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timing_is_exact_fig4() {
        let t = SlotTiming::paper();
        t.validate().unwrap();
        assert_eq!(t.bit_period(), Duration::from_ps(400));
        assert_eq!(t.slot_duration(), Duration::from_ns_f64(25.6));
        assert_eq!(t.dead_duration(), Duration::from_ns_f64(3.2));
        assert_eq!(t.guard_duration(), Duration::from_ns(2));
        assert_eq!(t.data_duration(), Duration::from_ns_f64(12.8));
        assert_eq!(t.window_bits(), 46);
        assert_eq!(t.window_duration(), Duration::from_ns_f64(18.4));
        assert_eq!(t.window_start_bit(), 13);
        assert_eq!(t.data_start_bit(), 20);
    }

    #[test]
    fn bad_timings_rejected() {
        let mut t = SlotTiming::paper();
        t.dead_bits = 9;
        assert!(matches!(t.validate(), Err(TestbedError::BadSlotTiming { .. })));
        let mut t = SlotTiming::paper();
        t.data_bits = 0;
        t.pre_clock_bits = 39;
        assert!(t.validate().is_err());
        let mut t = SlotTiming::paper();
        t.data_bits = 31;
        t.pre_clock_bits = 8;
        assert!(matches!(
            t.validate(),
            Err(TestbedError::BadSlotTiming {
                reason: "payload bits must be even for DDR clocking"
            })
        ));
    }

    #[test]
    fn channel_rendering_structure() {
        let slot = PacketSlot::new(SlotTiming::paper(), [0xFFFF_FFFF, 0, 0xAAAA_AAAA, 1], 0b1100);
        let ch = slot.render_bits();
        // Everything is slot-length.
        assert_eq!(ch.clock.len(), 64);
        assert!(ch.payload.iter().all(|p| p.len() == 64));
        assert_eq!(ch.frame.len(), 64);
        assert!(ch.header.iter().all(|h| h.len() == 64));
        // Dead time and guards are quiet on all channels.
        for i in 0..13 {
            assert!(!ch.clock[i]);
            assert!(!ch.frame[i]);
            assert!(!ch.payload[0][i]);
        }
        // Payload channel 0 (all ones) is high for exactly the data window.
        assert_eq!(ch.payload[0].count_ones(), 32);
        assert_eq!(ch.payload[1].count_ones(), 0);
        assert_eq!(ch.payload[2].count_ones(), 16);
        assert_eq!(ch.payload[3].count_ones(), 1);
        // Header bits: address 0b1100 -> channels 0,1 high, 2,3 low.
        assert_eq!(ch.header[0].count_ones(), 46);
        assert_eq!(ch.header[1].count_ones(), 46);
        assert_eq!(ch.header[2].count_ones(), 0);
        assert_eq!(ch.header[3].count_ones(), 0);
    }

    #[test]
    fn clock_covers_pre_and_post() {
        let slot = PacketSlot::new(SlotTiming::paper(), [0; 4], 0);
        let ch = slot.render_bits();
        // 46-bit window with alternating clock: 23 rising periods.
        assert_eq!(ch.clock.count_ones(), 23);
        // Clock starts at the window start (bit 13), before the data
        // (pre-clocks), and continues past data end (post-clocks).
        assert!(ch.clock[13]);
        assert!(ch.clock.iter().skip(52 + 2).take(5).any(|b| b)); // post region
    }

    #[test]
    fn payload_round_trips() {
        let words = [0xDEAD_BEEF, 0x0123_4567, 0x89AB_CDEF, 0x5555_AAAA];
        let slot = PacketSlot::new(SlotTiming::paper(), words, 0b0110);
        let ch = slot.render_bits();
        assert_eq!(PacketSlot::extract_payload(&SlotTiming::paper(), &ch), words);
        assert_eq!(slot.payload(), words);
        assert_eq!(slot.address(), 0b0110);
        assert_eq!(slot.timing().slot_bits, 64);
    }

    #[test]
    fn address_masked_to_four_bits() {
        let slot = PacketSlot::new(SlotTiming::paper(), [0; 4], 0xFF);
        assert_eq!(slot.address(), 0x0F);
    }

    #[test]
    #[should_panic(expected = "slot timing must be consistent")]
    fn inconsistent_timing_panics_in_ctor() {
        let mut t = SlotTiming::paper();
        t.guard_bits = 99;
        let _ = PacketSlot::new(t, [0; 4], 0);
    }
}
