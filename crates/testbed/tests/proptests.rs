//! Property-based tests for the Fig. 4 framing layer (pure, fast paths).

use proptest::prelude::*;
use testbed::frame::{PacketSlot, SlotTiming};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_payload_round_trips_through_the_frame(
        w0 in any::<u32>(),
        w1 in any::<u32>(),
        w2 in any::<u32>(),
        w3 in any::<u32>(),
        address in 0u8..16,
    ) {
        let timing = SlotTiming::paper();
        let slot = PacketSlot::new(timing, [w0, w1, w2, w3], address);
        let channels = slot.render_bits();
        prop_assert_eq!(PacketSlot::extract_payload(&timing, &channels), [w0, w1, w2, w3]);
        prop_assert_eq!(slot.address(), address);
    }

    #[test]
    fn frame_structure_invariants(w in any::<u32>(), address in any::<u8>()) {
        let timing = SlotTiming::paper();
        let slot = PacketSlot::new(timing, [w; 4], address);
        let ch = slot.render_bits();
        // Every channel is exactly slot-length.
        prop_assert_eq!(ch.clock.len(), timing.slot_bits);
        prop_assert_eq!(ch.frame.len(), timing.slot_bits);
        // The clock always has 23 highs (alternating across the 46-bit
        // window), regardless of payload.
        prop_assert_eq!(ch.clock.count_ones(), 23);
        // Frame marks exactly the payload window.
        prop_assert_eq!(ch.frame.count_ones(), timing.data_bits);
        // Dead time is quiet on every channel.
        for i in 0..timing.dead_bits {
            prop_assert!(!ch.clock[i]);
            prop_assert!(!ch.frame[i]);
            for p in &ch.payload {
                prop_assert!(!p[i]);
            }
            for h in &ch.header {
                prop_assert!(!h[i]);
            }
        }
        // Header channels encode the masked address, MSB first.
        for bit in 0..4usize {
            let expect = (address & 0x0F) >> (3 - bit) & 1 == 1;
            prop_assert_eq!(ch.header[bit].count_ones() > 0, expect);
        }
        // Payload ones never exceed the data window.
        for p in &ch.payload {
            prop_assert!(p.count_ones() <= timing.data_bits);
        }
    }

    #[test]
    fn custom_timings_tile_or_fail_validation(
        dead in 0usize..20,
        guard in 0usize..10,
        pre in 0usize..12,
        data_half in 1usize..20,
        post in 0usize..12,
    ) {
        let data = data_half * 2;
        let mut t = SlotTiming::paper();
        t.dead_bits = dead;
        t.guard_bits = guard;
        t.pre_clock_bits = pre;
        t.data_bits = data;
        t.post_clock_bits = post;
        t.slot_bits = dead + 2 * guard + pre + data + post;
        // A timing built to tile always validates (payload is even and
        // nonzero by construction)…
        prop_assert!(t.validate().is_ok());
        // …and its derived durations are consistent.
        prop_assert_eq!(
            t.window_bits(),
            pre + data + post
        );
        prop_assert_eq!(t.data_start_bit(), dead + guard + pre);
        // Breaking the tiling breaks validation.
        let mut broken = t;
        broken.slot_bits += 1;
        prop_assert!(broken.validate().is_err());
    }

    #[test]
    fn scaling_arithmetic_is_consistent(width_pow in 2u32..7, gbps_tenths in 10u64..120) {
        use testbed::scaling::ScalingPoint;
        let p = ScalingPoint {
            word_width: 1 << width_pow,
            rate_per_lambda: pstime::DataRate::from_bps(gbps_tenths * 100_000_000),
        };
        let agg = p.aggregate();
        prop_assert_eq!(agg.as_bps(), p.rate_per_lambda.as_bps() * u64::from(p.word_width));
        // Fig. 4 framing halves the effective rate.
        let eff = p.effective(&SlotTiming::paper());
        prop_assert_eq!(eff.as_bps(), agg.as_bps() / 2);
        // The mux fan-in is always a power of two and sufficient.
        let ways = p.mux_ways(400);
        prop_assert!(ways.is_power_of_two());
        prop_assert!(ways * 400_000_000 >= p.rate_per_lambda.as_bps());
    }
}
