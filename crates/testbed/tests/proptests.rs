//! Property-based tests for the Fig. 4 framing layer (pure, fast paths).
//!
//! Cases are drawn from named substreams of the first-party `rng` crate, so
//! every run covers the same randomized slice of the input space
//! deterministically.

use rng::{Rng, SeedTree};
use testbed::frame::{PacketSlot, SlotTiming};

const CASES: usize = 128;

fn cases(label: &str) -> (Rng, usize) {
    (SeedTree::new(0x7e57).stream("testbed.proptests").stream(label).rng(), CASES)
}

#[test]
fn any_payload_round_trips_through_the_frame() {
    let (mut rng, n) = cases("payload-round-trip");
    for _ in 0..n {
        let payload: [u32; 4] = core::array::from_fn(|_| rng.next_u32());
        let address = rng.range_u32(0..16) as u8;
        let timing = SlotTiming::paper();
        let slot = PacketSlot::new(timing, payload, address);
        let channels = slot.render_bits();
        assert_eq!(
            PacketSlot::extract_payload(&timing, &channels),
            payload,
            "payload={payload:?} address={address}"
        );
        assert_eq!(slot.address(), address);
    }
}

#[test]
fn frame_structure_invariants() {
    let (mut rng, n) = cases("frame-structure");
    for _ in 0..n {
        let w = rng.next_u32();
        let address = rng.range_u32(0..256) as u8;
        let timing = SlotTiming::paper();
        let slot = PacketSlot::new(timing, [w; 4], address);
        let ch = slot.render_bits();
        // Every channel is exactly slot-length.
        assert_eq!(ch.clock.len(), timing.slot_bits);
        assert_eq!(ch.frame.len(), timing.slot_bits);
        // The clock always has 23 highs (alternating across the 46-bit
        // window), regardless of payload.
        assert_eq!(ch.clock.count_ones(), 23, "w={w:#x}");
        // Frame marks exactly the payload window.
        assert_eq!(ch.frame.count_ones(), timing.data_bits);
        // Dead time is quiet on every channel.
        for i in 0..timing.dead_bits {
            assert!(!ch.clock[i]);
            assert!(!ch.frame[i]);
            for p in &ch.payload {
                assert!(!p[i]);
            }
            for h in &ch.header {
                assert!(!h[i]);
            }
        }
        // Header channels encode the masked address, MSB first.
        for bit in 0..4usize {
            let expect = (address & 0x0F) >> (3 - bit) & 1 == 1;
            assert_eq!(ch.header[bit].count_ones() > 0, expect, "address={address} bit={bit}");
        }
        // Payload ones never exceed the data window.
        for p in &ch.payload {
            assert!(p.count_ones() <= timing.data_bits);
        }
    }
}

#[test]
fn custom_timings_tile_or_fail_validation() {
    let (mut rng, n) = cases("custom-timings");
    for _ in 0..n {
        let dead = rng.range_usize(0..20);
        let guard = rng.range_usize(0..10);
        let pre = rng.range_usize(0..12);
        let data = rng.range_usize(1..20) * 2;
        let post = rng.range_usize(0..12);
        let mut t = SlotTiming::paper();
        t.dead_bits = dead;
        t.guard_bits = guard;
        t.pre_clock_bits = pre;
        t.data_bits = data;
        t.post_clock_bits = post;
        t.slot_bits = dead + 2 * guard + pre + data + post;
        // A timing built to tile always validates (payload is even and
        // nonzero by construction)…
        assert!(
            t.validate().is_ok(),
            "dead={dead} guard={guard} pre={pre} data={data} post={post}"
        );
        // …and its derived durations are consistent.
        assert_eq!(t.window_bits(), pre + data + post);
        assert_eq!(t.data_start_bit(), dead + guard + pre);
        // Breaking the tiling breaks validation.
        let mut broken = t;
        broken.slot_bits += 1;
        assert!(broken.validate().is_err());
    }
}

#[test]
fn scaling_arithmetic_is_consistent() {
    use testbed::scaling::ScalingPoint;
    let (mut rng, n) = cases("scaling");
    for _ in 0..n {
        let width_pow = rng.range_u32(2..7);
        let gbps_tenths = rng.range_u64(10..120);
        let p = ScalingPoint {
            word_width: 1 << width_pow,
            rate_per_lambda: pstime::DataRate::from_bps(gbps_tenths * 100_000_000),
        };
        let agg = p.aggregate();
        assert_eq!(
            agg.as_bps(),
            p.rate_per_lambda.as_bps() * u64::from(p.word_width),
            "width_pow={width_pow} gbps_tenths={gbps_tenths}"
        );
        // Fig. 4 framing halves the effective rate.
        let eff = p.effective(&SlotTiming::paper());
        assert_eq!(eff.as_bps(), agg.as_bps() / 2);
        // The mux fan-in is always a power of two and sufficient.
        let ways = p.mux_ways(400);
        assert!(ways.is_power_of_two());
        assert!(ways * 400_000_000 >= p.rate_per_lambda.as_bps());
    }
}
