//! Restarting a store-backed head must change nothing observable: the
//! routing table is byte-identical (ring positions depend only on head
//! index), the restarted head rehydrates its warm set from disk, and a
//! resubmitted campaign is served from cache with the same bytes.

use atd::{JobSpec, Provenance};
use atd_farm::{plan, Farm};

use std::path::PathBuf;

fn scratch_base(tag: &str) -> PathBuf {
    let base = std::env::temp_dir().join(format!("atd-farm-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    base
}

fn shmoo() -> JobSpec {
    JobSpec::Shmoo {
        rate_bps: 1_250_000_000,
        bits: 256,
        stim_seed: 7,
        phase_step_fs: 100_000_000,
        v_start_mv: -1400,
        v_end_mv: -1100,
        v_step_mv: 25,
        seed: 11,
    }
}

fn wafer() -> JobSpec {
    JobSpec::Wafer {
        columns: 4,
        dies: 24,
        sites: 2,
        hard_defect_rate: 0.25,
        marginal_rate: 0.1,
        rate_bps: 2_500_000_000,
        test_bits: 256,
        seed: 99,
    }
}

/// The full routing table for every sub-spec of every campaign spec.
fn routing_table(farm: &Farm<atd::Client<atd::Loopback>>, shards: usize) -> Vec<Option<usize>> {
    let mut table = Vec::new();
    for spec in [shmoo(), wafer()] {
        for sub in plan(&spec, shards).expect("plan") {
            table.push(farm.route(&sub));
        }
    }
    table
}

#[test]
fn a_restarted_head_rehydrates_with_the_routing_table_unchanged() {
    let base = scratch_base("rehydrate");
    let mut farm = Farm::in_proc_with_store(3, &base).expect("boot store-backed farm");

    let first_shmoo = farm.submit(1, shmoo()).expect("first shmoo");
    let first_wafer = farm.submit(1, wafer()).expect("first wafer");
    let table_before = routing_table(&farm, 3);

    // Pick the head that owns the first shmoo band so the restarted head
    // is guaranteed to be asked for something it persisted.
    let bands = plan(&shmoo(), 3).expect("plan");
    let victim = farm.route(bands.first().expect("bands")).expect("routable");
    farm.restart_head(victim).expect("restart");

    // Routing is untouched by a restart: byte-identical table, same
    // up-head count.
    assert_eq!(routing_table(&farm, 3), table_before, "restart must not move a single key");
    assert_eq!(farm.up_heads(), 3);

    // The restarted head rehydrated a non-empty warm set from disk.
    let stats = farm.head_stats();
    let victim_stats = stats
        .get(victim)
        .and_then(|r| r.as_ref().ok())
        .copied()
        .expect("victim head reports stats");
    assert!(
        victim_stats.store_recovered > 0,
        "the restarted head must rehydrate records from its store"
    );
    assert_eq!(victim_stats.submitted, 0, "a restarted service starts with fresh counters");

    // The resubmitted campaign is cache-served end to end — the
    // restarted head answers from its rehydrated store — and the merged
    // bytes match the pre-restart run exactly.
    let again_shmoo = farm.submit(1, shmoo()).expect("shmoo after restart");
    let again_wafer = farm.submit(1, wafer()).expect("wafer after restart");
    assert_eq!(again_shmoo.provenance, Provenance::Cache, "every shard must be cache-served");
    assert_eq!(again_wafer.provenance, Provenance::Cache);
    assert_eq!(
        again_shmoo.result.encoded().expect("encode"),
        first_shmoo.result.encoded().expect("encode")
    );
    assert_eq!(
        again_wafer.result.encoded().expect("encode"),
        first_wafer.result.encoded().expect("encode")
    );

    // And the victim really served store hits, not recomputations.
    let stats = farm.head_stats();
    let victim_stats = stats
        .get(victim)
        .and_then(|r| r.as_ref().ok())
        .copied()
        .expect("victim head reports stats");
    assert!(victim_stats.store_hits > 0, "rehydrated results must come off the store");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn a_memory_only_head_restarts_cold() {
    let mut farm = Farm::in_proc(2).expect("boot");
    farm.submit(1, shmoo()).expect("first");
    farm.restart_head(0).expect("restart");
    let stats = farm.head_stats();
    let head0 = stats.first().and_then(|r| r.as_ref().ok()).copied().expect("stats");
    assert_eq!(head0.store_recovered, 0, "no store directory, nothing to rehydrate");
    assert_eq!(head0.submitted, 0);
    // The campaign still completes (recomputed where needed), identical
    // bytes — determinism does not depend on the store.
    let again = farm.submit(1, shmoo()).expect("again");
    assert_eq!(again.shards, 2);
}

#[test]
fn restarting_an_unknown_head_is_a_typed_error() {
    let mut farm = Farm::in_proc(2).expect("boot");
    assert!(farm.restart_head(7).is_err());
}
