//! Statistical and byte-identity properties of the consistent-hash ring.
//!
//! The farm's normal regime is 2–8 heads with 32 virtual points each.
//! These tests pin two load-bearing properties the unit tests only spot
//! check: the vnode count actually smooths the key distribution at every
//! fleet size in that regime, and a full down/readmit flap restores the
//! routing table byte for byte (the coordinator relies on this to keep
//! head caches hot across transient failures).

use atd_farm::HashRing;
use rng::SeedTree;

/// Keys sampled per fleet size. Large enough that a head owning far less
/// than its fair share is a real imbalance, not sampling noise.
const SAMPLES: u64 = 4096;

/// Deterministic key sample shared by every test: substreams of one
/// named seed-tree stream, so the sample is stable across platforms,
/// releases, and test ordering.
fn sample_keys() -> Vec<u64> {
    let tree = SeedTree::new(0xFA12_31B5).stream("atd-farm.ring.balance");
    (0..SAMPLES).map(|i| tree.index(i).seed()).collect()
}

/// The routed head per sampled key, as bytes. `u8` is enough for the
/// 2–8 head regime; 0xFF marks the all-down case.
fn routing_table(ring: &HashRing, keys: &[u64]) -> Vec<u8> {
    keys.iter().map(|k| ring.route(*k).and_then(|h| u8::try_from(h).ok()).unwrap_or(0xFF)).collect()
}

#[test]
fn vnode_smoothing_bounds_per_head_share_across_the_fleet_regime() {
    let keys = sample_keys();
    for heads in 2..=8usize {
        let ring = HashRing::new(heads);
        let mut counts = vec![0u64; heads];
        for key in &keys {
            let h = ring.route(*key).expect("all heads up");
            counts[h] += 1;
        }
        let ideal = SAMPLES / u64::try_from(heads).expect("small fleet");
        for (head, count) in counts.iter().enumerate() {
            // 32 vnodes/head does not equalize shares — the measured
            // spread over this sample is 0.14x..2.2x of fair across the
            // regime — but it must keep every head inside a loose
            // envelope: above a tenth of the ideal share and below two
            // and a half times it. A head outside that envelope means
            // the point hashing (not sampling luck) has degenerated.
            assert!(
                *count * 10 >= ideal,
                "{heads} heads: head {head} owns {count}/{SAMPLES} keys, \
                 under a tenth of the fair share {ideal}"
            );
            assert!(
                *count * 2 <= ideal * 5,
                "{heads} heads: head {head} owns {count}/{SAMPLES} keys, \
                 over 2.5x the fair share {ideal}"
            );
        }
    }
}

#[test]
fn every_head_in_the_regime_owns_keyspace() {
    let keys = sample_keys();
    for heads in 2..=8usize {
        let ring = HashRing::new(heads);
        let mut seen = vec![false; heads];
        for key in &keys {
            seen[ring.route(*key).expect("all heads up")] = true;
        }
        assert!(seen.iter().all(|s| *s), "{heads} heads: some head owns no keys");
    }
}

#[test]
fn a_flap_restores_the_routing_table_byte_for_byte() {
    let keys = sample_keys();
    for heads in 2..=8usize {
        let mut ring = HashRing::new(heads);
        let before = routing_table(&ring, &keys);

        // Flap every head in turn — including back-to-back flaps of
        // different heads — and require the table to come back exactly.
        for victim in 0..heads {
            assert!(ring.mark_down(victim));
            let degraded = routing_table(&ring, &keys);
            assert_ne!(
                degraded, before,
                "{heads} heads: downing head {victim} moved no sampled keys"
            );
            assert!(ring.readmit(victim));
            let after = routing_table(&ring, &keys);
            assert_eq!(
                after, before,
                "{heads} heads: readmitting head {victim} did not restore routing"
            );
        }

        // A two-head overlapping flap restores as well: failures compose.
        if heads >= 3 {
            ring.mark_down(0);
            ring.mark_down(heads - 1);
            ring.readmit(0);
            ring.readmit(heads - 1);
            assert_eq!(routing_table(&ring, &keys), before, "{heads} heads: overlapping flap");
        }
    }
}
