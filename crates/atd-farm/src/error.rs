//! The farm's typed failure vocabulary.

use std::fmt;

use atd::wire::FrameError;

/// Why a farm operation failed.
///
/// Head-level errors (socket loss, remote failures, shed submissions) are
/// not surfaced individually: they mark the head down and the affected
/// sub-specs re-route. Only exhaustion of the whole fleet or of the retry
/// budget becomes a `FarmError`.
#[derive(Debug)]
#[non_exhaustive]
pub enum FarmError {
    /// A farm cannot be built over zero heads.
    NoHeads,
    /// Every head is marked down; nothing can route.
    AllHeadsDown {
        /// The spec kind that could not be routed.
        kind: &'static str,
    },
    /// Sub-specs still failed after the configured retry rounds.
    RetriesExhausted {
        /// The spec kind that gave up.
        kind: &'static str,
        /// Submission rounds attempted (initial + retries).
        attempts: u32,
        /// The last head error observed, rendered.
        last: String,
    },
    /// The spec failed validation or could not be sliced.
    Spec(FrameError),
    /// Sub-results could not be reassembled into the parent result.
    Merge {
        /// What the merge layer was checking.
        context: &'static str,
    },
    /// The coordinator's worker pool failed.
    Exec(exec::ExecError),
    /// Booting or restarting a head's service failed — e.g. its
    /// persistent store directory could not be opened. Distinct from
    /// in-flight head errors, which mark the head down and re-route.
    Head(atd::AtdError),
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::NoHeads => write!(f, "farm has no heads"),
            FarmError::AllHeadsDown { kind } => {
                write!(f, "every head is down; cannot route {kind} sub-specs")
            }
            FarmError::RetriesExhausted { kind, attempts, last } => {
                write!(f, "{kind} sub-specs failed after {attempts} rounds (last error: {last})")
            }
            FarmError::Spec(e) => write!(f, "spec error: {e}"),
            FarmError::Merge { context } => write!(f, "merge failure: {context}"),
            FarmError::Exec(e) => write!(f, "coordinator pool error: {e}"),
            FarmError::Head(e) => write!(f, "head boot failure: {e}"),
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Spec(e) => Some(e),
            FarmError::Exec(e) => Some(e),
            FarmError::Head(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for FarmError {
    fn from(e: FrameError) -> Self {
        FarmError::Spec(e)
    }
}

impl From<exec::ExecError> for FarmError {
    fn from(e: exec::ExecError) -> Self {
        FarmError::Exec(e)
    }
}

impl From<atd::AtdError> for FarmError {
    fn from(e: atd::AtdError) -> Self {
        FarmError::Head(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings_name_the_failure() {
        let text = FarmError::AllHeadsDown { kind: "wafer" }.to_string();
        assert!(text.contains("wafer"), "{text}");
        let text = FarmError::RetriesExhausted {
            kind: "shmoo",
            attempts: 3,
            last: "remote failure: boom".to_string(),
        }
        .to_string();
        assert!(text.contains("3 rounds") && text.contains("boom"), "{text}");
        let text = FarmError::Merge { context: "shards disagree" }.to_string();
        assert!(text.contains("shards disagree"), "{text}");
        let text =
            FarmError::from(atd::AtdError::Remote { message: "disk gone".to_string() }).to_string();
        assert!(text.contains("head boot") && text.contains("disk gone"), "{text}");
    }
}
