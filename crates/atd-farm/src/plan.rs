//! The shard planner: one composite spec in, ordered sub-specs out.
//!
//! Shardable specs expose a one-dimensional extent
//! ([`atd::JobSpec::shard_extent`]) — threshold rows for shmoo grids,
//! dies for wafer runs, strobe steps for eye scans — and the planner cuts
//! that axis into contiguous, balanced bands via
//! [`atd::JobSpec::slice`]. Indivisible specs (bathtub sweeps, and any
//! spec that is already a shard) pass through whole, as does any plan
//! that would produce a single band: the pass-through sub-spec *is* the
//! original spec, so its cache key — and therefore its routing and its
//! cached result — is identical to a single-head submission.

use atd::JobSpec;

use crate::error::FarmError;

/// Cuts `spec` into at most `shards` ordered sub-specs whose results
/// concatenate, in plan order, to the full result.
///
/// Bands are balanced: with extent `E` and `n` bands, the first `E % n`
/// bands get `E / n + 1` units and the rest `E / n`. The plan depends
/// only on `(spec, shards)`, never on fleet health — re-sharding after a
/// failure changes *routing*, not the plan — so a campaign replayed
/// against any fleet produces the same sub-specs and the same cache keys.
///
/// # Errors
///
/// [`FarmError::Spec`] if `spec` fails validation.
pub fn plan(spec: &JobSpec, shards: usize) -> Result<Vec<JobSpec>, FarmError> {
    spec.validate()?;
    let Some(extent) = spec.shard_extent() else {
        return Ok(vec![*spec]);
    };
    let want = u64::try_from(shards.max(1)).unwrap_or(u64::MAX);
    let bands = want.min(extent).max(1);
    if bands <= 1 {
        return Ok(vec![*spec]);
    }
    let base = extent / bands;
    let extra = extent % bands;
    let mut subs = Vec::new();
    let mut start = 0u64;
    for band in 0..bands {
        let count = base + u64::from(band < extra);
        let sub = spec
            .slice(start, count)
            .ok_or(FarmError::Merge { context: "planner cut a band outside the spec's extent" })?;
        subs.push(sub);
        start = start.saturating_add(count);
    }
    Ok(subs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shmoo() -> JobSpec {
        JobSpec::Shmoo {
            rate_bps: 1_250_000_000,
            bits: 256,
            stim_seed: 7,
            phase_step_fs: 100_000_000,
            v_start_mv: -1400,
            v_end_mv: -1000,
            v_step_mv: 25,
            seed: 11,
        }
    }

    #[test]
    fn bands_are_contiguous_balanced_and_ordered() {
        let spec = shmoo();
        let extent = spec.shard_extent().expect("shmoo is shardable");
        for shards in [1usize, 2, 3, 4, 7] {
            let subs = plan(&spec, shards).expect("plan");
            let expected = extent.min(u64::try_from(shards).expect("small")).max(1);
            assert_eq!(u64::try_from(subs.len()).expect("small"), expected);
            if subs.len() == 1 {
                assert_eq!(subs, vec![spec], "single band must pass through unchanged");
                continue;
            }
            let mut next = 0u64;
            let mut sizes = Vec::new();
            for sub in &subs {
                let JobSpec::ShmooRows { row_start, row_count, .. } = sub else {
                    panic!("unexpected sub-spec kind {}", sub.kind());
                };
                assert_eq!(u64::from(*row_start), next, "bands must tile without gaps");
                next += u64::from(*row_count);
                sizes.push(u64::from(*row_count));
            }
            assert_eq!(next, extent, "bands must cover the full extent");
            let min = sizes.iter().min().copied().unwrap_or(0);
            let max = sizes.iter().max().copied().unwrap_or(0);
            assert!(max - min <= 1, "bands must be balanced, got sizes {sizes:?}");
        }
    }

    #[test]
    fn indivisible_specs_pass_through() {
        let bathtub = JobSpec::Bathtub {
            rj_rms_fs: 1_500_000,
            dj_pp_fs: 12_000_000,
            rate_bps: 2_500_000_000,
            transition_density: 0.5,
            points: 41,
        };
        assert_eq!(plan(&bathtub, 4).expect("plan"), vec![bathtub]);
        // A shard is itself indivisible: planning it again passes it
        // through rather than slicing a slice.
        let sub = *plan(&shmoo(), 2).expect("plan").first().expect("non-empty");
        assert_eq!(plan(&sub, 4).expect("plan"), vec![sub]);
    }

    #[test]
    fn invalid_specs_are_rejected_before_planning() {
        let mut bad = shmoo();
        if let JobSpec::Shmoo { v_step_mv, .. } = &mut bad {
            *v_step_mv = 0;
        }
        assert!(matches!(plan(&bad, 2), Err(FarmError::Spec(_))));
    }

    #[test]
    fn more_shards_than_extent_degrades_to_one_per_unit() {
        let spec = shmoo();
        let extent = spec.shard_extent().expect("shardable");
        let subs = plan(&spec, 10_000).expect("plan");
        assert_eq!(u64::try_from(subs.len()).expect("small"), extent);
    }
}
