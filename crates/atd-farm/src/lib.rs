//! A sharded multi-head test farm over `atd` heads.
//!
//! The paper's §5 endgame is replicating the miniature wafer tester as an
//! *array*: many identical test heads probing in parallel under one
//! coordinator. This crate is that coordinator. It owns a fleet of `atd`
//! heads — in-process [`atd::Loopback`] services for tests, TCP
//! [`atd::PipelinedClient`] sessions for real deployments — and presents
//! the same `JobSpec → JobResult` surface as a single head.
//!
//! Four pieces compose the farm:
//!
//! - **Shard planner** ([`plan`]): decomposes composite specs along their
//!   natural axis — shmoo grids into threshold-row bands, wafer runs into
//!   die ranges, eye scans into strobe ranges — and passes indivisible
//!   specs through whole. Sub-specs are ordinary [`atd::JobSpec`]s, so
//!   every head validates, caches, and executes them like any other job.
//! - **Consistent-hash routing** ([`HashRing`]): a hash ring over head
//!   ids, keyed on the FNV-1a digest of each sub-spec's canonical key
//!   bytes. Identical sub-specs always land on the same head, so each
//!   head's content-addressed result cache stays hot across campaigns.
//! - **Failure model** ([`Farm`]): a head whose submit errs is marked
//!   down; its sub-specs re-route deterministically to the survivors and
//!   retry within a bounded budget ([`FarmConfig::retries`]). Downed
//!   heads can be re-admitted, after which routing reverts to the
//!   original ring assignment.
//! - **Merge layer** ([`merge`]): reassembles sub-results in plan order
//!   and regenerates the final [`atd::JobResult`] through the same native
//!   constructors a single head uses, so the farm's aggregate — data,
//!   counters, and rendered text alike — is byte-identical to a one-head
//!   run at any shard count, even after a mid-campaign failure.
//!
//! Determinism is inherited, not re-proven: sub-workloads seed every
//! cell/die/point from its *global* index, so a band computed on head 3
//! is bit-identical to the same band inside a monolithic run.
//!
//! Heads can also be durable: [`Farm::in_proc_with_store`] gives each
//! head its own persistent result store (`atd`'s `store` tier), and
//! [`Farm::restart_head`] reboots a head over the same directory. The
//! ring keys, the head caches, and the stores all hash with the same
//! FNV-1a digest, so a restarted head rehydrates exactly the warm set
//! the unchanged ring keeps routing to it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod farm;
mod head;
mod merge;
mod plan;
mod ring;

pub use error::FarmError;
pub use farm::{heads_from_env, Farm, FarmConfig, FarmStats, FarmSubmitted, HeadTally};
pub use head::{local_head, local_head_with_store, spec_route_key, Head};
pub use merge::merge;
pub use plan::plan;
pub use ring::HashRing;
