//! The merge layer: sub-results back into one byte-identical result.
//!
//! Merging does not stitch rendered text or counters by hand. It
//! concatenates the shards' *data* in plan order, rebuilds the native
//! workload object through the same `from_parts` constructors the
//! workloads expose, and regenerates the wire result through the same
//! `JobResult::from_*` path a single head uses — so the rendered map,
//! every derived counter, and the canonical encoding are reproduced by
//! construction rather than approximated. Sharding is invisible in the
//! output: `merge(plan(spec))` is byte-for-byte `execute(spec)`.

use atd::{JobResult, JobSpec};
use pstime::{DataRate, Duration, Millivolts};

use crate::error::FarmError;

fn to_usize(v: u32, context: &'static str) -> Result<usize, FarmError> {
    usize::try_from(v).map_err(|_| FarmError::Merge { context })
}

/// Reassembles `subs` — the shard results of [`crate::plan`] for `spec`,
/// in plan order — into the result a single head running `spec` whole
/// would have produced.
///
/// A single sub-result is returned as-is (the pass-through case: its
/// spec *was* the original spec).
///
/// # Errors
///
/// [`FarmError::Merge`] when the shards do not tile the spec — a missing
/// or duplicated band, disagreeing shared axes, or a result kind that
/// does not match the spec.
pub fn merge(spec: &JobSpec, subs: &[JobResult]) -> Result<JobResult, FarmError> {
    let mut iter = subs.iter();
    let first = iter.next().ok_or(FarmError::Merge { context: "no sub-results to merge" })?;
    if subs.len() == 1 {
        return Ok(first.clone());
    }
    match *spec {
        JobSpec::Shmoo { .. } => {
            let JobResult::Shmoo { phases_fs: axis, .. } = first else {
                return Err(FarmError::Merge { context: "shmoo spec got a non-shmoo shard" });
            };
            let mut thresholds = Vec::new();
            let mut pass = Vec::new();
            for sub in subs {
                let JobResult::Shmoo { thresholds_mv, phases_fs, pass: band, .. } = sub else {
                    return Err(FarmError::Merge { context: "shmoo spec got a non-shmoo shard" });
                };
                if phases_fs != axis {
                    return Err(FarmError::Merge {
                        context: "shmoo shards disagree on the phase axis",
                    });
                }
                thresholds.extend(thresholds_mv.iter().map(|mv| Millivolts::new(*mv)));
                pass.extend_from_slice(band);
            }
            let phases: Vec<Duration> = axis.iter().map(|fs| Duration::from_fs(*fs)).collect();
            let plot = minitester::ShmooPlot::from_parts(thresholds, phases, pass)
                .map_err(|_| FarmError::Merge { context: "shmoo shards do not tile the grid" })?;
            Ok(JobResult::from_shmoo(&plot)?)
        }
        JobSpec::Wafer { columns, .. } => {
            let JobResult::Wafer { touchdowns: td, .. } = first else {
                return Err(FarmError::Merge { context: "wafer spec got a non-wafer shard" });
            };
            let mut records = Vec::new();
            let mut hard = 0u64;
            let mut marginal = 0u64;
            for sub in subs {
                let JobResult::Wafer {
                    records: band,
                    touchdowns,
                    injected_hard,
                    injected_marginal,
                    ..
                } = sub
                else {
                    return Err(FarmError::Merge { context: "wafer spec got a non-wafer shard" });
                };
                if touchdowns != td {
                    // Touchdowns are full-wafer probe geometry, computed
                    // identically by every shard — disagreement means the
                    // shards ran different wafers.
                    return Err(FarmError::Merge {
                        context: "wafer shards disagree on probe touchdowns",
                    });
                }
                for rec in band {
                    let bin = match rec.bin {
                        0 => minitester::Bin::Good,
                        1 => minitester::Bin::FailBist,
                        2 => minitester::Bin::FailMargin,
                        _ => return Err(FarmError::Merge { context: "unknown wafer bin code" }),
                    };
                    records.push(minitester::DieRecord {
                        die: to_usize(rec.die, "die index exceeds the address space")?,
                        bin,
                        bist_errors: to_usize(rec.bist_errors, "bist count exceeds usize")?,
                        eye_ui: rec.eye_ui,
                    });
                }
                hard += u64::from(*injected_hard);
                marginal += u64::from(*injected_marginal);
            }
            let report = minitester::WaferReport::from_parts(
                records,
                to_usize(columns, "column count exceeds usize")?,
                to_usize(*td, "touchdown count exceeds usize")?,
                usize::try_from(hard)
                    .map_err(|_| FarmError::Merge { context: "injected-hard sum overflows" })?,
                usize::try_from(marginal)
                    .map_err(|_| FarmError::Merge { context: "injected-marginal sum overflows" })?,
            );
            Ok(JobResult::from_wafer(&report)?)
        }
        JobSpec::Eye { rate_bps, .. } => {
            let JobResult::Eye { step_fs: step, .. } = first else {
                return Err(FarmError::Merge { context: "eye spec got a non-eye shard" });
            };
            let mut points = Vec::new();
            for sub in subs {
                let JobResult::Eye { points: band, step_fs, .. } = sub else {
                    return Err(FarmError::Merge { context: "eye spec got a non-eye shard" });
                };
                if step_fs != step {
                    return Err(FarmError::Merge {
                        context: "eye shards disagree on the strobe step",
                    });
                }
                for (phase_fs, compared, errors) in band {
                    points.push(minitester::capture::ScanPoint {
                        phase: Duration::from_fs(*phase_fs),
                        compared: to_usize(*compared, "compared count exceeds usize")?,
                        errors: to_usize(*errors, "error count exceeds usize")?,
                    });
                }
            }
            let scan = minitester::EyeScan::from_parts(
                points,
                DataRate::from_bps(rate_bps),
                Duration::from_fs(*step),
            );
            Ok(JobResult::from_eye(&scan)?)
        }
        _ => Err(FarmError::Merge { context: "spec kind cannot be sharded" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_of_mismatched_kinds_is_rejected() {
        let spec = JobSpec::Shmoo {
            rate_bps: 1_250_000_000,
            bits: 256,
            stim_seed: 7,
            phase_step_fs: 100_000_000,
            v_start_mv: -1400,
            v_end_mv: -1000,
            v_step_mv: 25,
            seed: 11,
        };
        let alien = JobResult::Bathtub { pairs: Vec::new(), rendered: String::new() };
        let err = merge(&spec, &[alien.clone(), alien]).expect_err("kind mismatch must fail");
        assert!(matches!(err, FarmError::Merge { .. }));
        let err = merge(&spec, &[]).expect_err("empty merge must fail");
        assert!(matches!(err, FarmError::Merge { .. }));
    }

    #[test]
    fn disagreeing_shared_axes_are_rejected() {
        let spec = JobSpec::Shmoo {
            rate_bps: 1_250_000_000,
            bits: 256,
            stim_seed: 7,
            phase_step_fs: 100_000_000,
            v_start_mv: -1400,
            v_end_mv: -1000,
            v_step_mv: 25,
            seed: 11,
        };
        let a = JobResult::Shmoo {
            thresholds_mv: vec![-1400],
            phases_fs: vec![0, 100_000_000],
            pass: vec![true, false],
            rendered: String::new(),
        };
        let b = JobResult::Shmoo {
            thresholds_mv: vec![-1375],
            phases_fs: vec![0],
            pass: vec![true],
            rendered: String::new(),
        };
        let err = merge(&spec, &[a, b]).expect_err("axis mismatch must fail");
        assert!(matches!(err, FarmError::Merge { context } if context.contains("phase axis")));
    }
}
