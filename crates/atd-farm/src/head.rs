//! The coordinator's view of one test head.
//!
//! A head is anything that can execute a [`JobSpec`] and report service
//! counters: an in-process [`Loopback`] service (tests, benches), a
//! blocking THP/1 [`Client`] over any transport, or a THP/2
//! [`PipelinedClient`] session (real deployments). The farm treats every
//! submission error — including a `Busy` shed — as a head failure: the
//! coordinator's contract is bounded retries with re-shard, not
//! client-side backoff, so a head that cannot accept work right now is
//! simply routed around until re-admitted.

use std::path::Path;

use atd::scheduler::Scheduler;
use atd::store::{Store, StoreConfig};
use atd::stream::Event;
use atd::{
    AtdError, Client, JobResult, JobSpec, Loopback, PipelinedClient, Provenance, Service,
    ServiceStats, Submitted, Transport,
};
use exec::ExecPool;

/// One test head under farm control.
pub trait Head {
    /// Executes `spec` under `session`, returning how the result was
    /// produced and the result itself.
    ///
    /// # Errors
    ///
    /// [`AtdError`] for transport loss, remote failures, or a shed
    /// submission; any error marks the head down at the farm layer.
    fn submit(&mut self, session: u32, spec: JobSpec) -> Result<(Provenance, JobResult), AtdError>;

    /// The head's cumulative service counters.
    ///
    /// # Errors
    ///
    /// [`AtdError`] for transport loss or a remote failure.
    fn stats(&mut self) -> Result<ServiceStats, AtdError>;

    /// Asks the head to stop serving.
    ///
    /// # Errors
    ///
    /// [`AtdError`] for transport loss or a remote failure.
    fn shutdown(&mut self) -> Result<(), AtdError>;
}

fn busy(queue_depth: u32, queue_capacity: u32) -> AtdError {
    AtdError::Remote { message: format!("head shed the job: queue {queue_depth}/{queue_capacity}") }
}

impl<T: Transport> Head for Client<T> {
    fn submit(&mut self, session: u32, spec: JobSpec) -> Result<(Provenance, JobResult), AtdError> {
        match Client::submit(self, session, spec)? {
            Submitted::Done { provenance, result, .. } => Ok((provenance, result)),
            Submitted::Busy { queue_depth, queue_capacity } => {
                Err(busy(queue_depth, queue_capacity))
            }
        }
    }

    fn stats(&mut self) -> Result<ServiceStats, AtdError> {
        Client::stats(self)
    }

    fn shutdown(&mut self) -> Result<(), AtdError> {
        Client::shutdown(self)
    }
}

impl Head for PipelinedClient {
    fn submit(&mut self, session: u32, spec: JobSpec) -> Result<(Provenance, JobResult), AtdError> {
        let wanted = self.submit_pipelined(session, spec)?;
        loop {
            match self.next_event()? {
                Event::Done { correlation, provenance, result, .. } if correlation == wanted => {
                    return Ok((provenance, result));
                }
                Event::Busy { correlation, queue_depth, queue_capacity }
                    if correlation == wanted =>
                {
                    return Err(busy(queue_depth, queue_capacity));
                }
                Event::Failed { correlation, message, .. }
                    if correlation == wanted || correlation == atd::FAILURE_ID =>
                {
                    return Err(AtdError::Remote { message });
                }
                Event::Goodbye { .. } => {
                    return Err(AtdError::Remote {
                        message: "head shut down mid-submission".to_string(),
                    });
                }
                // Events for other correlations (stale chunks, pongs)
                // are drained and dropped: the farm pipelines one job
                // per head at a time.
                _ => {}
            }
        }
    }

    fn stats(&mut self) -> Result<ServiceStats, AtdError> {
        PipelinedClient::stats(self)
    }

    fn shutdown(&mut self) -> Result<(), AtdError> {
        PipelinedClient::shutdown(self)
    }
}

/// A fresh in-process head: a [`Loopback`] transport over a
/// [`Service`] configured from the environment (`EXEC_THREADS`,
/// `ATD_QUEUE_DEPTH`, `ATD_CACHE_ENTRIES`).
pub fn local_head() -> Client<Loopback> {
    Client::new(Loopback::new(Service::from_env()))
}

/// [`local_head`] with a persistent result store rooted at `dir`,
/// opened (or created) explicitly rather than via `ATD_STORE_DIR`. A
/// head restarted over the same directory rehydrates its warm set from
/// disk — and because [`spec_route_key`] and the store's index share
/// the same FNV-1a digest, the rehydrated set is exactly the keys the
/// ring still routes to this head.
///
/// # Errors
///
/// [`AtdError::Store`] when the store cannot be opened — unlike the
/// lenient env path, a head the caller *asked* to be durable refuses to
/// boot amnesiac.
pub fn local_head_with_store(dir: &Path) -> Result<Client<Loopback>, AtdError> {
    let store = Store::open(StoreConfig::new(dir))?;
    let service = Service::new(ExecPool::from_env(), Scheduler::from_env_with_store(store));
    Ok(Client::new(Loopback::new(service)))
}

/// The ring key a spec routes by: the FNV-1a digest of its canonical
/// key bytes — the *same* digest the head's result cache indexes by, so
/// routing affinity and cache affinity are one mechanism.
pub fn spec_route_key(spec: &JobSpec) -> u64 {
    atd::cache::fnv1a64(&spec.key_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::Bathtub {
            rj_rms_fs: 1_500_000,
            dj_pp_fs: 12_000_000,
            rate_bps: 2_500_000_000,
            transition_density: 0.5,
            points: 21,
        }
    }

    #[test]
    fn loopback_head_submits_and_reports_stats() {
        let mut head = local_head();
        let (provenance, first) = Head::submit(&mut head, 1, spec()).expect("submit");
        assert_eq!(provenance, Provenance::Computed);
        let (provenance, second) = Head::submit(&mut head, 1, spec()).expect("resubmit");
        assert_eq!(provenance, Provenance::Cache, "identical spec must hit the cache");
        assert_eq!(first, second);
        let stats = Head::stats(&mut head).expect("stats");
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn route_key_matches_the_cache_digest() {
        let spec = spec();
        assert_eq!(spec_route_key(&spec), atd::cache::fnv1a64(&spec.key_bytes()));
    }
}
