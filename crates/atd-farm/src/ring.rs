//! Consistent-hash routing of sub-spec keys to heads.
//!
//! The ring hashes each head id into a fixed number of virtual points
//! with the same FNV-1a digest the service's result cache uses
//! ([`atd::cache::fnv1a64`]). A sub-spec routes to the first *up* head at
//! or clockwise after its key's position, so:
//!
//! - identical sub-specs always land on the same head while the fleet is
//!   healthy, keeping that head's content-addressed cache hot;
//! - when a head goes down only the keys it owned move (to the next
//!   point on the ring), and they move *deterministically* — two
//!   coordinators observing the same failure re-shard identically;
//! - when the head is re-admitted those keys return home.

/// Virtual points per head. Enough to smooth the key distribution over
/// small fleets (the farm's normal regime is 2–8 heads) while keeping the
/// ring trivially small.
const VNODES: u64 = 32;

/// A consistent-hash ring over head indices `0..heads`, with per-head
/// health state.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, head)` pairs sorted by point; every head owns [`VNODES`]
    /// of them.
    points: Vec<(u64, usize)>,
    /// Health per head; routing skips downed heads.
    up: Vec<bool>,
}

/// The hashed ring position of one of a head's virtual points. The digest
/// runs over a tag plus the head and point ordinals in fixed-width
/// big-endian form, so the layout (and therefore every routing decision)
/// is stable across platforms and releases.
fn vnode_point(head: u64, vnode: u64) -> u64 {
    let mut bytes = Vec::with_capacity(26);
    bytes.extend_from_slice(b"farm-head:");
    bytes.extend_from_slice(&head.to_be_bytes());
    bytes.extend_from_slice(&vnode.to_be_bytes());
    atd::cache::fnv1a64(&bytes)
}

impl HashRing {
    /// A ring over `heads` heads, all initially up.
    pub fn new(heads: usize) -> HashRing {
        let mut points = Vec::new();
        for head in 0..heads {
            let head_ord = u64::try_from(head).unwrap_or(u64::MAX);
            for vnode in 0..VNODES {
                points.push((vnode_point(head_ord, vnode), head));
            }
        }
        points.sort_unstable();
        HashRing { points, up: vec![true; heads] }
    }

    /// Heads on the ring, up or down.
    pub fn heads(&self) -> usize {
        self.up.len()
    }

    /// Heads currently routable.
    pub fn up_heads(&self) -> usize {
        self.up.iter().filter(|h| **h).count()
    }

    /// Whether `head` is currently routable.
    pub fn is_up(&self, head: usize) -> bool {
        self.up.get(head).copied().unwrap_or(false)
    }

    /// Marks `head` down; returns whether that changed anything.
    pub fn mark_down(&mut self, head: usize) -> bool {
        match self.up.get_mut(head) {
            Some(state) if *state => {
                *state = false;
                true
            }
            _ => false,
        }
    }

    /// Re-admits `head`; returns whether that changed anything. Keys the
    /// head owned before going down route back to it immediately.
    pub fn readmit(&mut self, head: usize) -> bool {
        match self.up.get_mut(head) {
            Some(state) if !*state => {
                *state = true;
                true
            }
            _ => false,
        }
    }

    /// Walks the ring clockwise from `key`, yielding head candidates in
    /// ring order (each full circuit visits every point once).
    fn walk(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self.points.partition_point(|(p, _)| *p < key);
        self.points.iter().cycle().skip(start).take(self.points.len()).map(|(_, head)| *head)
    }

    /// The head `key` routes to: the first up head at or clockwise after
    /// the key's ring position. `None` when every head is down.
    pub fn route(&self, key: u64) -> Option<usize> {
        self.walk(key).find(|head| self.is_up(*head))
    }

    /// The head `key` would route to with every head up — its *home*.
    /// When [`route`](HashRing::route) disagrees with `home`, the key has
    /// been re-sharded by a failure.
    pub fn home(&self, key: u64) -> Option<usize> {
        self.walk(key).next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(4);
        for key in [0u64, 1, 0x8000_0000_0000_0000, u64::MAX] {
            let a = ring.route(key);
            let b = ring.route(key);
            assert_eq!(a, b);
            assert!(a.is_some_and(|h| h < 4));
            assert_eq!(a, ring.home(key));
        }
    }

    #[test]
    fn every_head_owns_some_keyspace() {
        let ring = HashRing::new(4);
        let mut owners = [false; 4];
        for i in 0..512u64 {
            let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            if let Some(h) = ring.route(key) {
                if let Some(slot) = owners.get_mut(h) {
                    *slot = true;
                }
            }
        }
        assert_eq!(owners, [true; 4], "some head owns no keys at all");
    }

    #[test]
    fn failure_moves_only_the_downed_heads_keys() {
        let mut ring = HashRing::new(4);
        let keys: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D)).collect();
        let before: Vec<Option<usize>> = keys.iter().map(|k| ring.route(*k)).collect();
        assert!(ring.mark_down(2));
        assert!(!ring.mark_down(2), "double mark-down must be a no-op");
        let mut moved = 0;
        for (key, owner) in keys.iter().zip(&before) {
            let now = ring.route(*key);
            assert_ne!(now, Some(2), "downed head still routed");
            if *owner == Some(2) {
                moved += 1;
            } else {
                assert_eq!(now, *owner, "a healthy head's key moved");
            }
        }
        assert!(moved > 0, "head 2 owned no sampled keys; test is vacuous");
        assert!(ring.readmit(2));
        let after: Vec<Option<usize>> = keys.iter().map(|k| ring.route(*k)).collect();
        assert_eq!(after, before, "re-admission must restore the original routing");
    }

    #[test]
    fn all_down_routes_nothing() {
        let mut ring = HashRing::new(2);
        ring.mark_down(0);
        ring.mark_down(1);
        assert_eq!(ring.up_heads(), 0);
        assert_eq!(ring.route(42), None);
        // Home routing ignores health: the key still has an owner.
        assert!(ring.home(42).is_some_and(|h| h < 2));
    }
}
