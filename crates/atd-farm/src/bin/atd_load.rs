//! Closed-loop load generator for the ATE daemon and the test farm.
//!
//! ```text
//! cargo run --release -p gigatest-atd-farm --bin atd-load                  # timed, TCP, THP/1
//! cargo run --release -p gigatest-atd-farm --bin atd-load -- --requests 2000
//! cargo run --release -p gigatest-atd-farm --bin atd-load -- --canary     # deterministic
//! cargo run --release -p gigatest-atd-farm --bin atd-load -- --pipeline 2 --depth 64
//! cargo run --release -p gigatest-atd-farm --bin atd-load -- --pipeline --canary
//! cargo run --release -p gigatest-atd-farm --bin atd-load -- --farm 3     # sharded fleet
//! cargo run --release -p gigatest-atd-farm --bin atd-load -- --farm 3 --canary
//! cargo run --release -p gigatest-atd-farm --bin atd-load -- --restart    # durable store
//! cargo run --release -p gigatest-atd-farm --bin atd-load -- --restart --canary
//! ```
//!
//! The default mode boots an in-process `atd` daemon on an ephemeral TCP
//! port, drives it with a mixed request stream (submits, batches, pings,
//! stats polls) over real sockets, and reports throughput, latency, and
//! cache hit rate to `BENCH_atd.json`. Every repeated spec's result is
//! checked byte-for-byte against its first occurrence — the load test
//! doubles as a cache-identity audit — and the run fails on any protocol
//! error or byte mismatch.
//!
//! `--pipeline N` switches to THP/2: N concurrent sessions, each its own
//! connection keeping a depth-K window (`--depth K`) of correlated
//! submissions in flight, with every result arriving as a verified chunk
//! stream. The per-submission latency (submit to terminal event) feeds
//! the same p50/p99 report.
//!
//! `--canary` skips clocks: it drives a fixed mix and prints only
//! deterministic bytes (result digests and order-independent counters).
//! CI runs it under `EXEC_THREADS=1` and `=4` and diffs the output —
//! with and without `--pipeline` — extending the workspace's
//! thread-count invariance proof through the wire protocol, scheduler,
//! chunker, and cache.
//!
//! `--restart` exercises the persistent result store: a store-backed
//! in-process daemon runs one full campaign cold, is dropped, and a
//! fresh daemon is rebooted over the same directory — the reboot is
//! timed (rehydration wall time, segment scan plus index rebuild) and
//! the repeated campaign's warm hit rate and store counters land in
//! `BENCH_store.json`. With `--canary` the restart is made hostile: the
//! first daemon is killed after half the stream, a torn record tail is
//! appended to the newest segment (a crash mid-`put`), and the reopened
//! daemon must truncate the tear, rehydrate, and serve the full stream
//! byte-identically — the per-spec digest table must match the plain
//! canary's exactly, which CI enforces by diffing the two.
//!
//! `--farm N` drives an in-process fleet of N heads through the
//! `atd-farm` coordinator: composite specs shard across the fleet and
//! merge back, a head is killed halfway through the timed run to
//! exercise the re-shard path, and the report lands in `BENCH_farm.json`
//! (throughput, latency quantiles, per-head cache-hit rates, re-shard
//! count). `--farm N --canary` prints the *merged* per-spec digests —
//! output that must be identical at any fleet size, which CI enforces by
//! diffing 1 head against 3.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::Instant; // xlint::allow(no-wall-clock, load-generator harness: wall time is the measurand here and never feeds back into results)

use atd::stream::Event;
use atd::{
    AtdError, BatchSubmitted, Client, JobResult, JobSpec, Loopback, PipelinedClient, Provenance,
    Service, Submitted, TcpClient, Transport,
};
use pstime::{DataRate, Duration};

/// The fixed workload table: small variants of all four job kinds, sized
/// so a full mixed run stays in seconds while still exercising every
/// wire encoding and the batching/caching machinery.
fn spec_table() -> Vec<JobSpec> {
    let rate = DataRate::from_gbps(2.5);
    let mut specs = Vec::new();
    // Shmoo: a narrow 3-row band around the PECL midpoint.
    for (stim_seed, seed) in [(17, 5), (17, 6), (18, 5), (18, 6)] {
        specs.push(JobSpec::Shmoo {
            rate_bps: rate.as_bps(),
            bits: 256,
            stim_seed,
            phase_step_fs: Duration::from_ps(10).as_fs(),
            v_start_mv: -1400,
            v_end_mv: -1200,
            v_step_mv: 100,
            seed,
        });
    }
    // Wafer: four dies, two sites, modest defect rates.
    for seed in [1, 2, 3, 4] {
        specs.push(JobSpec::Wafer {
            columns: 2,
            dies: 4,
            sites: 2,
            hard_defect_rate: 0.25,
            marginal_rate: 0.0,
            rate_bps: rate.as_bps(),
            test_bits: 256,
            seed,
        });
    }
    // Eye scans over two stimuli.
    for (stim_seed, seed) in [(21, 9), (21, 10), (22, 9), (22, 10)] {
        specs.push(JobSpec::eye(rate, 256, stim_seed, seed));
    }
    // Bathtub sweeps across two jitter budgets.
    for (rj_ps, points) in [(3, 2001), (3, 1001), (5, 2001), (5, 1001)] {
        specs.push(JobSpec::bathtub(
            Duration::from_ps(rj_ps),
            Duration::from_ps(20),
            rate,
            0.5,
            points,
        ));
    }
    specs
}

/// Running tallies across the request stream.
#[derive(Debug, Default)]
struct Tally {
    requests: u64,
    jobs: u64,
    computed: u64,
    cached: u64,
    batched: u64,
    busy: u64,
    protocol_errors: u64,
    mismatches: u64,
}

impl Tally {
    fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            to_f64(self.cached + self.batched) / to_f64(self.jobs)
        }
    }
}

fn to_f64(n: u64) -> f64 {
    u32::try_from(n).map(f64::from).unwrap_or(f64::MAX)
}

/// Byte-identity ledger: first-seen result bytes per spec key.
#[derive(Debug, Default)]
struct Ledger {
    first_seen: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl Ledger {
    /// Records `result` for `spec`; returns false on a byte mismatch with
    /// the first occurrence.
    fn check(&mut self, spec: &JobSpec, result: &JobResult) -> bool {
        let key = spec.key_bytes();
        let bytes = result.encoded().unwrap_or_default();
        match self.first_seen.get(&key) {
            Some(first) => *first == bytes,
            None => {
                self.first_seen.insert(key, bytes);
                true
            }
        }
    }
}

fn note_submitted(tally: &mut Tally, provenance: Provenance) {
    tally.jobs += 1;
    match provenance {
        Provenance::Computed => tally.computed += 1,
        Provenance::Cache => tally.cached += 1,
        Provenance::Batched => tally.batched += 1,
    }
}

/// Drives one request of the mixed stream against `client`.
fn drive_one<T: Transport>(
    client: &mut Client<T>,
    specs: &[JobSpec],
    i: u64,
    tally: &mut Tally,
    ledger: &mut Ledger,
) -> Result<(), AtdError> {
    tally.requests += 1;
    let session = u32::try_from(i % 4).unwrap_or(0);
    if i % 97 == 13 {
        let token = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if client.ping(token)? != token {
            tally.protocol_errors += 1;
        }
        return Ok(());
    }
    if i % 131 == 7 {
        client.stats()?;
        return Ok(());
    }
    let slot = usize::try_from(i).unwrap_or(0) % specs.len().max(1);
    if i % 50 == 49 {
        // A batch of three consecutive table entries (wrapping).
        let mut batch = Vec::new();
        for k in 0..3 {
            if let Some(spec) = specs.get((slot + k) % specs.len().max(1)) {
                batch.push(*spec);
            }
        }
        match client.submit_batch(session, batch.clone())? {
            BatchSubmitted::Done(outcomes) => {
                for (spec, (_, provenance, outcome)) in batch.iter().zip(&outcomes) {
                    match outcome {
                        Ok(result) => {
                            note_submitted(tally, *provenance);
                            if !ledger.check(spec, result) {
                                tally.mismatches += 1;
                            }
                        }
                        Err(_) => tally.protocol_errors += 1,
                    }
                }
            }
            BatchSubmitted::Busy { .. } => tally.busy += 1,
        }
        return Ok(());
    }
    let Some(spec) = specs.get(slot) else {
        return Ok(());
    };
    match client.submit(session, *spec)? {
        Submitted::Done { provenance, result, .. } => {
            note_submitted(tally, provenance);
            if !ledger.check(spec, &result) {
                tally.mismatches += 1;
            }
        }
        Submitted::Busy { .. } => tally.busy += 1,
    }
    Ok(())
}

/// Deterministic loopback run: prints per-spec result digests and the
/// final counters — nothing wall-clock-dependent.
fn canary(requests: u64) -> Result<(), String> {
    let specs = spec_table();
    let mut client = Client::new(Loopback::new(Service::from_env()));
    let mut tally = Tally::default();
    let mut ledger = Ledger::default();
    for i in 0..requests {
        drive_one(&mut client, &specs, i, &mut tally, &mut ledger)
            .map_err(|e| format!("request {i} failed: {e}"))?;
    }
    println!("== atd canary ==");
    for spec in &specs {
        let key = spec.key_bytes();
        let digest =
            ledger.first_seen.get(&key).map(|bytes| atd::cache::fnv1a64(bytes)).unwrap_or_default();
        println!("{:8} {:016x} {:016x}", spec.kind(), atd::cache::fnv1a64(&key), digest);
    }
    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    println!(
        "jobs {} computed {} cached {} batched {} busy {} mismatches {}",
        tally.jobs, tally.computed, tally.cached, tally.batched, tally.busy, tally.mismatches
    );
    println!(
        "service: submitted {} completed {} cache_hits {} batched {} shed {} failed {} frames_rejected {} connections_failed {}",
        stats.submitted,
        stats.completed,
        stats.cache_hits,
        stats.batched,
        stats.shed,
        stats.failed,
        stats.frames_rejected,
        stats.connections_failed
    );
    if tally.mismatches > 0 || tally.protocol_errors > 0 {
        return Err(format!(
            "canary run saw {} mismatches, {} protocol errors",
            tally.mismatches, tally.protocol_errors
        ));
    }
    Ok(())
}

/// Byte-identity ledger for the streaming path: first-seen FNV-1a digest
/// of the result bytes per spec key. The digest is accumulated from the
/// chunk frames as they land (the same bytes the summary verifies), so
/// repeat identity costs one hash pass instead of a re-encode and
/// byte-compare per result.
#[derive(Debug, Default)]
struct DigestLedger {
    first_seen: BTreeMap<Vec<u8>, u64>,
}

impl DigestLedger {
    /// Records `digest` for `spec`; returns false on a mismatch with the
    /// first occurrence.
    fn check(&mut self, spec: &JobSpec, digest: u64) -> bool {
        let key = spec.key_bytes();
        match self.first_seen.get(&key) {
            Some(first) => *first == digest,
            None => {
                self.first_seen.insert(key, digest);
                true
            }
        }
    }
}

/// One pipelined session's results.
#[derive(Debug, Default)]
struct PipeReport {
    tally: Tally,
    ledger: DigestLedger,
    latencies_s: Vec<f64>,
    chunk_frames: u64,
}

/// Drives `requests` submissions through one THP/2 connection, keeping a
/// depth-`depth` window in flight. Submission `i` carries session id
/// `session_base + (i % session_stride)` and spec `i % table-size` — a
/// deterministic sliding window over the spec table. Latencies are
/// recorded per correlation (submit to terminal event) when asked.
fn run_pipeline(
    addr: std::net::SocketAddr,
    specs: &[JobSpec],
    session_base: u32,
    session_stride: u32,
    depth: usize,
    requests: u64,
    record_latency: bool,
) -> Result<PipeReport, String> {
    let mut client =
        PipelinedClient::connect(addr).map_err(|e| format!("cannot connect pipeline: {e}"))?;
    let mut report = PipeReport::default();
    let mut pending: BTreeMap<u64, (usize, Instant)> = BTreeMap::new();
    let mut submitted: u64 = 0;
    // Refill one-for-one: top the window back to `depth` before every
    // event read. Kernel socket buffering already batches the submissions
    // into few syscalls, and measured throughput beats a half-depth
    // hysteresis refill — a drained window leaves the daemon idle for a
    // full client-daemon handoff on this 1-CPU box.
    while submitted < requests || client.in_flight() > 0 {
        while submitted < requests && client.in_flight() < depth.max(1) {
            let slot = usize::try_from(submitted).unwrap_or(0) % specs.len().max(1);
            let Some(spec) = specs.get(slot) else {
                return Err("empty spec table".to_string());
            };
            let lane = u32::try_from(submitted % u64::from(session_stride.max(1))).unwrap_or(0);
            let correlation = client
                .submit_pipelined(session_base.wrapping_add(lane), *spec)
                .map_err(|e| format!("submission {submitted} failed: {e}"))?;
            report.tally.requests += 1;
            pending.insert(correlation, (slot, Instant::now()));
            submitted += 1;
        }
        match client.next_event().map_err(|e| format!("pipeline event failed: {e}"))? {
            Event::Chunk { .. } => {
                report.chunk_frames += 1;
            }
            Event::Done { correlation, provenance, digest, .. } => {
                note_submitted(&mut report.tally, provenance);
                match pending.remove(&correlation) {
                    Some((slot, t0)) => {
                        if record_latency {
                            report.latencies_s.push(t0.elapsed().as_secs_f64());
                        }
                        // `digest` is the stream digest the reassembler
                        // already verified against the chunk bytes; the
                        // ledger cross-checks it against every other run
                        // of the same spec.
                        let ok = specs
                            .get(slot)
                            .map(|spec| report.ledger.check(spec, digest))
                            .unwrap_or(false);
                        if !ok {
                            report.tally.mismatches += 1;
                        }
                    }
                    None => report.tally.protocol_errors += 1,
                }
            }
            Event::Busy { correlation, .. } => {
                pending.remove(&correlation);
                report.tally.busy += 1;
            }
            Event::Failed { correlation, .. } => {
                pending.remove(&correlation);
                report.tally.protocol_errors += 1;
            }
            Event::Pong { .. } | Event::Stats { .. } | Event::Goodbye { .. } => {
                report.tally.protocol_errors += 1;
            }
        }
    }
    Ok(report)
}

/// Boots a daemon and returns its listener address plus join handle.
fn boot_daemon(
) -> Result<(std::net::SocketAddr, std::thread::JoinHandle<Result<Service, AtdError>>), String> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind daemon: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    let daemon = std::thread::spawn(move || atd::serve(&listener, Service::from_env()));
    Ok((addr, daemon))
}

/// Fetches final counters and stops the daemon over a THP/2 session.
fn finish_daemon(
    addr: std::net::SocketAddr,
    daemon: std::thread::JoinHandle<Result<Service, AtdError>>,
) -> Result<atd::ServiceStats, String> {
    let mut admin =
        PipelinedClient::connect(addr).map_err(|e| format!("cannot connect admin: {e}"))?;
    let stats = admin.stats().map_err(|e| format!("stats failed: {e}"))?;
    admin.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    daemon
        .join()
        .map_err(|_| "daemon thread panicked".to_string())?
        .map_err(|e| format!("daemon failed: {e}"))?;
    Ok(stats)
}

/// Deterministic pipelined run: one THP/2 connection against a real
/// daemon, printing per-spec digests and order-independent counters.
/// Cache-vs-batch provenance depends on how submissions group into drain
/// cycles (a socket-timing artefact), so only `computed` and the merged
/// reuse count are printed — both invariant.
fn pipelined_canary(sessions: u32, depth: usize, requests: u64) -> Result<(), String> {
    let specs = spec_table();
    let (addr, daemon) = boot_daemon()?;
    let report = run_pipeline(addr, &specs, 0, sessions, depth, requests, false)?;
    let stats = finish_daemon(addr, daemon)?;

    println!("== atd pipelined canary ==");
    for spec in &specs {
        let key = spec.key_bytes();
        let digest = report.ledger.first_seen.get(&key).copied().unwrap_or_default();
        println!("{:8} {:016x} {:016x}", spec.kind(), atd::cache::fnv1a64(&key), digest);
    }
    println!(
        "jobs {} computed {} reused {} busy {} mismatches {} chunk_frames {}",
        report.tally.jobs,
        report.tally.computed,
        report.tally.cached + report.tally.batched,
        report.tally.busy,
        report.tally.mismatches,
        report.chunk_frames
    );
    println!(
        "service: submitted {} completed {} shed {} failed {} frames_rejected {} connections_failed {}",
        stats.submitted,
        stats.completed,
        stats.shed,
        stats.failed,
        stats.frames_rejected,
        stats.connections_failed
    );
    if report.tally.mismatches > 0 || report.tally.protocol_errors > 0 {
        return Err(format!(
            "pipelined canary saw {} mismatches, {} protocol errors",
            report.tally.mismatches, report.tally.protocol_errors
        ));
    }
    Ok(())
}

/// Timed pipelined run: `sessions` worker threads, each its own THP/2
/// connection and depth-K window; writes `BENCH_atd.json`.
fn pipelined_bench(sessions: u32, depth: usize, requests: u64) -> Result<(), String> {
    let (addr, daemon) = boot_daemon()?;
    eprintln!(
        "atd-load: daemon on {addr}, {requests} pipelined submissions across {sessions} sessions (depth {depth})"
    );
    let specs = spec_table();

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..sessions.max(1) {
        let specs = specs.clone();
        let share = requests / u64::from(sessions.max(1))
            + u64::from(u64::from(worker) < requests % u64::from(sessions.max(1)));
        handles.push(std::thread::spawn(move || {
            run_pipeline(addr, &specs, worker, 1, depth, share, true)
        }));
    }
    let mut reports = Vec::new();
    for handle in handles {
        reports.push(handle.join().map_err(|_| "worker thread panicked".to_string())??);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let stats = finish_daemon(addr, daemon)?;

    // Merge the per-session reports and cross-check the ledgers: every
    // session must have seen byte-identical results per spec.
    let mut tally = Tally::default();
    let mut latencies_s = Vec::new();
    let mut chunk_frames: u64 = 0;
    let mut merged = DigestLedger::default();
    for report in reports {
        tally.requests += report.tally.requests;
        tally.jobs += report.tally.jobs;
        tally.computed += report.tally.computed;
        tally.cached += report.tally.cached;
        tally.batched += report.tally.batched;
        tally.busy += report.tally.busy;
        tally.protocol_errors += report.tally.protocol_errors;
        tally.mismatches += report.tally.mismatches;
        chunk_frames += report.chunk_frames;
        latencies_s.extend(report.latencies_s);
        for (key, digest) in report.ledger.first_seen {
            match merged.first_seen.get(&key) {
                Some(first) if *first != digest => tally.mismatches += 1,
                Some(_) => {}
                None => {
                    merged.first_seen.insert(key, digest);
                }
            }
        }
    }

    let json =
        render_json(&tally, &stats, &latencies_s, elapsed_s, Some((sessions, depth, chunk_frames)));
    match std::fs::write("BENCH_atd.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_atd.json"),
        Err(e) => return Err(format!("failed to write BENCH_atd.json: {e}")),
    }
    print!("{json}");

    if tally.protocol_errors > 0 || tally.mismatches > 0 {
        return Err(format!(
            "pipelined run saw {} protocol errors, {} result mismatches",
            tally.protocol_errors, tally.mismatches
        ));
    }
    Ok(())
}

/// Renders the benchmark report; shared by both timed modes.
fn render_json(
    tally: &Tally,
    stats: &atd::ServiceStats,
    latencies_s: &[f64],
    elapsed_s: f64,
    pipeline: Option<(u32, usize, u64)>,
) -> String {
    let (mean_s, p50_s, p99_s) = latency_summary(latencies_s);
    let rps = if elapsed_s > 0.0 { to_f64(tally.requests) / elapsed_s } else { 0.0 };

    let mut json = String::new();
    json.push_str("{\n");
    match pipeline {
        Some((sessions, depth, chunk_frames)) => {
            json.push_str("  \"mode\": \"pipelined\",\n");
            json.push_str(&format!(
                "  \"pipeline\": {{ \"sessions\": {sessions}, \"depth\": {depth} }},\n"
            ));
            json.push_str(&format!("  \"chunk_frames\": {chunk_frames},\n"));
        }
        None => json.push_str("  \"mode\": \"serial\",\n"),
    }
    json.push_str(&format!("  \"requests\": {},\n", tally.requests));
    json.push_str(&format!("  \"jobs\": {},\n", tally.jobs));
    json.push_str(&format!("  \"elapsed_s\": {elapsed_s:.6},\n"));
    json.push_str(&format!("  \"requests_per_s\": {rps:.1},\n"));
    json.push_str(&format!("  \"latency_mean_s\": {mean_s:.6},\n"));
    json.push_str(&format!("  \"latency_p50_s\": {p50_s:.6},\n"));
    json.push_str(&format!("  \"latency_p99_s\": {p99_s:.6},\n"));
    json.push_str(&format!("  \"cache_hit_rate\": {:.4},\n", tally.hit_rate()));
    json.push_str(&format!(
        "  \"provenance\": {{ \"computed\": {}, \"cached\": {}, \"batched\": {} }},\n",
        tally.computed, tally.cached, tally.batched
    ));
    json.push_str(&format!("  \"busy\": {},\n", tally.busy));
    json.push_str(&format!("  \"protocol_errors\": {},\n", tally.protocol_errors));
    json.push_str(&format!("  \"result_mismatches\": {},\n", tally.mismatches));
    json.push_str(&format!("  \"service\": {}\n", service_json(stats)));
    json.push_str("}\n");
    json
}

/// The service-counter block, shared by every bench schema — single-head
/// and farm reports must stay field-for-field comparable.
fn service_json(stats: &atd::ServiceStats) -> String {
    format!(
        "{{ \"submitted\": {}, \"completed\": {}, \"cache_hits\": {}, \"batched\": {}, \"shed\": {}, \"failed\": {}, \"connections_opened\": {}, \"connections_closed\": {}, \"frames_rejected\": {}, \"connections_failed\": {}, \"store_hits\": {}, \"store_misses\": {}, \"store_recovered\": {} }}",
        stats.submitted,
        stats.completed,
        stats.cache_hits,
        stats.batched,
        stats.shed,
        stats.failed,
        stats.connections_opened,
        stats.connections_closed,
        stats.frames_rejected,
        stats.connections_failed,
        stats.store_hits,
        stats.store_misses,
        stats.store_recovered
    )
}

/// Mean, p50, and p99 of a latency sample (seconds).
fn latency_summary(latencies_s: &[f64]) -> (f64, f64, f64) {
    let mut sorted = latencies_s.to_vec();
    sorted.sort_by(f64::total_cmp);
    let quantile = |q_permille: u64| -> f64 {
        let Some(last) = sorted.len().checked_sub(1) else {
            return 0.0;
        };
        let idx = (u64::try_from(last).unwrap_or(0) * q_permille + 500) / 1000;
        let idx = usize::try_from(idx).unwrap_or(0).min(last);
        sorted.get(idx).copied().unwrap_or(0.0)
    };
    let mean_s = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / to_f64(u64::try_from(sorted.len()).unwrap_or(1))
    };
    (mean_s, quantile(500), quantile(990))
}

/// Drives one submission of the farm stream: round-robin over the spec
/// table, sessions striped 0..4 like the single-head stream.
fn drive_farm_one(
    farm: &mut atd_farm::Farm<Client<Loopback>>,
    specs: &[JobSpec],
    i: u64,
    tally: &mut Tally,
    ledger: &mut Ledger,
) -> Result<(), atd_farm::FarmError> {
    tally.requests += 1;
    let session = u32::try_from(i % 4).unwrap_or(0);
    let slot = usize::try_from(i).unwrap_or(0) % specs.len().max(1);
    let Some(spec) = specs.get(slot) else {
        return Ok(());
    };
    let done = farm.submit(session, *spec)?;
    note_submitted(tally, done.provenance);
    if !ledger.check(spec, &done.result) {
        tally.mismatches += 1;
    }
    Ok(())
}

/// Deterministic farm run: shards every composite spec across an
/// in-process fleet and prints per-spec *merged* digests plus
/// head-count-invariant counters. CI diffs this output at 1 head vs 3
/// heads (and across `EXEC_THREADS`) — the byte-identity proof for the
/// whole plan → route → drain → merge path, since a merged digest can
/// only match the one-head digest if every band landed and concatenated
/// correctly. Fleet-shape-dependent counters (sub-specs, per-head loads)
/// deliberately stay out of this output.
fn farm_canary(heads: usize, requests: u64) -> Result<(), String> {
    let specs = spec_table();
    let mut farm = atd_farm::Farm::in_proc(heads).map_err(|e| format!("cannot boot farm: {e}"))?;
    let mut tally = Tally::default();
    let mut ledger = Ledger::default();
    for i in 0..requests {
        drive_farm_one(&mut farm, &specs, i, &mut tally, &mut ledger)
            .map_err(|e| format!("submission {i} failed: {e}"))?;
    }
    println!("== atd farm canary ==");
    for spec in &specs {
        let key = spec.key_bytes();
        let digest =
            ledger.first_seen.get(&key).map(|bytes| atd::cache::fnv1a64(bytes)).unwrap_or_default();
        println!("{:8} {:016x} {:016x}", spec.kind(), atd::cache::fnv1a64(&key), digest);
    }
    println!(
        "jobs {} computed {} reused {} mismatches {}",
        tally.jobs,
        tally.computed,
        tally.cached + tally.batched,
        tally.mismatches
    );
    if tally.mismatches > 0 {
        return Err(format!("farm canary saw {} result mismatches", tally.mismatches));
    }
    Ok(())
}

/// Timed farm run: drives the in-process fleet end to end, kills a head
/// halfway through to exercise the re-shard path, and writes
/// `BENCH_farm.json` with throughput, latency quantiles, per-head
/// cache-hit rates, and the re-shard count.
fn farm_bench(heads: usize, requests: u64) -> Result<(), String> {
    let specs = spec_table();
    let mut farm = atd_farm::Farm::in_proc(heads).map_err(|e| format!("cannot boot farm: {e}"))?;
    eprintln!("atd-load: in-proc farm of {heads} heads, {requests} submissions");
    let mut tally = Tally::default();
    let mut ledger = Ledger::default();
    let mut latencies_s = Vec::with_capacity(usize::try_from(requests).unwrap_or(0));
    let kill_at = requests / 2;
    let mut killed: Option<usize> = None;

    let t0 = Instant::now();
    for i in 0..requests {
        if i == kill_at && heads > 1 {
            // Inject the failure the farm is built for: take down the
            // first up head mid-campaign and leave it down, so the back
            // half of the run measures the re-sharded fleet.
            killed = (0..heads).find(|h| farm.is_up(*h));
            if let Some(victim) = killed {
                farm.kill(victim);
            }
        }
        let t = Instant::now();
        drive_farm_one(&mut farm, &specs, i, &mut tally, &mut ledger)
            .map_err(|e| format!("submission {i} failed: {e}"))?;
        latencies_s.push(t.elapsed().as_secs_f64());
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let head_stats = farm.head_stats();
    let json = render_farm_json(&tally, &farm, &head_stats, &latencies_s, elapsed_s, killed);
    match std::fs::write("BENCH_farm.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_farm.json"),
        Err(e) => return Err(format!("failed to write BENCH_farm.json: {e}")),
    }
    print!("{json}");

    if tally.mismatches > 0 {
        return Err(format!("farm run saw {} result mismatches", tally.mismatches));
    }
    Ok(())
}

/// Renders the farm benchmark report. The `service` block aggregates all
/// heads with the same schema as `BENCH_atd.json`; `per_head` breaks out
/// each head's submission and cache-hit tallies; `farm.reshards` is the
/// number of sub-spec routings that diverged from their all-up home after
/// the injected kill.
fn render_farm_json(
    tally: &Tally,
    farm: &atd_farm::Farm<Client<Loopback>>,
    head_stats: &[Result<atd::ServiceStats, AtdError>],
    latencies_s: &[f64],
    elapsed_s: f64,
    killed: Option<usize>,
) -> String {
    let (mean_s, p50_s, p99_s) = latency_summary(latencies_s);
    let rps = if elapsed_s > 0.0 { to_f64(tally.requests) / elapsed_s } else { 0.0 };
    let stats = farm.stats();

    let mut aggregate = atd::ServiceStats::default();
    let mut per_head = String::new();
    for (head, outcome) in head_stats.iter().enumerate() {
        let comma = if head == 0 { "" } else { ",\n" };
        match outcome {
            Ok(s) => {
                aggregate.submitted += s.submitted;
                aggregate.completed += s.completed;
                aggregate.cache_hits += s.cache_hits;
                aggregate.batched += s.batched;
                aggregate.shed += s.shed;
                aggregate.failed += s.failed;
                aggregate.connections_opened += s.connections_opened;
                aggregate.connections_closed += s.connections_closed;
                aggregate.connections_failed += s.connections_failed;
                aggregate.frames_rejected += s.frames_rejected;
                aggregate.store_hits += s.store_hits;
                aggregate.store_misses += s.store_misses;
                aggregate.store_recovered += s.store_recovered;
                aggregate.queue_capacity =
                    aggregate.queue_capacity.saturating_add(s.queue_capacity);
                aggregate.cache_capacity =
                    aggregate.cache_capacity.saturating_add(s.cache_capacity);
                let hit_rate =
                    if s.submitted == 0 { 0.0 } else { to_f64(s.cache_hits) / to_f64(s.submitted) };
                per_head.push_str(&format!(
                    "{comma}    {{ \"head\": {head}, \"up\": {}, \"submitted\": {}, \"completed\": {}, \"cache_hits\": {}, \"cache_hit_rate\": {hit_rate:.4} }}",
                    farm.is_up(head),
                    s.submitted,
                    s.completed,
                    s.cache_hits
                ));
            }
            Err(e) => {
                per_head.push_str(&format!(
                    "{comma}    {{ \"head\": {head}, \"up\": {}, \"error\": {:?} }}",
                    farm.is_up(head),
                    e.to_string()
                ));
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"mode\": \"farm\",\n");
    json.push_str(&format!(
        "  \"farm\": {{ \"heads\": {}, \"killed_head\": {}, \"reshards\": {}, \"retry_rounds\": {}, \"heads_down\": {}, \"sub_specs\": {}, \"merged\": {}, \"pass_through\": {} }},\n",
        farm.heads(),
        killed.map(|h| h.to_string()).unwrap_or_else(|| "null".to_string()),
        stats.rerouted,
        stats.retry_rounds,
        stats.heads_down,
        stats.sub_specs,
        stats.merged,
        stats.pass_through
    ));
    json.push_str(&format!("  \"requests\": {},\n", tally.requests));
    json.push_str(&format!("  \"jobs\": {},\n", tally.jobs));
    json.push_str(&format!("  \"elapsed_s\": {elapsed_s:.6},\n"));
    json.push_str(&format!("  \"requests_per_s\": {rps:.1},\n"));
    json.push_str(&format!("  \"latency_mean_s\": {mean_s:.6},\n"));
    json.push_str(&format!("  \"latency_p50_s\": {p50_s:.6},\n"));
    json.push_str(&format!("  \"latency_p99_s\": {p99_s:.6},\n"));
    json.push_str(&format!("  \"cache_hit_rate\": {:.4},\n", tally.hit_rate()));
    json.push_str(&format!(
        "  \"provenance\": {{ \"computed\": {}, \"cached\": {}, \"batched\": {} }},\n",
        tally.computed, tally.cached, tally.batched
    ));
    json.push_str(&format!("  \"result_mismatches\": {},\n", tally.mismatches));
    json.push_str("  \"per_head\": [\n");
    json.push_str(&per_head);
    json.push_str("\n  ],\n");
    json.push_str(&format!("  \"service\": {}\n", service_json(&aggregate)));
    json.push_str("}\n");
    json
}

/// Timed TCP run against an in-process daemon; writes `BENCH_atd.json`.
fn bench(requests: u64) -> Result<(), String> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind daemon: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    let daemon = std::thread::spawn(move || atd::serve(&listener, Service::from_env()));
    eprintln!("atd-load: daemon on {addr}, {requests} requests");

    let specs = spec_table();
    let mut client = Client::new(
        TcpClient::connect(addr).map_err(|e| format!("cannot connect to daemon: {e}"))?,
    );
    let mut tally = Tally::default();
    let mut ledger = Ledger::default();
    let mut latencies_s = Vec::with_capacity(usize::try_from(requests).unwrap_or(0));

    let t0 = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        drive_one(&mut client, &specs, i, &mut tally, &mut ledger)
            .map_err(|e| format!("request {i} failed: {e}"))?;
        latencies_s.push(t.elapsed().as_secs_f64());
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    daemon
        .join()
        .map_err(|_| "daemon thread panicked".to_string())?
        .map_err(|e| format!("daemon failed: {e}"))?;

    let json = render_json(&tally, &stats, &latencies_s, elapsed_s, None);
    match std::fs::write("BENCH_atd.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_atd.json"),
        Err(e) => return Err(format!("failed to write BENCH_atd.json: {e}")),
    }
    print!("{json}");

    if tally.protocol_errors > 0 || tally.mismatches > 0 {
        return Err(format!(
            "load run saw {} protocol errors, {} result mismatches",
            tally.protocol_errors, tally.mismatches
        ));
    }
    Ok(())
}

/// Scratch directory for a store-backed run: deterministic per process,
/// wiped before and after so a stale tree never pollutes a measurement.
fn store_scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("atd-load-store-{}-{tag}", std::process::id()))
}

/// Simulates a crash mid-`put`: appends the first bytes of a record
/// (valid magic, torn header) to the newest segment file, exactly the
/// tail a power cut leaves behind. The reopened store must truncate it.
fn tear_newest_segment(dir: &Path) -> Result<(), String> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot list store dir: {e}"))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "atds"))
        .collect();
    segments.sort();
    let newest = segments.pop().ok_or("store left no segment files")?;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&newest)
        .map_err(|e| format!("cannot reopen segment: {e}"))?;
    std::io::Write::write_all(&mut file, b"ASR1\x00\x00\x00")
        .map_err(|e| format!("cannot tear the segment tail: {e}"))
}

/// Timed store run: one campaign cold against a store-backed daemon,
/// drop it, time the reboot over the same directory (segment scan +
/// index rebuild), then the same campaign warm. Writes
/// `BENCH_store.json`: per-phase throughput and latency, rehydration
/// wall time, and the warm-restart hit rate.
fn store_restart_bench(requests: u64) -> Result<(), String> {
    let dir = store_scratch("bench");
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = store_restart_bench_in(&dir, requests);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

fn store_restart_bench_in(dir: &Path, requests: u64) -> Result<(), String> {
    let specs = spec_table();
    let mut client =
        atd_farm::local_head_with_store(dir).map_err(|e| format!("cannot open store: {e}"))?;
    eprintln!("atd-load: store-backed daemon in {}, {requests} requests per phase", dir.display());
    // One ledger across both phases: the restarted daemon must serve the
    // exact bytes the first daemon computed.
    let mut ledger = Ledger::default();

    let mut cold = Tally::default();
    let mut cold_lat = Vec::with_capacity(usize::try_from(requests).unwrap_or(0));
    let t0 = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        drive_one(&mut client, &specs, i, &mut cold, &mut ledger)
            .map_err(|e| format!("cold request {i} failed: {e}"))?;
        cold_lat.push(t.elapsed().as_secs_f64());
    }
    let cold_s = t0.elapsed().as_secs_f64();
    drop(client);

    let t1 = Instant::now();
    let mut client =
        atd_farm::local_head_with_store(dir).map_err(|e| format!("cannot reopen store: {e}"))?;
    let rehydrate_s = t1.elapsed().as_secs_f64();

    let mut warm = Tally::default();
    let mut warm_lat = Vec::with_capacity(usize::try_from(requests).unwrap_or(0));
    let t2 = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        drive_one(&mut client, &specs, i, &mut warm, &mut ledger)
            .map_err(|e| format!("warm request {i} failed: {e}"))?;
        warm_lat.push(t.elapsed().as_secs_f64());
    }
    let warm_s = t2.elapsed().as_secs_f64();
    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;

    let json = render_store_json(
        (&cold, cold_s, &cold_lat),
        (&warm, warm_s, &warm_lat),
        rehydrate_s,
        &stats,
    );
    match std::fs::write("BENCH_store.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_store.json"),
        Err(e) => return Err(format!("failed to write BENCH_store.json: {e}")),
    }
    print!("{json}");

    let errors = cold.protocol_errors + warm.protocol_errors;
    let mismatches = cold.mismatches + warm.mismatches;
    if errors > 0 || mismatches > 0 {
        return Err(format!(
            "store run saw {errors} protocol errors, {mismatches} result mismatches"
        ));
    }
    Ok(())
}

/// Renders the store benchmark report: the shared `service` schema plus
/// a per-phase block, so cold-vs-warm is one `jq` away. Each phase is
/// `(tally, elapsed seconds, per-request latencies)`.
fn render_store_json(
    cold: (&Tally, f64, &[f64]),
    warm: (&Tally, f64, &[f64]),
    rehydrate_s: f64,
    stats: &atd::ServiceStats,
) -> String {
    let phase = |(tally, elapsed_s, lats): (&Tally, f64, &[f64])| {
        let (mean_s, p50_s, p99_s) = latency_summary(lats);
        let rps = if elapsed_s > 0.0 { to_f64(tally.requests) / elapsed_s } else { 0.0 };
        format!(
            "{{ \"requests\": {}, \"jobs\": {}, \"elapsed_s\": {elapsed_s:.6}, \"requests_per_s\": {rps:.1}, \"latency_mean_s\": {mean_s:.6}, \"latency_p50_s\": {p50_s:.6}, \"latency_p99_s\": {p99_s:.6}, \"cache_hit_rate\": {:.4} }}",
            tally.requests,
            tally.jobs,
            tally.hit_rate()
        )
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"mode\": \"store-restart\",\n");
    json.push_str(&format!("  \"cold\": {},\n", phase(cold)));
    json.push_str(&format!("  \"rehydrate_s\": {rehydrate_s:.6},\n"));
    json.push_str(&format!("  \"rehydrated_records\": {},\n", stats.store_recovered));
    json.push_str(&format!("  \"warm\": {},\n", phase(warm)));
    json.push_str(&format!("  \"warm_hit_rate\": {:.4},\n", warm.0.hit_rate()));
    json.push_str(&format!(
        "  \"result_mismatches\": {},\n",
        cold.0.mismatches + warm.0.mismatches
    ));
    json.push_str(&format!("  \"service\": {}\n", service_json(stats)));
    json.push_str("}\n");
    json
}

/// Deterministic store run with a hostile restart: half the stream
/// against a store-backed daemon, kill it, tear the newest segment's
/// tail (a crash mid-`put`), reboot over the same directory, then the
/// full stream. One ledger spans both daemons, so any byte drift across
/// the crash/recover boundary is a hard failure — and the digest table
/// is printed in the plain canary's format so CI can diff the two.
fn store_restart_canary(requests: u64) -> Result<(), String> {
    let dir = store_scratch("canary");
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = store_restart_canary_in(&dir, requests);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

fn store_restart_canary_in(dir: &Path, requests: u64) -> Result<(), String> {
    let specs = spec_table();
    let mut tally = Tally::default();
    let mut ledger = Ledger::default();

    let mut client =
        atd_farm::local_head_with_store(dir).map_err(|e| format!("cannot open store: {e}"))?;
    for i in 0..requests / 2 {
        drive_one(&mut client, &specs, i, &mut tally, &mut ledger)
            .map_err(|e| format!("request {i} failed before the crash: {e}"))?;
    }
    drop(client);
    tear_newest_segment(dir)?;

    let mut client =
        atd_farm::local_head_with_store(dir).map_err(|e| format!("cannot reopen store: {e}"))?;
    for i in 0..requests {
        drive_one(&mut client, &specs, i, &mut tally, &mut ledger)
            .map_err(|e| format!("request {i} failed after the restart: {e}"))?;
    }
    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;

    println!("== atd store canary ==");
    for spec in &specs {
        let key = spec.key_bytes();
        let digest =
            ledger.first_seen.get(&key).map(|bytes| atd::cache::fnv1a64(bytes)).unwrap_or_default();
        println!("{:8} {:016x} {:016x}", spec.kind(), atd::cache::fnv1a64(&key), digest);
    }
    println!(
        "jobs {} computed {} cached {} batched {} busy {} mismatches {}",
        tally.jobs, tally.computed, tally.cached, tally.batched, tally.busy, tally.mismatches
    );
    println!(
        "service: submitted {} completed {} cache_hits {} failed {} store_hits {} store_misses {} store_recovered {}",
        stats.submitted,
        stats.completed,
        stats.cache_hits,
        stats.failed,
        stats.store_hits,
        stats.store_misses,
        stats.store_recovered
    );
    if tally.mismatches > 0 || tally.protocol_errors > 0 {
        return Err(format!(
            "store canary saw {} mismatches, {} protocol errors",
            tally.mismatches, tally.protocol_errors
        ));
    }
    if stats.store_recovered == 0 {
        return Err("the restarted daemon rehydrated nothing".to_string());
    }
    Ok(())
}

/// Parsed command line.
#[derive(Debug)]
struct Options {
    canary_mode: bool,
    /// `Some(sessions)` when `--pipeline` was given.
    pipeline: Option<u32>,
    /// `Some(heads)` when `--farm` was given.
    farm: Option<usize>,
    /// `--restart`: drive a store-backed daemon through a kill/reboot.
    restart: bool,
    depth: usize,
    requests: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut canary_mode = false;
    let mut pipeline: Option<u32> = None;
    let mut farm: Option<usize> = None;
    let mut restart = false;
    // Matches the daemon's default per-session cap: the deepest window
    // that is never shed, and the measured throughput sweet spot.
    let mut depth: usize = 64;
    let mut requests: Option<u64> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--canary" => canary_mode = true,
            "--restart" => restart = true,
            "--pipeline" => {
                // Optional session count: `--pipeline 8` or bare `--pipeline`.
                let sessions = match args.peek().map(|next| next.parse::<u32>()) {
                    Some(Ok(n)) => {
                        args.next();
                        n.max(1)
                    }
                    _ => 2,
                };
                pipeline = Some(sessions);
            }
            "--farm" => {
                // Optional fleet size: `--farm 3` or bare `--farm`
                // (then `ATD_FARM_HEADS`, default 2).
                let heads = match args.peek().map(|next| next.parse::<usize>()) {
                    Some(Ok(n)) => {
                        args.next();
                        n.max(1)
                    }
                    _ => atd_farm::heads_from_env(),
                };
                farm = Some(heads);
            }
            "--depth" => {
                let value = args.next().ok_or("--depth requires a value")?;
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad pipeline depth {value:?}"))?;
                depth = parsed.max(1);
            }
            "--requests" => {
                let value = args.next().ok_or("--requests requires a value")?;
                requests = Some(value.parse().map_err(|_| format!("bad request count {value:?}"))?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: atd-load [--canary] [--pipeline [N]] [--farm [N]] [--restart] [--depth K] [--requests N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if farm.is_some() && pipeline.is_some() {
        return Err("--farm and --pipeline are mutually exclusive".to_string());
    }
    if restart && (farm.is_some() || pipeline.is_some()) {
        return Err("--restart drives the serial loopback path only".to_string());
    }
    // Canary defaults are small (CI diffs them twice); the timed serial
    // default is the 1000-request mixed stream, and the pipelined timed
    // default is larger so the measurement amortises daemon start-up.
    // Farm submissions are whole campaigns (a merged composite each), so
    // the timed default is smaller again.
    let requests = requests.unwrap_or(match (canary_mode, pipeline.is_some(), farm.is_some()) {
        (true, _, _) => 200,
        (false, true, _) => 20_000,
        (false, false, true) => 400,
        (false, false, false) => 1000,
    });
    Ok(Options { canary_mode, pipeline, farm, restart, depth, requests })
}

fn main() {
    let result = parse_args().and_then(|opts| match (opts.canary_mode, opts.pipeline, opts.farm) {
        (true, _, Some(heads)) => farm_canary(heads, opts.requests),
        (false, _, Some(heads)) => farm_bench(heads, opts.requests),
        (true, Some(sessions), None) => pipelined_canary(sessions, opts.depth, opts.requests),
        (false, Some(sessions), None) => pipelined_bench(sessions, opts.depth, opts.requests),
        (true, None, None) if opts.restart => store_restart_canary(opts.requests),
        (false, None, None) if opts.restart => store_restart_bench(opts.requests),
        (true, None, None) => canary(opts.requests),
        (false, None, None) => bench(opts.requests),
    });
    if let Err(message) = result {
        eprintln!("atd-load: {message}");
        std::process::exit(2);
    }
}
