//! The farm daemon: a THP/1 front-end over an in-process head fleet.
//!
//! ```text
//! cargo run --release -p gigatest-atd-farm --bin atd-farm -- --addr 127.0.0.1:4816 --heads 3
//! ```
//!
//! Speaks the same THP/1 request vocabulary as a single `atd` daemon —
//! clients cannot tell a farm from a head, except that composite jobs
//! shard across the fleet. `--heads` (or `ATD_FARM_HEADS`) sizes the
//! fleet, `ATD_FARM_RETRIES` bounds re-shard rounds, and the usual
//! service knobs (`EXEC_THREADS`, `ATD_QUEUE_DEPTH`, `ATD_CACHE_ENTRIES`)
//! configure each head. The bound address is printed on stdout as
//! `atd-farm listening on <addr>` so wrappers can bind port 0 and
//! discover the ephemeral port.

use std::net::{TcpListener, TcpStream};

use atd::{read_frame, write_frame, Request, Response, ServiceStats};
use atd_farm::{heads_from_env, Farm, FarmError};

const DEFAULT_ADDR: &str = "127.0.0.1:4816";

struct Options {
    addr: String,
    heads: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut options = Options { addr: DEFAULT_ADDR.to_string(), heads: heads_from_env() };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => options.addr = a,
                None => return Err("--addr requires a value".to_string()),
            },
            "--heads" => match args.next() {
                Some(n) => {
                    options.heads = n
                        .trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| format!("--heads requires a positive integer, got {n:?}"))?;
                }
                None => return Err("--heads requires a value".to_string()),
            },
            "--help" | "-h" => {
                return Err(format!(
                    "usage: atd-farm [--addr HOST:PORT] [--heads N]   (default {DEFAULT_ADDR}, heads from ATD_FARM_HEADS)"
                ))
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(options)
}

/// Fleet-wide counters: the sum of every head's stats, capacities
/// included, so `submitted`/`cache_hits` describe the whole farm.
fn aggregate_stats(farm: &mut Farm<atd::Client<atd::Loopback>>) -> ServiceStats {
    let mut total = ServiceStats::default();
    for stats in farm.head_stats().into_iter().flatten() {
        total.submitted += stats.submitted;
        total.completed += stats.completed;
        total.cache_hits += stats.cache_hits;
        total.batched += stats.batched;
        total.shed += stats.shed;
        total.failed += stats.failed;
        total.connections_opened += stats.connections_opened;
        total.connections_closed += stats.connections_closed;
        total.connections_failed += stats.connections_failed;
        total.frames_rejected += stats.frames_rejected;
        total.store_hits += stats.store_hits;
        total.store_misses += stats.store_misses;
        total.store_recovered += stats.store_recovered;
        total.queue_capacity = total.queue_capacity.saturating_add(stats.queue_capacity);
        total.cache_capacity = total.cache_capacity.saturating_add(stats.cache_capacity);
    }
    total
}

/// Serves one connection; returns whether a shutdown was requested.
fn serve_connection(
    stream: &mut TcpStream,
    farm: &mut Farm<atd::Client<atd::Loopback>>,
    ticket: &mut u64,
) -> bool {
    loop {
        let (ty, payload) = match read_frame(stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return false,
        };
        let request = match Request::from_parts(ty, &payload) {
            Ok(request) => request,
            // A malformed frame poisons the connection's framing; drop
            // the peer, keep the daemon.
            Err(_) => return false,
        };
        let (response, shutdown) = match request {
            Request::Ping { token } => (Response::Pong { token }, false),
            Request::GetStats => (Response::StatsReport(aggregate_stats(farm)), false),
            Request::Submit { session, spec } => {
                *ticket += 1;
                let response = match farm.submit(session, spec) {
                    Ok(done) => Response::JobDone {
                        ticket: *ticket,
                        provenance: done.provenance,
                        result: done.result,
                    },
                    Err(e) => Response::Failed { ticket: *ticket, message: e.to_string() },
                };
                (response, false)
            }
            Request::SubmitBatch { session, specs } => {
                let mut outcomes = Vec::with_capacity(specs.len());
                for spec in specs {
                    *ticket += 1;
                    let outcome = match farm.submit(session, spec) {
                        Ok(done) => (*ticket, done.provenance, Ok(done.result)),
                        Err(e) => (*ticket, atd::Provenance::Computed, Err(e.to_string())),
                    };
                    outcomes.push(outcome);
                }
                (Response::BatchDone { outcomes }, false)
            }
            Request::Shutdown => (Response::Goodbye, true),
        };
        let Ok(frame) = response.to_frame() else {
            return false;
        };
        if write_frame(stream, &frame).is_err() {
            return false;
        }
        if shutdown {
            return true;
        }
    }
}

fn run() -> Result<(), String> {
    let options = parse_args()?;
    let mut farm = Farm::in_proc(options.heads).map_err(|e: FarmError| e.to_string())?;
    let listener = TcpListener::bind(&options.addr)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    let local = listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    println!("atd-farm listening on {local} ({} heads)", farm.heads());

    let mut ticket = 0u64;
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        if serve_connection(&mut stream, &mut farm, &mut ticket) {
            break;
        }
    }
    let stats = farm.stats();
    eprintln!(
        "atd-farm: {} specs ({} sub-specs, {} merged, {} rerouted, {} retry rounds)",
        stats.specs, stats.sub_specs, stats.merged, stats.rerouted, stats.retry_rounds
    );
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("atd-farm: {message}");
        std::process::exit(2);
    }
}
