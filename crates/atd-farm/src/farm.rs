//! The farm coordinator: plan, route, drain, re-shard, merge.
//!
//! A submission runs in rounds. Each round routes every outstanding
//! sub-spec through the [`HashRing`], groups them by head, and drains
//! the per-head groups concurrently on the coordinator's [`ExecPool`]
//! (one worker per head with work; each head executes its own group in
//! plan order). A head whose submit errs is marked down; its unfinished
//! sub-specs re-route to the survivors in the next round, up to
//! [`FarmConfig::retries`] extra rounds. Results are keyed by plan
//! index, so the final merge order — and therefore the merged bytes —
//! is independent of which heads ran what, in which round, on how many
//! coordinator threads.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use atd::{AtdError, Client, JobResult, JobSpec, Loopback, Provenance, ServiceStats};
use exec::ExecPool;

use crate::error::FarmError;
use crate::head::{local_head, local_head_with_store, spec_route_key, Head};
use crate::merge::merge;
use crate::plan::plan;
use crate::ring::HashRing;

/// Fleet size from `ATD_FARM_HEADS`, defaulting to 2. Lenient like every
/// other knob: absent, unparsable, or zero falls back.
pub fn heads_from_env() -> usize {
    exec::env::positive_usize_or("ATD_FARM_HEADS", 2)
}

/// Coordinator tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Bands to cut each shardable spec into; `None` means one per head.
    pub shards: Option<usize>,
    /// Extra submission rounds after the first before giving up.
    pub retries: u32,
}

impl FarmConfig {
    /// Configuration from the environment: `ATD_FARM_RETRIES` (default
    /// 2; zero is legal and means fail fast), shards defaulted to the
    /// fleet size.
    pub fn from_env() -> FarmConfig {
        FarmConfig { shards: None, retries: exec::env::nonnegative_u32_or("ATD_FARM_RETRIES", 2) }
    }
}

impl Default for FarmConfig {
    /// Same as [`FarmConfig::from_env`].
    fn default() -> Self {
        FarmConfig::from_env()
    }
}

/// Per-head submission counters, indexed by head id in
/// [`FarmStats::per_head`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeadTally {
    /// Sub-specs handed to this head.
    pub submitted: u64,
    /// Sub-specs it completed.
    pub completed: u64,
    /// Sub-specs it failed (each re-routes and retries elsewhere).
    pub failed: u64,
}

/// The coordinator's cumulative counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Specs submitted to the farm.
    pub specs: u64,
    /// Specs that bypassed sharding (indivisible, or a one-band plan).
    pub pass_through: u64,
    /// Sub-specs planned across all submissions.
    pub sub_specs: u64,
    /// Multi-shard merges performed.
    pub merged: u64,
    /// Sub-spec routings that diverged from the all-up home head — the
    /// re-shard count while part of the fleet is down.
    pub rerouted: u64,
    /// Extra submission rounds forced by head failures.
    pub retry_rounds: u64,
    /// Heads marked down (failures and administrative kills).
    pub heads_down: u64,
    /// Per-head tallies, indexed by head id.
    pub per_head: Vec<HeadTally>,
}

/// A completed farm submission.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmSubmitted {
    /// How the merged result was produced: the sub-result's own
    /// provenance for a pass-through, otherwise `Cache` only if *every*
    /// shard was served from a head cache.
    pub provenance: Provenance,
    /// The merged outcome — byte-identical to a single head running the
    /// spec whole.
    pub result: JobResult,
    /// How many sub-specs the plan produced.
    pub shards: usize,
}

/// A coordinator over a fleet of heads.
#[derive(Debug)]
pub struct Farm<H: Head> {
    heads: Vec<H>,
    ring: HashRing,
    pool: ExecPool,
    shards: usize,
    retries: u32,
    stats: FarmStats,
    /// Per-head persistent-store directories; `None` for a memory-only
    /// head. Only [`Farm::in_proc_with_store`] populates these, and only
    /// [`Farm::restart_head`] consumes them.
    store_dirs: Vec<Option<PathBuf>>,
}

impl Farm<Client<Loopback>> {
    /// A farm over `heads` fresh in-process heads, each with its own
    /// service, queue, and cache, configured from the environment.
    ///
    /// # Errors
    ///
    /// [`FarmError::NoHeads`] when `heads` is zero.
    pub fn in_proc(heads: usize) -> Result<Self, FarmError> {
        Farm::new((0..heads).map(|_| local_head()).collect(), FarmConfig::from_env())
    }

    /// [`Farm::in_proc`] with per-head persistent stores: head `i`
    /// persists its results under `<base>/head-<i>`. A head restarted
    /// via [`Farm::restart_head`] reopens its own directory and
    /// rehydrates the exact warm set the ring still routes to it —
    /// routing affinity, cache affinity, and disk affinity stay one
    /// mechanism across restarts.
    ///
    /// # Errors
    ///
    /// [`FarmError::NoHeads`] when `heads` is zero, or
    /// [`FarmError::Head`] when a head's store cannot be opened.
    pub fn in_proc_with_store(heads: usize, base: &Path) -> Result<Self, FarmError> {
        let mut fleet = Vec::with_capacity(heads);
        let mut dirs = Vec::with_capacity(heads);
        for id in 0..heads {
            let dir = base.join(format!("head-{id}"));
            fleet.push(local_head_with_store(&dir)?);
            dirs.push(Some(dir));
        }
        let mut farm = Farm::new(fleet, FarmConfig::from_env())?;
        farm.store_dirs = dirs;
        Ok(farm)
    }

    /// Tears down `head`'s in-process service and boots a fresh one in
    /// its place — the in-proc analogue of a daemon crash plus restart.
    /// A head with a store directory rehydrates from it; a memory-only
    /// head comes back cold. The ring is untouched either way: a restart
    /// changes no routing, so the rehydrated store holds exactly the
    /// keys that will keep arriving.
    ///
    /// # Errors
    ///
    /// [`FarmError::Head`] when `head` is off the fleet or its store
    /// fails to reopen.
    pub fn restart_head(&mut self, head: usize) -> Result<(), FarmError> {
        let fleet = self.heads.len();
        let dir = self.store_dirs.get(head).cloned().flatten();
        let Some(slot) = self.heads.get_mut(head) else {
            return Err(FarmError::Head(AtdError::Remote {
                message: format!("cannot restart head {head}: fleet has {fleet} heads"),
            }));
        };
        *slot = match dir {
            Some(dir) => local_head_with_store(&dir)?,
            None => local_head(),
        };
        Ok(())
    }
}

/// What one head reports back from a drain round: its id and, per
/// sub-spec in its group, the plan index, the sub-spec (for re-routing),
/// and the outcome.
type RoundReport = (usize, Vec<(usize, JobSpec, Result<(Provenance, JobResult), AtdError>)>);

/// Drains one head's group for one round. Runs on a coordinator pool
/// worker; the head is behind a [`Mutex`] only to satisfy the pool's
/// shared-closure signature — each head appears in at most one group, so
/// the lock is never contended.
fn drain_head<H: Head>(
    cells: &[Mutex<&mut H>],
    work: &[(usize, Vec<(usize, JobSpec)>)],
    slot: usize,
    session: u32,
) -> RoundReport {
    let Some((head_id, group)) = work.get(slot) else {
        return (usize::MAX, Vec::new());
    };
    let mut report = Vec::with_capacity(group.len());
    let Some(cell) = cells.get(*head_id) else {
        for (index, sub) in group {
            let err = AtdError::Remote { message: "routed to a head id off the fleet".to_string() };
            report.push((*index, *sub, Err(err)));
        }
        return (*head_id, report);
    };
    let mut head = cell.lock().unwrap_or_else(PoisonError::into_inner);
    let mut dead = false;
    for (index, sub) in group {
        if dead {
            // Once a head errs, don't hammer it with the rest of its
            // group — fail the remainder over to the next round.
            let err = AtdError::Remote { message: "head already failed this round".to_string() };
            report.push((*index, *sub, Err(err)));
            continue;
        }
        let outcome = head.submit(session, *sub);
        dead = outcome.is_err();
        report.push((*index, *sub, outcome));
    }
    (*head_id, report)
}

fn saturating_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

impl<H: Head + Send> Farm<H> {
    /// A farm over an explicit fleet.
    ///
    /// # Errors
    ///
    /// [`FarmError::NoHeads`] when the fleet is empty.
    pub fn new(heads: Vec<H>, config: FarmConfig) -> Result<Self, FarmError> {
        if heads.is_empty() {
            return Err(FarmError::NoHeads);
        }
        let shards = config.shards.unwrap_or(heads.len()).max(1);
        let ring = HashRing::new(heads.len());
        let stats =
            FarmStats { per_head: vec![HeadTally::default(); heads.len()], ..Default::default() };
        let store_dirs = heads.iter().map(|_| None).collect();
        Ok(Farm {
            heads,
            ring,
            pool: ExecPool::from_env(),
            shards,
            retries: config.retries,
            stats,
            store_dirs,
        })
    }

    /// Fleet size, up or down.
    pub fn heads(&self) -> usize {
        self.heads.len()
    }

    /// Heads currently routable.
    pub fn up_heads(&self) -> usize {
        self.ring.up_heads()
    }

    /// Whether `head` is currently routable.
    pub fn is_up(&self, head: usize) -> bool {
        self.ring.is_up(head)
    }

    /// The coordinator's cumulative counters.
    pub fn stats(&self) -> &FarmStats {
        &self.stats
    }

    /// The head a sub-spec routes to right now (`None` when the fleet is
    /// entirely down).
    pub fn route(&self, spec: &JobSpec) -> Option<usize> {
        self.ring.route(spec_route_key(spec))
    }

    /// Administratively kills `head` — identical routing consequences to
    /// an observed failure; returns whether it was up.
    pub fn kill(&mut self, head: usize) -> bool {
        let changed = self.ring.mark_down(head);
        if changed {
            self.stats.heads_down += 1;
        }
        changed
    }

    /// Re-admits a downed head; its home keys route back to it.
    pub fn readmit(&mut self, head: usize) -> bool {
        self.ring.readmit(head)
    }

    /// Polls every head for its service counters, in head-id order.
    /// Downed heads are polled too: an administrative kill only stops
    /// routing, and a genuinely dead head reports the error.
    pub fn head_stats(&mut self) -> Vec<Result<ServiceStats, AtdError>> {
        self.heads.iter_mut().map(Head::stats).collect()
    }

    /// Asks every head to stop serving, best-effort: a head that cannot
    /// be reached is skipped, and the first error is returned after all
    /// heads were attempted.
    ///
    /// # Errors
    ///
    /// The first [`AtdError`] any head reported.
    pub fn shutdown(&mut self) -> Result<(), AtdError> {
        let mut first = None;
        for head in &mut self.heads {
            if let Err(e) = head.shutdown() {
                first.get_or_insert(e);
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs `spec` across the fleet: plan, route, drain, re-shard on
    /// failure, merge. The merged result is byte-identical to a single
    /// head running `spec` whole, for any fleet size, shard count,
    /// coordinator thread count, and any pattern of head failures the
    /// retry budget survives.
    ///
    /// # Errors
    ///
    /// [`FarmError::Spec`] for an invalid spec, [`FarmError::AllHeadsDown`]
    /// when nothing can route, [`FarmError::RetriesExhausted`] when the
    /// budget runs out, [`FarmError::Merge`] if sub-results do not tile.
    pub fn submit(&mut self, session: u32, spec: JobSpec) -> Result<FarmSubmitted, FarmError> {
        let subs = plan(&spec, self.shards)?;
        let shards = subs.len();
        self.stats.specs += 1;
        self.stats.sub_specs += saturating_u64(shards);
        if shards == 1 {
            self.stats.pass_through += 1;
        }

        let mut results: Vec<Option<(Provenance, JobResult)>> = subs.iter().map(|_| None).collect();
        let mut pending: Vec<(usize, JobSpec)> = subs.into_iter().enumerate().collect();
        let mut rounds: u32 = 0;
        let mut last_error = String::new();

        while !pending.is_empty() {
            if rounds > self.retries {
                return Err(FarmError::RetriesExhausted {
                    kind: spec.kind(),
                    attempts: rounds,
                    last: last_error,
                });
            }
            if rounds > 0 {
                self.stats.retry_rounds += 1;
            }
            // Route the outstanding sub-specs; grouping by head id in a
            // BTreeMap keeps the round's work list deterministic.
            let mut groups: BTreeMap<usize, Vec<(usize, JobSpec)>> = BTreeMap::new();
            for (index, sub) in pending.drain(..) {
                let key = spec_route_key(&sub);
                let Some(head) = self.ring.route(key) else {
                    return Err(FarmError::AllHeadsDown { kind: spec.kind() });
                };
                if self.ring.home(key) != Some(head) {
                    self.stats.rerouted += 1;
                }
                groups.entry(head).or_default().push((index, sub));
            }
            let work: Vec<(usize, Vec<(usize, JobSpec)>)> = groups.into_iter().collect();
            let reports = {
                let cells: Vec<Mutex<&mut H>> = self.heads.iter_mut().map(Mutex::new).collect();
                self.pool.run(work.len(), |slot| drain_head(&cells, &work, slot, session))?.results
            };
            for (head_id, report) in reports {
                let mut head_failed = false;
                for (index, sub, outcome) in report {
                    if let Some(tally) = self.stats.per_head.get_mut(head_id) {
                        tally.submitted += 1;
                        match &outcome {
                            Ok(_) => tally.completed += 1,
                            Err(_) => tally.failed += 1,
                        }
                    }
                    match outcome {
                        Ok(done) => {
                            if let Some(slot) = results.get_mut(index) {
                                *slot = Some(done);
                            }
                        }
                        Err(e) => {
                            head_failed = true;
                            last_error = e.to_string();
                            pending.push((index, sub));
                        }
                    }
                }
                if head_failed && self.ring.mark_down(head_id) {
                    self.stats.heads_down += 1;
                }
            }
            // Deterministic retry order regardless of which heads failed.
            pending.sort_unstable_by_key(|(index, _)| *index);
            rounds += 1;
        }

        let collected: Option<Vec<(Provenance, JobResult)>> = results.into_iter().collect();
        let collected =
            collected.ok_or(FarmError::Merge { context: "a sub-result went missing" })?;
        let provenance = if shards == 1 {
            collected.iter().map(|(p, _)| *p).next().unwrap_or(Provenance::Computed)
        } else if collected.iter().all(|(p, _)| *p == Provenance::Cache) {
            // Every shard came straight from a head cache: the merged
            // result is cache-served end to end. Any computed or batched
            // shard makes the whole merge Computed.
            Provenance::Cache
        } else {
            Provenance::Computed
        };
        if shards > 1 {
            self.stats.merged += 1;
        }
        let sub_results: Vec<JobResult> = collected.into_iter().map(|(_, r)| r).collect();
        let result = merge(&spec, &sub_results)?;
        Ok(FarmSubmitted { provenance, result, shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shmoo() -> JobSpec {
        JobSpec::Shmoo {
            rate_bps: 1_250_000_000,
            bits: 256,
            stim_seed: 7,
            phase_step_fs: 100_000_000,
            v_start_mv: -1400,
            v_end_mv: -1100,
            v_step_mv: 25,
            seed: 11,
        }
    }

    #[test]
    fn empty_fleets_are_rejected() {
        let heads: Vec<Client<Loopback>> = Vec::new();
        assert!(matches!(Farm::new(heads, FarmConfig::from_env()), Err(FarmError::NoHeads)));
    }

    #[test]
    fn farm_matches_a_single_head_byte_for_byte() {
        let mut single = Farm::in_proc(1).expect("single");
        let baseline = single.submit(1, shmoo()).expect("single-head run");
        assert_eq!(baseline.shards, 1);

        let mut farm = Farm::in_proc(3).expect("farm");
        let merged = farm.submit(1, shmoo()).expect("farm run");
        assert_eq!(merged.shards, 3);
        assert_eq!(
            merged.result.encoded().expect("encode"),
            baseline.result.encoded().expect("encode"),
            "farm merge must be byte-identical to one head"
        );
        let stats = farm.stats();
        assert_eq!(stats.specs, 1);
        assert_eq!(stats.sub_specs, 3);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.rerouted, 0);
    }

    #[test]
    fn resubmission_is_cache_served_on_every_head() {
        let mut farm = Farm::in_proc(2).expect("farm");
        let first = farm.submit(1, shmoo()).expect("first");
        let again = farm.submit(1, shmoo()).expect("again");
        assert_eq!(first.result, again.result);
        assert_eq!(again.provenance, Provenance::Cache, "hot resubmission must merge as Cache");
        let completed: u64 = farm.stats().per_head.iter().map(|t| t.completed).sum();
        assert_eq!(completed, farm.stats().sub_specs, "per-head tallies must balance");
    }

    #[test]
    fn kill_reroutes_and_readmit_restores() {
        let mut farm = Farm::in_proc(2).expect("farm");
        let baseline = farm.submit(1, shmoo()).expect("healthy run");
        // Kill whichever head is home to the first band, so at least one
        // sub-spec is guaranteed to re-route.
        let bands = plan(&shmoo(), 2).expect("plan");
        let victim = farm.route(bands.first().expect("two bands")).expect("routable");
        assert!(farm.kill(victim));
        assert_eq!(farm.up_heads(), 1);
        let rerouted = farm.submit(1, shmoo()).expect("one-head run");
        assert_eq!(
            rerouted.result.encoded().expect("encode"),
            baseline.result.encoded().expect("encode"),
            "re-shard must not change the merged bytes"
        );
        assert!(farm.stats().rerouted > 0, "the victim's band must have rerouted");
        assert!(farm.readmit(victim));
        assert_eq!(farm.up_heads(), 2);
    }

    #[test]
    fn all_heads_down_is_a_typed_error() {
        let mut farm = Farm::in_proc(2).expect("farm");
        farm.kill(0);
        farm.kill(1);
        assert!(matches!(farm.submit(1, shmoo()), Err(FarmError::AllHeadsDown { .. })));
    }
}
