//! The THP/2 pipelined client: a depth-K window of correlated
//! submissions over one TCP connection, with streamed partial results
//! reassembled and verified per correlation.
//!
//! Unlike the lock-step [`crate::Client`] (one request, one reply), a
//! [`PipelinedClient`] fires submissions without waiting and then pulls a
//! stream of [`Event`]s: `Chunk` slices as the daemon finishes each
//! semantic piece, and a terminal `Done` / `Failed` / `Busy` per
//! correlation. Responses may interleave across correlations — the
//! client keeps one [`Reassembler`] per in-flight id and verifies every
//! stream against its summary (count, bytes, stream digest) before
//! handing the caller a decoded result.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::AtdError;
use crate::proto::{msg, JobSpec, Request, Response, ServiceStats, FAILURE_ID};
use crate::stream::{Event, Reassembler};
use crate::wire::{self};

fn io_err(op: &'static str, e: &std::io::Error) -> AtdError {
    AtdError::Io { op, message: e.to_string() }
}

/// How many buffered submission bytes force an early flush.
const OUT_HIGH_WATER: usize = 32 * 1024;

/// Read granularity for the buffered receive path.
const READ_CHUNK: usize = 64 * 1024;

/// A THP/2 session holding many correlated submissions in flight.
///
/// Writes are buffered: submissions accumulate in an outbox that is
/// flushed in one syscall when the client turns to read events (or when
/// the outbox crosses a high-water mark). Reads are buffered
/// symmetrically, so a burst of interleaved chunk frames costs one
/// syscall, not two per frame.
#[derive(Debug)]
pub struct PipelinedClient {
    stream: TcpStream,
    /// Encoded frames not yet written to the socket.
    out: Vec<u8>,
    /// Bytes read from the socket, consumed from `rpos`.
    rbuf: Vec<u8>,
    rpos: usize,
    next_correlation: u64,
    /// Reassembly state per in-flight submission.
    streams: BTreeMap<u64, Reassembler>,
    /// Submissions awaiting their terminal event.
    outstanding: usize,
    /// Events decoded while waiting for a specific reply (helpers like
    /// [`PipelinedClient::ping`] buffer everything else here).
    pending: VecDeque<Event>,
}

impl PipelinedClient {
    /// Connects a THP/2 session to a daemon.
    ///
    /// # Errors
    ///
    /// [`AtdError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, AtdError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", &e))?;
        stream.set_nodelay(true).map_err(|e| io_err("set nodelay", &e))?;
        Ok(PipelinedClient {
            stream,
            out: Vec::new(),
            rbuf: Vec::new(),
            rpos: 0,
            next_correlation: 1,
            streams: BTreeMap::new(),
            outstanding: 0,
            pending: VecDeque::new(),
        })
    }

    /// Submissions that have not yet seen their terminal event.
    pub fn in_flight(&self) -> usize {
        self.outstanding
    }

    fn fresh_correlation(&mut self) -> u64 {
        let corr = self.next_correlation;
        // Monotonic from 1; FAILURE_ID (u64::MAX) is unreachable in any
        // realistic session, but skip it anyway for totality.
        self.next_correlation = match self.next_correlation.wrapping_add(1) {
            FAILURE_ID => 1,
            next => next,
        };
        corr
    }

    fn send(&mut self, request: &Request, correlation: u64) -> Result<(), AtdError> {
        let frame = request.to_frame2(correlation)?;
        self.out.extend_from_slice(&frame);
        if self.out.len() >= OUT_HIGH_WATER {
            self.flush_out()?;
        }
        Ok(())
    }

    /// Pushes every buffered submission onto the wire.
    ///
    /// # Errors
    ///
    /// [`AtdError::Io`] on a failed write.
    pub fn flush_out(&mut self) -> Result<(), AtdError> {
        if !self.out.is_empty() {
            self.stream.write_all(&self.out).map_err(|e| io_err("write frames", &e))?;
            self.stream.flush().map_err(|e| io_err("flush frames", &e))?;
            self.out.clear();
        }
        Ok(())
    }

    /// Ensures `need` unconsumed bytes are buffered.
    fn fill(&mut self, need: usize) -> Result<(), AtdError> {
        let mut tmp = [0u8; READ_CHUNK];
        while self.rbuf.len().saturating_sub(self.rpos) < need {
            let n = self.stream.read(&mut tmp).map_err(|e| io_err("read frames", &e))?;
            if n == 0 {
                return Err(AtdError::Io {
                    op: "read frames",
                    message: "connection closed mid-stream".to_string(),
                });
            }
            self.rbuf.extend_from_slice(tmp.get(..n).unwrap_or(&[]));
        }
        Ok(())
    }

    /// Fires one submission into the pipeline and returns its
    /// correlation id; the result arrives later as `Chunk` events
    /// followed by a terminal `Done` (or `Failed` / `Busy`).
    ///
    /// # Errors
    ///
    /// Transport and codec failures only — scheduling outcomes arrive as
    /// events.
    pub fn submit_pipelined(&mut self, session: u32, spec: JobSpec) -> Result<u64, AtdError> {
        let correlation = self.fresh_correlation();
        self.send(&Request::Submit { session, spec }, correlation)?;
        self.outstanding += 1;
        Ok(correlation)
    }

    /// The next event from the daemon, in arrival order: buffered events
    /// first, then a blocking read.
    ///
    /// # Errors
    ///
    /// [`AtdError::Io`] if the connection dies, [`AtdError::Frame`] on a
    /// malformed frame or a failed stream verification.
    pub fn next_event(&mut self) -> Result<Event, AtdError> {
        if let Some(event) = self.pending.pop_front() {
            return Ok(event);
        }
        self.read_event()
    }

    fn read_event(&mut self) -> Result<Event, AtdError> {
        // Reading is the signal that the caller now wants replies, so any
        // buffered submissions must reach the daemon first.
        self.flush_out()?;
        self.fill(wire::HEADER2_LEN)?;
        let h = {
            let header = self.rbuf.get(self.rpos..self.rpos + wire::HEADER2_LEN).unwrap_or(&[]);
            wire::decode_header2(header)?
        };
        self.rpos += wire::HEADER2_LEN;
        self.fill(h.payload_len)?;
        let start = self.rpos;
        self.rpos += h.payload_len;
        let event = if h.msg_type == msg::CHUNK {
            // The hot frame on a pipelined session: `seq` (u32 BE) plus
            // the raw slice, fed to the reassembler straight from the
            // receive buffer — no intermediate `Response` round trip.
            let payload = self.rbuf.get(start..start + h.payload_len).unwrap_or(&[]);
            let mut r = wire::Reader::new(payload);
            let seq = r.u32()?;
            let bytes = r.take_rest().to_vec();
            self.streams.entry(h.correlation).or_default().push(seq, &bytes)?;
            Ok(Event::Chunk { correlation: h.correlation, seq, bytes })
        } else {
            let response = {
                let payload = self.rbuf.get(start..start + h.payload_len).unwrap_or(&[]);
                Response::from_parts(h.msg_type, payload)?
            };
            self.translate(h.correlation, response)
        };
        if self.rpos >= self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos >= READ_CHUNK {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        event
    }

    fn translate(&mut self, correlation: u64, response: Response) -> Result<Event, AtdError> {
        match response {
            Response::Chunk { seq, bytes } => {
                let asm = self.streams.entry(correlation).or_default();
                asm.push(seq, &bytes)?;
                Ok(Event::Chunk { correlation, seq, bytes })
            }
            Response::Summary { ticket, provenance, chunks, total_bytes, digest } => {
                let asm = self.streams.remove(&correlation).unwrap_or_default();
                let result = asm.finish(chunks, total_bytes, digest)?;
                self.outstanding = self.outstanding.saturating_sub(1);
                Ok(Event::Done { correlation, ticket, provenance, digest, result })
            }
            Response::Failed { ticket, message } => {
                self.streams.remove(&correlation);
                if correlation != FAILURE_ID {
                    self.outstanding = self.outstanding.saturating_sub(1);
                }
                Ok(Event::Failed { correlation, ticket, message })
            }
            Response::Busy { queue_depth, queue_capacity } => {
                self.outstanding = self.outstanding.saturating_sub(1);
                Ok(Event::Busy { correlation, queue_depth, queue_capacity })
            }
            Response::Pong { token } => Ok(Event::Pong { correlation, token }),
            Response::StatsReport(stats) => Ok(Event::Stats { correlation, stats }),
            Response::Goodbye => Ok(Event::Goodbye { correlation }),
            other @ (Response::JobDone { .. } | Response::BatchDone { .. }) => {
                // Monolithic replies belong to THP/1; a daemon speaking
                // them on a v2 session is confused.
                Err(AtdError::UnexpectedResponse {
                    code: other.code(),
                    expected: "a THP/2 streaming response",
                })
            }
        }
    }

    /// Reads events until `stop` returns `Some`, buffering everything
    /// else for [`PipelinedClient::next_event`].
    fn wait_for<T>(&mut self, mut stop: impl FnMut(&Event) -> Option<T>) -> Result<T, AtdError> {
        loop {
            let event = self.read_event()?;
            match stop(&event) {
                Some(value) => return Ok(value),
                None => self.pending.push_back(event),
            }
        }
    }

    /// Pings through the pipeline; returns the echoed token. Events for
    /// other correlations arriving first are buffered, not lost.
    ///
    /// # Errors
    ///
    /// Transport and codec failures.
    pub fn ping(&mut self, token: u64) -> Result<u64, AtdError> {
        let correlation = self.fresh_correlation();
        self.send(&Request::Ping { token }, correlation)?;
        self.wait_for(|event| match event {
            Event::Pong { correlation: c, token } if *c == correlation => Some(*token),
            _ => None,
        })
    }

    /// Fetches the service counters through the pipeline.
    ///
    /// # Errors
    ///
    /// Transport and codec failures.
    pub fn stats(&mut self) -> Result<ServiceStats, AtdError> {
        let correlation = self.fresh_correlation();
        self.send(&Request::GetStats, correlation)?;
        self.wait_for(|event| match event {
            Event::Stats { correlation: c, stats } if *c == correlation => Some(*stats),
            _ => None,
        })
    }

    /// Asks the daemon to stop serving.
    ///
    /// # Errors
    ///
    /// Transport and codec failures.
    pub fn shutdown(&mut self) -> Result<(), AtdError> {
        let correlation = self.fresh_correlation();
        self.send(&Request::Shutdown, correlation)?;
        self.wait_for(|event| match event {
            Event::Goodbye { correlation: c } if *c == correlation => Some(()),
            _ => None,
        })
    }
}
