//! THP/1 and THP/2 — the test-head protocol's length-prefixed binary
//! framing.
//!
//! A THP/1 message travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "THP1"
//! 4       1     version (1)
//! 5       1     message type code
//! 6       2     reserved, must be zero (big-endian u16)
//! 8       4     payload length in bytes (big-endian u32)
//! 12      n     payload
//! ```
//!
//! THP/2 extends the header with a client-chosen correlation id and a
//! flags byte so responses can arrive out of order and in parts:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "THP2"
//! 4       1     version (2)
//! 5       1     message type code
//! 6       1     flags (exactly one of FINAL=0x01, CHUNK=0x02)
//! 7       1     reserved, must be zero
//! 8       8     correlation id (big-endian u64)
//! 16      4     payload length in bytes (big-endian u32)
//! 20      n     payload
//! ```
//!
//! The two grammars never mix on a connection: [`sniff`] reads the magic
//! of the *first* frame and pins the version for the rest of the stream
//! (version negotiation). The v1 entry points ([`decode_header`],
//! [`decode_frame`]) stay strictly THP/1 so the frozen THP/1 golden
//! vectors remain the deployed contract.
//!
//! All multi-byte integers on the wire are big-endian. Decoding is total:
//! malformed input of any shape maps to a typed [`FrameError`], never a
//! panic — the daemon must survive arbitrary bytes from the network.
//!
//! This module owns the frame envelope and the primitive field codecs
//! ([`Writer`]/[`Reader`]); message semantics live in [`crate::proto`].

use core::fmt;

/// The four magic bytes opening every THP/1 frame.
pub const MAGIC: [u8; 4] = *b"THP1";

/// The protocol version this build speaks by default.
pub const VERSION: u8 = 1;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 12;

/// The four magic bytes opening every THP/2 frame.
pub const MAGIC2: [u8; 4] = *b"THP2";

/// The pipelined protocol revision.
pub const VERSION2: u8 = 2;

/// THP/2 frame header size in bytes.
pub const HEADER2_LEN: usize = 20;

/// THP/2 header flag bits. Every frame carries exactly one of these: a
/// `CHUNK` frame is one slice of a streamed result, a `FINAL` frame
/// terminates its correlation id (the summary of a stream, or the whole
/// response for unary exchanges).
pub mod flag {
    /// Terminal frame for its correlation id.
    pub const FINAL: u8 = 0x01;
    /// A partial-result slice; more frames follow for this correlation.
    pub const CHUNK: u8 = 0x02;
    /// Every bit a THP/2 frame may set.
    pub const MASK: u8 = FINAL | CHUNK;
}

/// Hard ceiling on payload size: a frame larger than this is rejected at
/// the header, before any allocation.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Typed decode failures. Every way a frame can be malformed has its own
/// variant, so transports and tests can tell them apart.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// Fewer bytes than the grammar requires at this position.
    Truncated {
        /// Bytes the current field needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not `THP1`.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The version byte names a protocol revision this build cannot speak.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The reserved header field was not zero.
    ReservedNonZero {
        /// The value found.
        found: u16,
    },
    /// A length exceeded its ceiling: a declared payload beyond
    /// [`MAX_PAYLOAD`], a payload being encoded that cannot fit a frame,
    /// or a sequence count beyond u32. `len` is the actual offending
    /// length and `max` the ceiling it broke, so diagnostics and golden
    /// tests see real magnitudes.
    Oversized {
        /// The offending length (saturated into u64 if it exceeds even
        /// that).
        len: u64,
        /// The ceiling it exceeded.
        max: u64,
    },
    /// The message-type code is not part of THP/1.
    UnknownType {
        /// The code found.
        code: u8,
    },
    /// Bytes remained after the grammar was fully consumed.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A payload field held a value outside its domain.
    BadPayload {
        /// Which field was malformed.
        context: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            FrameError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            FrameError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported THP version {found} (this build speaks {VERSION}/{VERSION2})"
                )
            }
            FrameError::ReservedNonZero { found } => {
                write!(f, "reserved header field must be zero, found {found:#06x}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "declared payload of {len} bytes exceeds the {max}-byte ceiling")
            }
            FrameError::UnknownType { code } => write!(f, "unknown message type {code:#04x}"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the message body")
            }
            FrameError::BadPayload { context } => write!(f, "malformed payload: {context}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: header plus payload.
///
/// # Errors
///
/// [`FrameError::Oversized`] if `payload` exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let len = u32::try_from(payload.len()).ok().filter(|l| *l <= MAX_PAYLOAD).ok_or(
        FrameError::Oversized {
            len: u64::try_from(payload.len()).unwrap_or(u64::MAX),
            max: u64::from(MAX_PAYLOAD),
        },
    )?;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg_type);
    out.extend_from_slice(&0u16.to_be_bytes());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Validates a 12-byte header and returns `(msg_type, payload_len)`.
///
/// Transports that stream (TCP) call this on the fixed-size header before
/// reading the payload; [`decode_frame`] calls it on in-memory frames.
///
/// # Errors
///
/// Any header-level [`FrameError`].
pub fn decode_header(header: &[u8]) -> Result<(u8, usize), FrameError> {
    if header.len() < HEADER_LEN {
        return Err(FrameError::Truncated { needed: HEADER_LEN, have: header.len() });
    }
    let magic = read4(header, 0)?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = *header.get(4).ok_or(FrameError::Truncated { needed: 5, have: header.len() })?;
    if version != VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let msg_type = *header.get(5).ok_or(FrameError::Truncated { needed: 6, have: header.len() })?;
    let reserved = u16::from_be_bytes(read2(header, 6)?);
    if reserved != 0 {
        return Err(FrameError::ReservedNonZero { found: reserved });
    }
    let len = u32::from_be_bytes(read4(header, 8)?);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized { len: u64::from(len), max: u64::from(MAX_PAYLOAD) });
    }
    let len = usize::try_from(len).map_err(|_| FrameError::BadPayload {
        context: "frame length exceeds the address space",
    })?;
    Ok((msg_type, len))
}

/// Decodes exactly one in-memory frame into `(msg_type, payload)`.
///
/// # Errors
///
/// Any [`FrameError`]; trailing bytes after the declared payload are
/// rejected with [`FrameError::TrailingBytes`].
pub fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8]), FrameError> {
    let (msg_type, len) = decode_header(bytes)?;
    let body = bytes.get(HEADER_LEN..).unwrap_or(&[]);
    if body.len() < len {
        return Err(FrameError::Truncated { needed: len, have: body.len() });
    }
    if body.len() > len {
        return Err(FrameError::TrailingBytes { extra: body.len() - len });
    }
    Ok((msg_type, body))
}

/// A validated THP/2 frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header2 {
    /// Message type code.
    pub msg_type: u8,
    /// Flag byte — exactly one of [`flag::FINAL`] / [`flag::CHUNK`].
    pub flags: u8,
    /// The client-chosen correlation id this frame belongs to.
    pub correlation: u64,
    /// Declared payload length.
    pub payload_len: usize,
}

fn check_flags(flags: u8) -> Result<(), FrameError> {
    if flags == flag::FINAL || flags == flag::CHUNK {
        Ok(())
    } else {
        Err(FrameError::BadPayload { context: "flags must be exactly FINAL or CHUNK" })
    }
}

/// Encodes one THP/2 frame: header plus payload.
///
/// # Errors
///
/// [`FrameError::Oversized`] if `payload` exceeds [`MAX_PAYLOAD`];
/// [`FrameError::BadPayload`] if `flags` is not exactly one of
/// [`flag::FINAL`] / [`flag::CHUNK`].
pub fn encode_frame2(
    msg_type: u8,
    flags: u8,
    correlation: u64,
    payload: &[u8],
) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::with_capacity(HEADER2_LEN + payload.len());
    encode_frame2_into(&mut out, msg_type, flags, correlation, &[payload])?;
    Ok(out)
}

/// Appends one THP/2 frame to `out`, with the payload given as
/// concatenated `parts` — the streaming path writes frames straight into
/// a connection's outbox without an intermediate allocation per frame.
///
/// On error nothing is appended.
///
/// # Errors
///
/// Same contract as [`encode_frame2`].
pub fn encode_frame2_into(
    out: &mut Vec<u8>,
    msg_type: u8,
    flags: u8,
    correlation: u64,
    parts: &[&[u8]],
) -> Result<(), FrameError> {
    check_flags(flags)?;
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let len =
        u32::try_from(total).ok().filter(|l| *l <= MAX_PAYLOAD).ok_or(FrameError::Oversized {
            len: u64::try_from(total).unwrap_or(u64::MAX),
            max: u64::from(MAX_PAYLOAD),
        })?;
    out.reserve(HEADER2_LEN + total);
    out.extend_from_slice(&MAGIC2);
    out.push(VERSION2);
    out.push(msg_type);
    out.push(flags);
    out.push(0);
    out.extend_from_slice(&correlation.to_be_bytes());
    out.extend_from_slice(&len.to_be_bytes());
    for part in parts {
        out.extend_from_slice(part);
    }
    Ok(())
}

/// Validates a 20-byte THP/2 header.
///
/// # Errors
///
/// Any header-level [`FrameError`]; flag bytes that are not exactly one
/// of `FINAL`/`CHUNK` are [`FrameError::BadPayload`].
pub fn decode_header2(header: &[u8]) -> Result<Header2, FrameError> {
    if header.len() < HEADER2_LEN {
        return Err(FrameError::Truncated { needed: HEADER2_LEN, have: header.len() });
    }
    let magic = read4(header, 0)?;
    if magic != MAGIC2 {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = *header.get(4).ok_or(FrameError::Truncated { needed: 5, have: header.len() })?;
    if version != VERSION2 {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let msg_type = *header.get(5).ok_or(FrameError::Truncated { needed: 6, have: header.len() })?;
    let flags = *header.get(6).ok_or(FrameError::Truncated { needed: 7, have: header.len() })?;
    check_flags(flags)?;
    let reserved = *header.get(7).ok_or(FrameError::Truncated { needed: 8, have: header.len() })?;
    if reserved != 0 {
        return Err(FrameError::ReservedNonZero { found: u16::from(reserved) });
    }
    let correlation = u64::from_be_bytes(read8(header, 8)?);
    let len = u32::from_be_bytes(read4(header, 16)?);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized { len: u64::from(len), max: u64::from(MAX_PAYLOAD) });
    }
    let payload_len = usize::try_from(len).map_err(|_| FrameError::BadPayload {
        context: "frame length exceeds the address space",
    })?;
    Ok(Header2 { msg_type, flags, correlation, payload_len })
}

/// Decodes exactly one in-memory THP/2 frame into `(header, payload)`.
///
/// # Errors
///
/// Any [`FrameError`]; trailing bytes after the declared payload are
/// rejected with [`FrameError::TrailingBytes`].
pub fn decode_frame2(bytes: &[u8]) -> Result<(Header2, &[u8]), FrameError> {
    let header = decode_header2(bytes)?;
    let body = bytes.get(HEADER2_LEN..).unwrap_or(&[]);
    if body.len() < header.payload_len {
        return Err(FrameError::Truncated { needed: header.payload_len, have: body.len() });
    }
    if body.len() > header.payload_len {
        return Err(FrameError::TrailingBytes { extra: body.len() - header.payload_len });
    }
    Ok((header, body))
}

/// Version negotiation: inspects the start of a byte stream and names the
/// protocol revision it opens with. `Ok(None)` means more bytes are
/// needed before the decision can be made; `Ok(Some((version,
/// header_len)))` pins the revision and tells streaming transports how
/// many header bytes to wait for.
///
/// # Errors
///
/// [`FrameError::BadMagic`] for unknown magics,
/// [`FrameError::UnsupportedVersion`] when the magic and version byte
/// disagree.
pub fn sniff(buf: &[u8]) -> Result<Option<(u8, usize)>, FrameError> {
    if buf.len() < 5 {
        return Ok(None);
    }
    let magic = read4(buf, 0)?;
    let version = buf.get(4).copied().unwrap_or(0);
    match magic {
        m if m == MAGIC => {
            if version != VERSION {
                return Err(FrameError::UnsupportedVersion { found: version });
            }
            Ok(Some((VERSION, HEADER_LEN)))
        }
        m if m == MAGIC2 => {
            if version != VERSION2 {
                return Err(FrameError::UnsupportedVersion { found: version });
            }
            Ok(Some((VERSION2, HEADER2_LEN)))
        }
        m => Err(FrameError::BadMagic { found: m }),
    }
}

fn read2(bytes: &[u8], at: usize) -> Result<[u8; 2], FrameError> {
    let slice =
        bytes.get(at..at + 2).ok_or(FrameError::Truncated { needed: at + 2, have: bytes.len() })?;
    <[u8; 2]>::try_from(slice).map_err(|_| FrameError::BadPayload { context: "2-byte field" })
}

fn read4(bytes: &[u8], at: usize) -> Result<[u8; 4], FrameError> {
    let slice =
        bytes.get(at..at + 4).ok_or(FrameError::Truncated { needed: at + 4, have: bytes.len() })?;
    <[u8; 4]>::try_from(slice).map_err(|_| FrameError::BadPayload { context: "4-byte field" })
}

fn read8(bytes: &[u8], at: usize) -> Result<[u8; 8], FrameError> {
    let slice =
        bytes.get(at..at + 8).ok_or(FrameError::Truncated { needed: at + 8, have: bytes.len() })?;
    <[u8; 8]>::try_from(slice).map_err(|_| FrameError::BadPayload { context: "8-byte field" })
}

/// Canonical payload writer: every field type has exactly one encoding,
/// so a message's byte image is a pure function of its value — the
/// property both the golden-vector tests and the content-addressed cache
/// key depend on.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty payload.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i32 (two's complement).
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i64 (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an f64 as its IEEE-754 bit pattern (big-endian) — exact,
    /// so byte identity equals value identity.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends raw bytes verbatim, no length prefix — for fields whose
    /// length is "the rest of the payload" (chunk bodies), mirroring
    /// [`Reader::take_rest`].
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed (u32) count for a following sequence.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if the count does not fit in u32.
    pub fn count(&mut self, n: usize) -> Result<(), FrameError> {
        let n = u32::try_from(n).map_err(|_| FrameError::Oversized {
            len: u64::try_from(n).unwrap_or(u64::MAX),
            max: u64::from(u32::MAX),
        })?;
        self.u32(n);
        Ok(())
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if the byte length does not fit in u32.
    pub fn str(&mut self, s: &str) -> Result<(), FrameError> {
        self.count(s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// Payload reader mirroring [`Writer`], with typed errors for every
/// short read or out-of-domain value.
#[derive(Debug)]
pub struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts reading at the front of `payload`.
    pub fn new(payload: &'a [u8]) -> Self {
        Reader { rest: payload }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Fails unless every byte was consumed.
    ///
    /// # Errors
    ///
    /// [`FrameError::TrailingBytes`] when bytes remain.
    pub fn expect_end(&self) -> Result<(), FrameError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes { extra: self.rest.len() })
        }
    }

    /// Consumes and returns every remaining byte — the codec for fields
    /// whose length is "the rest of the payload" (chunk bodies).
    pub fn take_rest(&mut self) -> &'a [u8] {
        let rest = self.rest;
        self.rest = &[];
        rest
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let (head, tail) = self
            .rest
            .split_at_checked(n)
            .ok_or(FrameError::Truncated { needed: n, have: self.rest.len() })?;
        self.rest = tail;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] on a short payload.
    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Reads a big-endian u16.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] on a short payload.
    pub fn u16(&mut self) -> Result<u16, FrameError> {
        let raw = <[u8; 2]>::try_from(self.take(2)?)
            .map_err(|_| FrameError::BadPayload { context: "u16 field" })?;
        Ok(u16::from_be_bytes(raw))
    }

    /// Reads a big-endian u32.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] on a short payload.
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        let raw = <[u8; 4]>::try_from(self.take(4)?)
            .map_err(|_| FrameError::BadPayload { context: "u32 field" })?;
        Ok(u32::from_be_bytes(raw))
    }

    /// Reads a big-endian u64.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] on a short payload.
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        let raw = <[u8; 8]>::try_from(self.take(8)?)
            .map_err(|_| FrameError::BadPayload { context: "u64 field" })?;
        Ok(u64::from_be_bytes(raw))
    }

    /// Reads a big-endian i32.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] on a short payload.
    pub fn i32(&mut self) -> Result<i32, FrameError> {
        let raw = <[u8; 4]>::try_from(self.take(4)?)
            .map_err(|_| FrameError::BadPayload { context: "i32 field" })?;
        Ok(i32::from_be_bytes(raw))
    }

    /// Reads a big-endian i64.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] on a short payload.
    pub fn i64(&mut self) -> Result<i64, FrameError> {
        let raw = <[u8; 8]>::try_from(self.take(8)?)
            .map_err(|_| FrameError::BadPayload { context: "i64 field" })?;
        Ok(i64::from_be_bytes(raw))
    }

    /// Reads an f64 from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] on a short payload.
    pub fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte; values other than 0/1 are malformed.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] on a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::BadPayload { context: "bool byte must be 0 or 1" }),
        }
    }

    /// Reads a u32 sequence count, bounded by what the remaining payload
    /// could possibly hold (`min_item_bytes` per element) so a hostile
    /// count cannot force a huge allocation.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when the declared count cannot fit.
    pub fn count(&mut self, min_item_bytes: usize) -> Result<usize, FrameError> {
        let n = usize::try_from(self.u32()?)
            .map_err(|_| FrameError::BadPayload { context: "count exceeds the address space" })?;
        let floor = n.saturating_mul(min_item_bytes.max(1));
        if floor > self.rest.len() {
            return Err(FrameError::Truncated { needed: floor, have: self.rest.len() });
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] / [`FrameError::BadPayload`] on short or
    /// non-UTF-8 bytes.
    pub fn str(&mut self) -> Result<String, FrameError> {
        let n = self.count(1)?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| FrameError::BadPayload { context: "string field is not UTF-8" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(0x03, b"hello").unwrap();
        assert_eq!(frame.len(), HEADER_LEN + 5);
        let (ty, payload) = decode_frame(&frame).unwrap();
        assert_eq!(ty, 0x03);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn header_rejections_are_typed() {
        let good = encode_frame(0x01, b"abcd1234").unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad), Err(FrameError::BadMagic { .. })));

        let mut bad = good.clone();
        bad[4] = 9;
        assert_eq!(decode_frame(&bad), Err(FrameError::UnsupportedVersion { found: 9 }));

        let mut bad = good.clone();
        bad[6] = 0xAB;
        assert_eq!(decode_frame(&bad), Err(FrameError::ReservedNonZero { found: 0xAB00 }));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert!(matches!(decode_frame(&bad), Err(FrameError::Oversized { .. })));

        assert!(matches!(decode_frame(&good[..7]), Err(FrameError::Truncated { .. })));
        assert!(matches!(decode_frame(&good[..HEADER_LEN + 3]), Err(FrameError::Truncated { .. })));

        let mut long = good.clone();
        long.push(0xFF);
        assert_eq!(decode_frame(&long), Err(FrameError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn oversized_errors_carry_the_actual_length() {
        // A payload one byte past the ceiling: the error names its real
        // size, not a sentinel.
        let payload = vec![0u8; usize::try_from(MAX_PAYLOAD).unwrap() + 1];
        assert_eq!(
            encode_frame(0x01, &payload),
            Err(FrameError::Oversized {
                len: u64::from(MAX_PAYLOAD) + 1,
                max: u64::from(MAX_PAYLOAD),
            })
        );

        // A sequence count past u32: the ceiling reported is the count
        // ceiling (u32::MAX), not the payload ceiling.
        #[cfg(target_pointer_width = "64")]
        {
            let n = usize::try_from(u64::from(u32::MAX) + 7).unwrap();
            let mut w = Writer::new();
            assert_eq!(
                w.count(n),
                Err(FrameError::Oversized {
                    len: u64::from(u32::MAX) + 7,
                    max: u64::from(u32::MAX),
                })
            );
        }
    }

    #[test]
    fn writer_reader_mirror_each_other() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i32(-44);
        w.i64(i64::MIN + 3);
        w.f64(-0.125);
        w.bool(true);
        w.str("thp/1 ☂").unwrap();
        let bytes = w.finish();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -44);
        assert_eq!(r.i64().unwrap(), i64::MIN + 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "thp/1 ☂");
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_rejects_bad_values() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool(), Err(FrameError::BadPayload { .. })));

        // A count promising more elements than bytes remain.
        let mut w = Writer::new();
        w.u32(1_000_000);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.count(8), Err(FrameError::Truncated { .. })));

        // Non-UTF8 string bytes.
        let mut w = Writer::new();
        w.u32(2);
        w.u8(0xFF);
        w.u8(0xFE);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(FrameError::BadPayload { .. })));

        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(FrameError::Truncated { .. })));
        let r = Reader::new(&[1]);
        assert_eq!(r.expect_end(), Err(FrameError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn frame2_round_trip() {
        let frame = encode_frame2(0x88, flag::CHUNK, 0xDEAD_BEEF_0000_0007, b"slice").unwrap();
        assert_eq!(frame.len(), HEADER2_LEN + 5);
        let (header, payload) = decode_frame2(&frame).unwrap();
        assert_eq!(
            header,
            Header2 {
                msg_type: 0x88,
                flags: flag::CHUNK,
                correlation: 0xDEAD_BEEF_0000_0007,
                payload_len: 5,
            }
        );
        assert_eq!(payload, b"slice");
    }

    #[test]
    fn frame2_rejects_malformed_headers() {
        let good = encode_frame2(0x01, flag::FINAL, 9, b"abcd1234").unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame2(&bad), Err(FrameError::BadMagic { .. })));

        let mut bad = good.clone();
        bad[4] = 1; // a THP2 magic with a v1 version byte
        assert_eq!(decode_frame2(&bad), Err(FrameError::UnsupportedVersion { found: 1 }));

        // Both flag bits, no flag bits, and an unknown bit are all malformed.
        for flags in [0x00, 0x03, 0x04, 0xFF] {
            let mut bad = good.clone();
            bad[6] = flags;
            assert!(matches!(decode_frame2(&bad), Err(FrameError::BadPayload { .. })), "{flags}");
            assert!(encode_frame2(0x01, flags, 9, b"").is_err(), "{flags}");
        }

        let mut bad = good.clone();
        bad[7] = 0x5A;
        assert_eq!(decode_frame2(&bad), Err(FrameError::ReservedNonZero { found: 0x5A }));

        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert!(matches!(decode_frame2(&bad), Err(FrameError::Oversized { .. })));

        let mut long = good.clone();
        long.push(0xFF);
        assert_eq!(decode_frame2(&long), Err(FrameError::TrailingBytes { extra: 1 }));

        assert!(matches!(decode_frame2(&good[..9]), Err(FrameError::Truncated { .. })));
    }

    #[test]
    fn sniff_negotiates_the_version() {
        assert_eq!(sniff(b""), Ok(None));
        assert_eq!(sniff(b"THP1"), Ok(None), "the version byte is part of the decision");
        assert_eq!(sniff(b"THP1\x01"), Ok(Some((VERSION, HEADER_LEN))));
        assert_eq!(sniff(b"THP2\x02rest-ignored"), Ok(Some((VERSION2, HEADER2_LEN))));
        // Magic and version must agree.
        assert_eq!(sniff(b"THP1\x02"), Err(FrameError::UnsupportedVersion { found: 2 }));
        assert_eq!(sniff(b"THP2\x01"), Err(FrameError::UnsupportedVersion { found: 1 }));
        assert_eq!(sniff(b"HTTP/1.1 "), Err(FrameError::BadMagic { found: *b"HTTP" }));
    }

    #[test]
    fn take_rest_drains_the_reader() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.take_rest(), &[2, 3]);
        assert_eq!(r.remaining(), 0);
        r.expect_end().unwrap();
    }

    #[test]
    fn display_covers_every_variant() {
        for (err, needle) in [
            (FrameError::Truncated { needed: 4, have: 1 }, "truncated"),
            (FrameError::BadMagic { found: [0; 4] }, "magic"),
            (FrameError::UnsupportedVersion { found: 3 }, "version 3"),
            (FrameError::ReservedNonZero { found: 7 }, "reserved"),
            (FrameError::Oversized { len: 9, max: 1 }, "ceiling"),
            (FrameError::UnknownType { code: 0x66 }, "0x66"),
            (FrameError::TrailingBytes { extra: 2 }, "trailing"),
            (FrameError::BadPayload { context: "x" }, "malformed"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
