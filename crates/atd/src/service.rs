//! The transport-agnostic service core: one [`Service::handle`] call per
//! request, independent of whether frames arrive over TCP, the in-memory
//! loopback, or a test harness.
//!
//! Keeping the core free of sockets is what makes the daemon testable:
//! the loopback transport drives the identical code path the TCP server
//! does, so protocol and scheduling behaviour can be verified without
//! touching the network.

use exec::ExecPool;

use crate::proto::{JobSpec, Request, Response, ServiceStats};
use crate::scheduler::{Admission, Completion, Scheduler};

/// The ATE daemon's request processor.
#[derive(Debug)]
pub struct Service {
    pool: ExecPool,
    scheduler: Scheduler,
    shutdown: bool,
}

impl Service {
    /// A service over an explicit pool and scheduler.
    pub fn new(pool: ExecPool, scheduler: Scheduler) -> Self {
        Service { pool, scheduler, shutdown: false }
    }

    /// A service configured from the environment: `EXEC_THREADS` for the
    /// pool, `ATD_QUEUE_DEPTH` / `ATD_CACHE_ENTRIES` for the scheduler.
    pub fn from_env() -> Self {
        Service::new(ExecPool::from_env(), Scheduler::from_env())
    }

    /// Whether a [`Request::Shutdown`] has been processed; transports stop
    /// serving once this turns true.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// The service counters.
    pub fn stats(&self) -> ServiceStats {
        self.scheduler.stats()
    }

    /// Flags the service for shutdown without a request in hand — the
    /// event-driven server's path (it decodes `Shutdown` frames itself).
    pub fn request_shutdown(&mut self) {
        self.shutdown = true;
    }

    /// Admits `specs` for `session` without draining — the event-driven
    /// server's submission path, which batches admissions across every
    /// ready connection before one [`Service::drain_each`] pass and
    /// routes the completions itself.
    pub fn admit(&mut self, session: u32, specs: &[JobSpec]) -> Admission {
        self.scheduler.submit(session, specs)
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.queue_depth()
    }

    /// The admission queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.scheduler.queue_capacity()
    }

    /// Streams every queued completion to `sink` the moment the pool
    /// finishes it (see [`Scheduler::drain_each`]).
    pub fn drain_each(&mut self, sink: &mut dyn FnMut(Completion)) {
        self.scheduler.drain_each(&self.pool, sink);
    }

    /// Counts a submission shed upstream of the queue.
    pub fn note_shed(&mut self, jobs: u64) {
        self.scheduler.note_shed(jobs);
    }

    /// Counts a connection the daemon accepted.
    pub fn note_connection_opened(&mut self) {
        self.scheduler.note_connection_opened();
    }

    /// Counts a connection retired for any reason.
    pub fn note_connection_closed(&mut self) {
        self.scheduler.note_connection_closed();
    }

    /// Counts a connection dropped on an error.
    pub fn note_connection_failed(&mut self) {
        self.scheduler.note_connection_failed();
    }

    /// Counts a malformed frame.
    pub fn note_frame_rejected(&mut self) {
        self.scheduler.note_frame_rejected();
    }

    /// Processes one request to completion. Every request gets exactly one
    /// response; job submissions are answered only after the drain cycle
    /// finishes, so a reply in hand means the work (or its cache hit) is
    /// done.
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Ping { token } => Response::Pong { token },
            Request::GetStats => Response::StatsReport(self.stats()),
            Request::Shutdown => {
                self.shutdown = true;
                Response::Goodbye
            }
            Request::Submit { session, spec } => {
                match self.scheduler.submit(session, &[spec]) {
                    Admission::Shed { queue_depth } => self.busy(queue_depth),
                    Admission::Accepted(tickets) => {
                        let ticket = tickets.first().copied().unwrap_or(0);
                        let completions = self.scheduler.drain(&self.pool);
                        let done = completions.into_iter().find(|c| c.ticket == ticket);
                        match done {
                            Some(c) => match c.outcome {
                                Ok(result) => Response::JobDone {
                                    ticket: c.ticket,
                                    provenance: c.provenance,
                                    result,
                                },
                                Err(e) => {
                                    Response::Failed { ticket: c.ticket, message: e.to_string() }
                                }
                            },
                            // Unreachable by construction (every admitted
                            // ticket completes in the same drain), but the
                            // protocol stays total rather than panicking.
                            None => Response::Failed {
                                ticket,
                                message: "job vanished from the drain cycle".to_string(),
                            },
                        }
                    }
                }
            }
            Request::SubmitBatch { session, specs } => {
                match self.scheduler.submit(session, &specs) {
                    Admission::Shed { queue_depth } => self.busy(queue_depth),
                    Admission::Accepted(_) => {
                        let mut completions = self.scheduler.drain(&self.pool);
                        // Reply in submission order regardless of the
                        // fairness interleave the drain executed in.
                        completions.sort_by_key(|c| c.ticket);
                        let outcomes = completions
                            .into_iter()
                            .map(|c| (c.ticket, c.provenance, c.outcome.map_err(|e| e.to_string())))
                            .collect();
                        Response::BatchDone { outcomes }
                    }
                }
            }
        }
    }

    fn busy(&self, queue_depth: usize) -> Response {
        Response::Busy {
            queue_depth: u32::try_from(queue_depth).unwrap_or(u32::MAX),
            queue_capacity: u32::try_from(self.scheduler.queue_capacity()).unwrap_or(u32::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{JobSpec, Provenance};
    use pstime::{DataRate, Duration};

    fn bathtub(points: u32) -> JobSpec {
        JobSpec::bathtub(
            Duration::from_ps_f64(3.2),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
            points,
        )
    }

    fn small_service() -> Service {
        Service::new(ExecPool::serial(), Scheduler::new(4, 8))
    }

    #[test]
    fn ping_stats_shutdown() {
        let mut svc = small_service();
        assert_eq!(svc.handle(Request::Ping { token: 99 }), Response::Pong { token: 99 });
        assert!(!svc.shutdown_requested());
        match svc.handle(Request::GetStats) {
            Response::StatsReport(stats) => assert_eq!(stats.submitted, 0),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(svc.handle(Request::Shutdown), Response::Goodbye);
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn submit_executes_then_hits_cache() {
        let mut svc = small_service();
        let spec = bathtub(51);
        let first = svc.handle(Request::Submit { session: 1, spec });
        let second = svc.handle(Request::Submit { session: 2, spec });
        match (&first, &second) {
            (
                Response::JobDone { provenance: p1, result: r1, .. },
                Response::JobDone { provenance: p2, result: r2, .. },
            ) => {
                assert_eq!(*p1, Provenance::Computed);
                assert_eq!(*p2, Provenance::Cache);
                assert_eq!(r1.encoded().unwrap(), r2.encoded().unwrap());
            }
            other => panic!("unexpected responses {other:?}"),
        }
        assert_eq!(svc.stats().cache_hits, 1);
    }

    #[test]
    fn oversized_batch_is_shed_with_busy() {
        let mut svc = small_service(); // queue capacity 4
        let specs = vec![bathtub(61); 5];
        match svc.handle(Request::SubmitBatch { session: 1, specs }) {
            Response::Busy { queue_depth, queue_capacity } => {
                assert_eq!(queue_depth, 0);
                assert_eq!(queue_capacity, 4);
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(svc.stats().shed, 5);
    }

    #[test]
    fn batch_replies_in_submission_order() {
        let mut svc = small_service();
        let specs = vec![bathtub(71), bathtub(72), bathtub(71)];
        match svc.handle(Request::SubmitBatch { session: 1, specs }) {
            Response::BatchDone { outcomes } => {
                assert_eq!(outcomes.len(), 3);
                let tickets: Vec<u64> = outcomes.iter().map(|(t, _, _)| *t).collect();
                assert_eq!(tickets, vec![1, 2, 3]);
                assert_eq!(outcomes[0].1, Provenance::Computed);
                assert_eq!(outcomes[2].1, Provenance::Batched);
                assert!(outcomes.iter().all(|(_, _, o)| o.is_ok()));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn failing_spec_reports_failed_with_ticket() {
        let mut svc = small_service();
        match svc.handle(Request::Submit { session: 1, spec: bathtub(1) }) {
            Response::Failed { ticket, message } => {
                assert_eq!(ticket, 1);
                assert!(message.contains("points"), "{message}");
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(svc.stats().failed, 1);
    }
}
