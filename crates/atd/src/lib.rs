//! # gigatest-atd — the remote test-head service
//!
//! The paper's mini-tester sits on a probe card with nothing but DC
//! power, one RF clock, and a thin serial link to the outside world
//! (§4) — which makes the *control plane* a protocol problem: the host
//! talks to the test head through a narrow, well-defined wire format and
//! the test head does the heavy lifting locally. This crate reproduces
//! that arrangement for the simulated instrument stack:
//!
//! * [`wire`] — "THP/1" and "THP/2", hand-rolled length-prefixed binary
//!   framings with typed decode errors. Total: arbitrary bytes from the
//!   network become [`wire::FrameError`]s, never panics. THP/2 adds
//!   client-chosen correlation ids and a STREAM/FINAL flag so responses
//!   may arrive out of order and in parts; the revision is negotiated by
//!   [`wire::sniff`] on a connection's first frame.
//! * [`proto`] — typed requests/responses and the job vocabulary
//!   ([`JobSpec`] / [`JobResult`]) covering the existing workloads:
//!   shmoo plots, wafer runs, eye scans, and bathtub sweeps. Encodings
//!   are canonical (exact integers, IEEE-754 bits), so a spec's bytes
//!   are its identity.
//! * [`scheduler`] + [`cache`] — session-fair batching over
//!   [`exec::ExecPool`] with bounded admission (`Busy` sheds), identical
//!   submissions coalesced per drain, and an FNV-1a content-addressed LRU
//!   result cache. Because every workload is bit-identical at any thread
//!   count, a cache hit is byte-for-byte the same as a recomputation.
//! * [`service`] / [`transport`] / [`server`] — the deterministic core is
//!   transport-agnostic: the in-memory [`Loopback`] drives the identical
//!   codec + scheduling path as the `atd` TCP daemon, so the whole
//!   service is testable without a socket. The daemon itself is a
//!   nonblocking event loop serving many connections concurrently.
//! * [`stream`] / [`pipeline`] — THP/2 streaming: results are cut into
//!   semantic chunks (shmoo rows, wafer stripes, eye columns, bathtub
//!   segments) whose concatenation is byte-identical to the monolithic
//!   encoding, and [`PipelinedClient`] keeps a depth-K window of
//!   correlated submissions in flight per connection.
//! * [`store`] (re-exported) — the persistent tier behind the LRU: on a
//!   cache miss the scheduler reads through to an append-only segment
//!   store keyed by the same FNV-1a spec digest, and writes computed
//!   successes behind. A restarted daemon rehydrates its warm set from
//!   disk, byte-identical to recomputation.
//!
//! Configuration: `ATD_QUEUE_DEPTH` and `ATD_CACHE_ENTRIES` override the
//! admission-queue and cache bounds, `ATD_PIPELINE_DEPTH` caps the
//! per-session pipeline, and `ATD_IDLE_TICKS` sets the slow-loris
//! eviction budget — all with the same lenient parse-or-default
//! behaviour as `EXEC_THREADS`. `ATD_STORE_DIR` attaches the persistent
//! result store (unset means memory-only), with
//! `ATD_STORE_SEGMENT_BYTES` / `ATD_STORE_MAX_BYTES` bounding segment
//! rotation and total disk use.
//!
//! ## Example: loopback session
//!
//! ```
//! use atd::{Client, JobSpec, Loopback, Provenance, Service, Submitted};
//! use pstime::{DataRate, Duration};
//!
//! let mut client = Client::new(Loopback::new(Service::from_env()));
//! let spec = JobSpec::bathtub(
//!     Duration::from_ps_f64(3.2),
//!     Duration::from_ps(20),
//!     DataRate::from_gbps(2.5),
//!     0.5,
//!     101,
//! );
//! let first = client.submit(1, spec)?;
//! let second = client.submit(2, spec)?;
//! assert!(matches!(first, Submitted::Done { provenance: Provenance::Computed, .. }));
//! // The replay is served from the cache, byte-identical.
//! assert!(matches!(second, Submitted::Done { provenance: Provenance::Cache, .. }));
//! # Ok::<(), atd::AtdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod error;
pub mod pipeline;
pub mod proto;
pub mod scheduler;
pub mod server;
pub mod service;
pub mod stream;
pub mod transport;
pub mod wire;
pub mod workload;

pub use error::AtdError;
pub use pipeline::PipelinedClient;
pub use proto::{JobResult, JobSpec, Provenance, Request, Response, ServiceStats, FAILURE_ID};
pub use scheduler::{Admission, Completion, Scheduler};
pub use server::{serve, serve_with, ServerConfig};
pub use service::Service;
pub use stream::{chunk_result, stream_digest, Event, Reassembler, StreamDigest};
pub use transport::{
    read_frame, write_frame, BatchSubmitted, Client, Loopback, Submitted, TcpClient, Transport,
};

// The durable tier's crate, re-exported so dependants (the farm, the
// load generator) configure stores without a direct dependency edge.
pub use store;

/// Convenient result alias for service operations.
pub type Result<T> = core::result::Result<T, AtdError>;
