//! Content-addressed result cache: FNV-1a over the job spec's canonical
//! bytes, LRU-evicted at a bounded entry count.
//!
//! Because job specs are exact (integers and IEEE-754 bit patterns) and
//! every workload is bit-identical at any thread count, a spec's encoded
//! bytes fully determine its result — so a cache hit can be served
//! byte-for-byte identical to a recomputation. Eviction order is a
//! deterministic function of the access sequence (a logical tick counter,
//! no clocks), keeping the whole service replayable.

use std::collections::BTreeMap;

use crate::proto::JobResult;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a — the cache's content address.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[derive(Debug, Clone)]
struct Entry {
    /// The full key bytes: hits require byte equality, not just a hash
    /// match, so an FNV collision degrades to a miss instead of serving
    /// the wrong job's result.
    key: Vec<u8>,
    value: JobResult,
    last_used: u64,
}

/// A bounded LRU cache from job-spec bytes to job results.
#[derive(Debug)]
pub struct ResultCache {
    entries: BTreeMap<u64, Entry>,
    capacity: usize,
    tick: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results. Zero disables caching.
    pub fn new(capacity: usize) -> Self {
        ResultCache { entries: BTreeMap::new(), capacity, tick: 0 }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<&JobResult> {
        let tick = self.next_tick();
        let entry = self.entries.get_mut(&fnv1a64(key)).filter(|e| e.key == key)?;
        entry.last_used = tick;
        Some(&entry.value)
    }

    /// Inserts `value` under `key`, evicting the least-recently-used entry
    /// if the cache is full. A hash collision with a different key
    /// overwrites the resident entry (the new result is the fresher one;
    /// byte-checked lookups make the overwrite safe).
    pub fn insert(&mut self, key: &[u8], value: JobResult) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        let hash = fnv1a64(key);
        if !self.entries.contains_key(&hash) && self.entries.len() >= self.capacity {
            // Evict the stalest entry. Linear scan: capacities are small
            // (tens to hundreds) and the scan order over a BTreeMap is
            // deterministic.
            let stalest =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(hash, _)| *hash);
            if let Some(stalest) = stalest {
                self.entries.remove(&stalest);
            }
        }
        self.entries.insert(hash, Entry { key: key.to_vec(), value, last_used: tick });
    }

    fn next_tick(&mut self) -> u64 {
        self.tick = self.tick.wrapping_add(1);
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: u32) -> JobResult {
        JobResult::Bathtub { pairs: vec![(0.0, f64::from(tag))], rendered: format!("r{tag}") }
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hit_returns_the_stored_result() {
        let mut cache = ResultCache::new(4);
        assert!(cache.is_empty());
        assert!(cache.get(b"k1").is_none());
        cache.insert(b"k1", result(1));
        assert_eq!(cache.get(b"k1"), Some(&result(1)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.capacity(), 4);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mut cache = ResultCache::new(2);
        cache.insert(b"a", result(1));
        cache.insert(b"b", result(2));
        // Touch "a" so "b" is now stalest.
        assert!(cache.get(b"a").is_some());
        cache.insert(b"c", result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(b"a").is_some());
        assert!(cache.get(b"b").is_none());
        assert!(cache.get(b"c").is_some());
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut cache = ResultCache::new(2);
        cache.insert(b"a", result(1));
        cache.insert(b"b", result(2));
        cache.insert(b"a", result(9)); // same key: overwrite in place
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(b"a"), Some(&result(9)));
        assert!(cache.get(b"b").is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = ResultCache::new(0);
        cache.insert(b"a", result(1));
        assert!(cache.is_empty());
        assert!(cache.get(b"a").is_none());
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let mut cache = ResultCache::new(3);
            for i in 0..10u32 {
                let key = [u8::try_from(i % 5).unwrap_or(0)];
                if cache.get(&key).is_none() {
                    cache.insert(&key, result(i));
                }
            }
            let mut survivors = Vec::new();
            for k in 0..5u8 {
                if cache.get(&[k]).is_some() {
                    survivors.push(k);
                }
            }
            survivors
        };
        assert_eq!(run(), run());
    }
}
