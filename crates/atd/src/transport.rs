//! Client transports: the in-memory loopback and the TCP stream client,
//! plus the typed [`Client`] wrapper that speaks requests and expects the
//! matching responses.
//!
//! The loopback is not a shortcut around the protocol — every request is
//! encoded to THP/1 bytes, decoded, handled, and the response re-encoded
//! and re-decoded, so a loopback test exercises the same codec path as a
//! socket.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::AtdError;
use crate::proto::{JobResult, JobSpec, Provenance, Request, Response, ServiceStats};
use crate::service::Service;
use crate::wire::{self, HEADER_LEN};

/// Anything that can carry one request/response exchange.
pub trait Transport {
    /// Sends `request` and returns the service's response.
    ///
    /// # Errors
    ///
    /// Transport and codec failures; protocol-level outcomes (`Busy`,
    /// `Failed`) are responses, not errors.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, AtdError>;
}

/// In-memory transport: a full encode → decode → handle → encode → decode
/// cycle against an owned [`Service`].
#[derive(Debug)]
pub struct Loopback {
    service: Service,
}

impl Loopback {
    /// Wraps a service.
    pub fn new(service: Service) -> Self {
        Loopback { service }
    }

    /// Read access to the wrapped service (stats inspection in tests).
    pub fn service(&self) -> &Service {
        &self.service
    }
}

impl Transport for Loopback {
    fn roundtrip(&mut self, request: &Request) -> Result<Response, AtdError> {
        let frame = request.to_frame()?;
        let decoded = Request::from_frame(&frame)?;
        let response = self.service.handle(decoded);
        let frame = response.to_frame()?;
        Ok(Response::from_frame(&frame)?)
    }
}

fn io_err(op: &'static str, e: &std::io::Error) -> AtdError {
    AtdError::Io { op, message: e.to_string() }
}

/// Writes one pre-encoded frame to a byte sink.
///
/// # Errors
///
/// [`AtdError::Io`] on a short or failed write.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), AtdError> {
    w.write_all(frame).map_err(|e| io_err("write frame", &e))?;
    w.flush().map_err(|e| io_err("flush frame", &e))
}

/// Reads one frame from a byte source, returning `(msg_type, payload)`.
/// `Ok(None)` means the peer closed the stream before a new frame began.
///
/// # Errors
///
/// [`AtdError::Io`] on socket failures, [`AtdError::Frame`] on a
/// malformed header.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, AtdError> {
    let mut header = [0u8; HEADER_LEN];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err("read frame header", &e)),
    }
    let (msg_type, len) = wire::decode_header(&header)?;
    // xlint::allow(wire-taint, decode_header has already rejected len > MAX_PAYLOAD so this allocation is bounded at 1 MiB)
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| io_err("read frame payload", &e))?;
    Ok(Some((msg_type, payload)))
}

/// TCP transport speaking THP/1 over a [`TcpStream`].
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`AtdError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, AtdError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", &e))?;
        stream.set_nodelay(true).map_err(|e| io_err("set nodelay", &e))?;
        Ok(TcpClient { stream })
    }
}

impl Transport for TcpClient {
    fn roundtrip(&mut self, request: &Request) -> Result<Response, AtdError> {
        let frame = request.to_frame()?;
        write_frame(&mut self.stream, &frame)?;
        let (ty, payload) = read_frame(&mut self.stream)?.ok_or(AtdError::Io {
            op: "read response",
            message: "connection closed before the response arrived".to_string(),
        })?;
        Ok(Response::from_parts(ty, &payload)?)
    }
}

/// The verdict of a single-job submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Submitted {
    /// The job ran (or was served from cache).
    Done {
        /// Admission ticket.
        ticket: u64,
        /// How the result was produced.
        provenance: Provenance,
        /// The outcome.
        result: JobResult,
    },
    /// Admission control shed the job; retry later.
    Busy {
        /// Jobs queued at the service.
        queue_depth: u32,
        /// The service's queue capacity.
        queue_capacity: u32,
    },
}

/// The verdict of a batch submission.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchSubmitted {
    /// Every job was admitted; per-job outcomes in submission order.
    Done(Vec<(u64, Provenance, Result<JobResult, String>)>),
    /// The whole batch was shed.
    Busy {
        /// Jobs queued at the service.
        queue_depth: u32,
        /// The service's queue capacity.
        queue_capacity: u32,
    },
}

/// A typed client over any [`Transport`]: sends the request, checks the
/// response type, and surfaces mismatches as
/// [`AtdError::UnexpectedResponse`].
#[derive(Debug)]
pub struct Client<T: Transport> {
    transport: T,
}

impl<T: Transport> Client<T> {
    /// Wraps a transport.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// The wrapped transport (for stats inspection on a loopback).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Pings the service; returns the echoed token.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-`Pong` response.
    pub fn ping(&mut self, token: u64) -> Result<u64, AtdError> {
        match self.transport.roundtrip(&Request::Ping { token })? {
            Response::Pong { token } => Ok(token),
            other => Err(unexpected(&other, "Pong")),
        }
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-`StatsReport` response.
    pub fn stats(&mut self) -> Result<ServiceStats, AtdError> {
        match self.transport.roundtrip(&Request::GetStats)? {
            Response::StatsReport(stats) => Ok(stats),
            other => Err(unexpected(&other, "StatsReport")),
        }
    }

    /// Submits one job under `session`.
    ///
    /// # Errors
    ///
    /// Transport failures; a `Failed` response becomes
    /// [`AtdError::Remote`].
    pub fn submit(&mut self, session: u32, spec: JobSpec) -> Result<Submitted, AtdError> {
        match self.transport.roundtrip(&Request::Submit { session, spec })? {
            Response::JobDone { ticket, provenance, result } => {
                Ok(Submitted::Done { ticket, provenance, result })
            }
            Response::Busy { queue_depth, queue_capacity } => {
                Ok(Submitted::Busy { queue_depth, queue_capacity })
            }
            Response::Failed { message, .. } => Err(AtdError::Remote { message }),
            other => Err(unexpected(&other, "JobDone, Busy, or Failed")),
        }
    }

    /// Submits a batch under `session`.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response type. Per-job
    /// failures come back inside the `Done` variant, not as an `Err`.
    pub fn submit_batch(
        &mut self,
        session: u32,
        specs: Vec<JobSpec>,
    ) -> Result<BatchSubmitted, AtdError> {
        match self.transport.roundtrip(&Request::SubmitBatch { session, specs })? {
            Response::BatchDone { outcomes } => Ok(BatchSubmitted::Done(outcomes)),
            Response::Busy { queue_depth, queue_capacity } => {
                Ok(BatchSubmitted::Busy { queue_depth, queue_capacity })
            }
            other => Err(unexpected(&other, "BatchDone or Busy")),
        }
    }

    /// Asks the daemon to stop serving.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-`Goodbye` response.
    pub fn shutdown(&mut self) -> Result<(), AtdError> {
        match self.transport.roundtrip(&Request::Shutdown)? {
            Response::Goodbye => Ok(()),
            other => Err(unexpected(&other, "Goodbye")),
        }
    }
}

fn unexpected(response: &Response, expected: &'static str) -> AtdError {
    AtdError::UnexpectedResponse { code: response.code(), expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use exec::ExecPool;
    use pstime::{DataRate, Duration};

    fn loopback_client() -> Client<Loopback> {
        let service = Service::new(ExecPool::serial(), Scheduler::new(4, 8));
        Client::new(Loopback::new(service))
    }

    fn bathtub(points: u32) -> JobSpec {
        JobSpec::bathtub(
            Duration::from_ps_f64(3.2),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
            points,
        )
    }

    #[test]
    fn loopback_speaks_the_full_protocol() {
        let mut client = loopback_client();
        assert_eq!(client.ping(12345).unwrap(), 12345);
        let stats = client.stats().unwrap();
        assert_eq!(stats.submitted, 0);

        let spec = bathtub(81);
        let first = client.submit(1, spec).unwrap();
        let Submitted::Done { provenance, result, .. } = first else {
            panic!("expected Done, got {first:?}");
        };
        assert_eq!(provenance, Provenance::Computed);

        let again = client.submit(2, spec).unwrap();
        let Submitted::Done { provenance: p2, result: r2, .. } = again else {
            panic!("expected Done, got {again:?}");
        };
        assert_eq!(p2, Provenance::Cache);
        assert_eq!(result.encoded().unwrap(), r2.encoded().unwrap());

        let batch = client.submit_batch(1, vec![bathtub(82), bathtub(82)]).unwrap();
        let BatchSubmitted::Done(outcomes) = batch else {
            panic!("expected Done, got {batch:?}");
        };
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[1].1, Provenance::Batched);

        // Overflow the 4-deep queue: shed.
        let shed = client.submit_batch(1, vec![bathtub(83); 5]).unwrap();
        assert!(matches!(shed, BatchSubmitted::Busy { queue_capacity: 4, .. }));

        // A failing spec surfaces as a remote error.
        let err = client.submit(1, bathtub(1));
        assert!(matches!(err, Err(AtdError::Remote { .. })));

        client.shutdown().unwrap();
        assert!(client.transport().service().shutdown_requested());
    }

    #[test]
    fn read_frame_handles_eof_and_truncation() {
        // Clean EOF before any byte: None.
        let empty: &[u8] = &[];
        assert!(read_frame(&mut &empty[..]).unwrap().is_none());
        // EOF mid-header: also treated as end of stream.
        let partial = [b'T', b'H'];
        assert!(read_frame(&mut &partial[..]).unwrap().is_none());
        // Valid header, truncated payload: an I/O error.
        let frame = Request::Ping { token: 1 }.to_frame().unwrap();
        let cut = &frame[..frame.len() - 2];
        assert!(matches!(read_frame(&mut &cut[..]), Err(AtdError::Io { .. })));
        // A full frame round-trips.
        let (ty, payload) = read_frame(&mut &frame[..]).unwrap().unwrap();
        assert_eq!(Request::from_parts(ty, &payload).unwrap(), Request::Ping { token: 1 });
    }
}
