//! Error type for the ATE daemon service layer.

use core::fmt;

use crate::wire::FrameError;

/// Errors raised by the atd service stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AtdError {
    /// A frame or payload failed to decode.
    Frame(FrameError),
    /// Error from the parallel execution engine.
    Exec(exec::ExecError),
    /// Error from the mini-tester workloads.
    MiniTester(minitester::MiniTesterError),
    /// Error from signal analysis workloads.
    Signal(signal::SignalError),
    /// The peer reported a failure executing our request.
    Remote {
        /// The peer's message, verbatim.
        message: String,
    },
    /// The peer answered with a response type the request cannot accept.
    UnexpectedResponse {
        /// The message-type code received.
        code: u8,
        /// What the request expected.
        expected: &'static str,
    },
    /// A socket operation failed.
    Io {
        /// What was being attempted, e.g. `"read frame header"`.
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// The persistent result store failed. Surfaced only from explicit
    /// store operations (opening a store for a head); inside the drain
    /// path store failures degrade to recomputation instead.
    Store(store::StoreError),
}

impl fmt::Display for AtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtdError::Frame(e) => write!(f, "wire protocol error: {e}"),
            AtdError::Exec(e) => write!(f, "execution error: {e}"),
            AtdError::MiniTester(e) => write!(f, "mini-tester error: {e}"),
            AtdError::Signal(e) => write!(f, "signal error: {e}"),
            AtdError::Remote { message } => write!(f, "remote failure: {message}"),
            AtdError::UnexpectedResponse { code, expected } => {
                write!(f, "unexpected response type {code:#04x} (expected {expected})")
            }
            AtdError::Io { op, message } => write!(f, "i/o failure during {op}: {message}"),
            AtdError::Store(e) => write!(f, "result store error: {e}"),
        }
    }
}

impl std::error::Error for AtdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtdError::Frame(e) => Some(e),
            AtdError::Exec(e) => Some(e),
            AtdError::MiniTester(e) => Some(e),
            AtdError::Signal(e) => Some(e),
            AtdError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for AtdError {
    fn from(e: FrameError) -> Self {
        AtdError::Frame(e)
    }
}

impl From<exec::ExecError> for AtdError {
    fn from(e: exec::ExecError) -> Self {
        AtdError::Exec(e)
    }
}

impl From<minitester::MiniTesterError> for AtdError {
    fn from(e: minitester::MiniTesterError) -> Self {
        AtdError::MiniTester(e)
    }
}

impl From<signal::SignalError> for AtdError {
    fn from(e: signal::SignalError) -> Self {
        AtdError::Signal(e)
    }
}

impl From<store::StoreError> for AtdError {
    fn from(e: store::StoreError) -> Self {
        AtdError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = AtdError::from(FrameError::BadMagic { found: [0, 1, 2, 3] });
        assert!(e.to_string().contains("wire protocol"));
        assert!(e.source().is_some());
        let e = AtdError::from(exec::ExecError::MissingResult { index: 2 });
        assert!(e.to_string().contains("execution"));
        assert!(e.source().is_some());
        let e = AtdError::from(minitester::MiniTesterError::EyeClosed);
        assert!(e.to_string().contains("mini-tester"));
        let e = AtdError::from(signal::SignalError::EmptyWaveform { context: "t" });
        assert!(e.to_string().contains("signal"));
        let e = AtdError::Remote { message: "queue on fire".to_string() };
        assert!(e.to_string().contains("queue on fire"));
        assert!(e.source().is_none());
        let e = AtdError::UnexpectedResponse { code: 0x7f, expected: "Pong" };
        assert!(e.to_string().contains("0x7f") && e.to_string().contains("Pong"));
        let e = AtdError::Io { op: "connect", message: "refused".to_string() };
        assert!(e.to_string().contains("connect") && e.to_string().contains("refused"));
        let e = AtdError::from(store::StoreError::Oversized { what: "key", len: 9000, max: 4096 });
        assert!(e.to_string().contains("result store"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<AtdError>();
    }
}
