//! Streaming partial results: splitting a [`JobResult`]'s canonical
//! encoding into semantic slices, and reassembling + verifying them on
//! the client side.
//!
//! The chunker cuts at the natural boundaries of each workload — shmoo
//! pass-map rows, wafer-map stripes, eye-scan strobe columns, bathtub
//! segments — so a live client can render progress as slices land. The
//! invariant the whole THP/2 design rests on: concatenating a stream's
//! chunks in `seq` order is **byte-identical** to the monolithic
//! [`JobResult::encoded`] bytes THP/1 ships, at any thread count and any
//! chunk interleaving. The terminal [`crate::Response::Summary`] carries
//! the chunk count, total byte count, and a [`StreamDigest`], so a
//! [`Reassembler`] proves the identity before decoding anything.

use crate::proto::{JobResult, Provenance, ServiceStats};
use crate::wire::{FrameError, Reader, Writer};

/// Incremental 64-bit digest over a chunk stream's bytes.
///
/// The summary digest guards reassembly, so it is computed once by the
/// daemon and once by every client — a byte-at-a-time hash (FNV's
/// dependent multiply chain runs ~4 cycles per byte) would dominate the
/// streaming path's CPU on multi-kilobyte results. This construction
/// mixes the stream as little-endian u64 words instead, buffering
/// partial words across [`StreamDigest::absorb`] calls, and folds the
/// tail and total length into the final state. The digest is a function
/// of the byte *sequence* only: any split of the same bytes across
/// absorb calls produces the same value.
#[derive(Debug, Clone, Copy)]
pub struct StreamDigest {
    state: u64,
    /// Partial little-endian word carried across absorb calls.
    tail: u64,
    /// Bytes currently held in `tail` (0..8).
    tail_len: u32,
    /// Total bytes absorbed.
    len: u64,
}

/// Initial state (the splitmix64 increment).
const DIGEST_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
/// Odd multiplier (from the splitmix64 finalizer).
const DIGEST_PRIME: u64 = 0xff51_afd7_ed55_8ccd;

impl Default for StreamDigest {
    fn default() -> Self {
        StreamDigest::new()
    }
}

impl StreamDigest {
    /// A digest over the empty stream.
    pub fn new() -> Self {
        StreamDigest { state: DIGEST_SEED, tail: 0, tail_len: 0, len: 0 }
    }

    fn mix(state: u64, word: u64) -> u64 {
        (state ^ word).wrapping_mul(DIGEST_PRIME).rotate_left(29)
    }

    /// Feeds `bytes` into the digest.
    pub fn absorb(&mut self, bytes: &[u8]) {
        self.len = self.len.wrapping_add(u64::try_from(bytes.len()).unwrap_or(u64::MAX));
        let mut rest = bytes;
        if self.tail_len > 0 {
            let need = usize::try_from(8u32.saturating_sub(self.tail_len)).unwrap_or(0);
            let take = need.min(rest.len());
            let (head, remainder) = rest.split_at(take);
            for b in head {
                self.tail |= u64::from(*b) << (8 * self.tail_len);
                self.tail_len += 1;
            }
            rest = remainder;
            if self.tail_len < 8 {
                return;
            }
            self.state = Self::mix(self.state, self.tail);
            self.tail = 0;
            self.tail_len = 0;
        }
        let mut words = rest.chunks_exact(8);
        for w in words.by_ref() {
            let word = u64::from_le_bytes(<[u8; 8]>::try_from(w).unwrap_or([0; 8]));
            self.state = Self::mix(self.state, word);
        }
        for b in words.remainder() {
            self.tail |= u64::from(*b) << (8 * self.tail_len);
            self.tail_len += 1;
        }
    }

    /// The digest of everything absorbed so far (does not consume the
    /// accumulator; absorbing more bytes and finishing again is valid).
    pub fn finish(&self) -> u64 {
        // The tail is padded with its own length in the top byte so
        // "ends in 0x00" and "ends one byte short" cannot collide; the
        // total length is mixed last for the same reason.
        let mut s = Self::mix(self.state, self.tail ^ (u64::from(self.tail_len) << 56));
        s = Self::mix(s, self.len);
        s ^= s >> 33;
        s = s.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        s ^ (s >> 29)
    }
}

/// One-shot [`StreamDigest`] over a contiguous byte slice.
pub fn stream_digest(bytes: &[u8]) -> u64 {
    let mut d = StreamDigest::new();
    d.absorb(bytes);
    d.finish()
}

/// Wafer records per stripe chunk.
pub const WAFER_STRIPE_RECORDS: usize = 64;
/// Eye-scan strobe points per column chunk.
pub const EYE_COLUMN_POINTS: usize = 64;
/// Bathtub `(phase, BER)` pairs per segment chunk.
pub const BATHTUB_SEGMENT_PAIRS: usize = 256;

const RESULT_SHMOO: u8 = 1;
const RESULT_WAFER: u8 = 2;
const RESULT_EYE: u8 = 3;
const RESULT_BATHTUB: u8 = 4;

/// Splits `result`'s canonical encoding into semantic slices whose
/// concatenation reproduces [`JobResult::encoded`] byte for byte. Every
/// result yields at least a preamble (dimensions) and a footer (trailing
/// scalars plus the rendering), with the bulk payload sliced between
/// them: one chunk per shmoo pass-row, per [`WAFER_STRIPE_RECORDS`]-die
/// wafer stripe, per [`EYE_COLUMN_POINTS`]-strobe eye column, per
/// [`BATHTUB_SEGMENT_PAIRS`]-pair bathtub segment.
///
/// # Errors
///
/// [`FrameError::Oversized`] if a sequence length exceeds u32.
pub fn chunk_result(result: &JobResult) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut chunks = Vec::new();
    match result {
        JobResult::Shmoo { thresholds_mv, phases_fs, pass, rendered } => {
            let mut w = Writer::new();
            w.u8(RESULT_SHMOO);
            w.count(thresholds_mv.len())?;
            for v in thresholds_mv {
                w.i32(*v);
            }
            w.count(phases_fs.len())?;
            for p in phases_fs {
                w.i64(*p);
            }
            w.count(pass.len())?;
            chunks.push(w.finish());
            // One chunk per pass-map row (a full strobe sweep at one
            // threshold). Hand-built results whose pass length is not a
            // multiple of the phase count still chunk exactly — the last
            // slice is simply short.
            for row in pass.chunks(phases_fs.len().max(1)) {
                let mut w = Writer::new();
                for b in row {
                    w.bool(*b);
                }
                chunks.push(w.finish());
            }
            let mut w = Writer::new();
            w.str(rendered)?;
            chunks.push(w.finish());
        }
        JobResult::Wafer { records, touchdowns, injected_hard, injected_marginal, rendered } => {
            let mut w = Writer::new();
            w.u8(RESULT_WAFER);
            w.count(records.len())?;
            chunks.push(w.finish());
            for stripe in records.chunks(WAFER_STRIPE_RECORDS) {
                let mut w = Writer::new();
                for rec in stripe {
                    w.u32(rec.die);
                    w.u8(rec.bin);
                    w.u32(rec.bist_errors);
                    match rec.eye_ui {
                        Some(ui) => {
                            w.bool(true);
                            w.f64(ui);
                        }
                        None => w.bool(false),
                    }
                }
                chunks.push(w.finish());
            }
            let mut w = Writer::new();
            w.u32(*touchdowns);
            w.u32(*injected_hard);
            w.u32(*injected_marginal);
            w.str(rendered)?;
            chunks.push(w.finish());
        }
        JobResult::Eye { points, step_fs, rendered } => {
            let mut w = Writer::new();
            w.u8(RESULT_EYE);
            w.count(points.len())?;
            chunks.push(w.finish());
            for column in points.chunks(EYE_COLUMN_POINTS) {
                let mut w = Writer::new();
                for (phase, compared, errors) in column {
                    w.i64(*phase);
                    w.u32(*compared);
                    w.u32(*errors);
                }
                chunks.push(w.finish());
            }
            let mut w = Writer::new();
            w.i64(*step_fs);
            w.str(rendered)?;
            chunks.push(w.finish());
        }
        JobResult::Bathtub { pairs, rendered } => {
            let mut w = Writer::new();
            w.u8(RESULT_BATHTUB);
            w.count(pairs.len())?;
            chunks.push(w.finish());
            for segment in pairs.chunks(BATHTUB_SEGMENT_PAIRS) {
                let mut w = Writer::new();
                for (phase, ber) in segment {
                    w.f64(*phase);
                    w.f64(*ber);
                }
                chunks.push(w.finish());
            }
            let mut w = Writer::new();
            w.str(rendered)?;
            chunks.push(w.finish());
        }
    }
    chunks.retain(|c| !c.is_empty());
    Ok(chunks)
}

/// Client-side accumulator for one correlation id's chunk stream.
///
/// Chunks must arrive in `seq` order within their correlation (the
/// daemon emits them that way; interleaving happens only *across*
/// correlations). [`Reassembler::finish`] verifies the summary's chunk
/// count, byte count, and digest against what actually arrived, then
/// decodes the job result from the concatenated bytes.
#[derive(Debug, Default)]
pub struct Reassembler {
    bytes: Vec<u8>,
    chunks: u32,
}

impl Reassembler {
    /// An empty stream.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Chunks received so far.
    pub fn chunks(&self) -> u32 {
        self.chunks
    }

    /// Appends one chunk.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] if `seq` is not the next expected
    /// position, distinguishing a replay (`seq` already consumed —
    /// a duplicate or late reordered chunk) from a gap (`seq` beyond
    /// the next slot — a lost or early reordered chunk), so transcripts
    /// name the hostile pattern they rejected.
    pub fn push(&mut self, seq: u32, bytes: &[u8]) -> Result<(), FrameError> {
        if seq < self.chunks {
            return Err(FrameError::BadPayload { context: "duplicate or replayed chunk seq" });
        }
        if seq > self.chunks {
            return Err(FrameError::BadPayload { context: "chunk seq gap" });
        }
        self.bytes.extend_from_slice(bytes);
        self.chunks = self.chunks.wrapping_add(1);
        Ok(())
    }

    /// Verifies the stream against its summary and decodes the result.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] on a chunk-count, byte-count, or digest
    /// mismatch; any [`FrameError`] from decoding the reassembled bytes.
    pub fn finish(
        self,
        chunks: u32,
        total_bytes: u64,
        digest: u64,
    ) -> Result<JobResult, FrameError> {
        if self.chunks != chunks {
            return Err(FrameError::BadPayload { context: "summary chunk count mismatch" });
        }
        if u64::try_from(self.bytes.len()).unwrap_or(u64::MAX) != total_bytes {
            return Err(FrameError::BadPayload { context: "summary byte count mismatch" });
        }
        if stream_digest(&self.bytes) != digest {
            return Err(FrameError::BadPayload { context: "summary digest mismatch" });
        }
        let mut r = Reader::new(&self.bytes);
        let result = JobResult::decode(&mut r)?;
        r.expect_end()?;
        Ok(result)
    }
}

/// One event from a pipelined THP/2 session, tagged with the correlation
/// id the client chose at submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A partial-result slice landed (already folded into the stream's
    /// [`Reassembler`]; carried here so callers can render live).
    Chunk {
        /// The submission this slice belongs to.
        correlation: u64,
        /// Position in the stream.
        seq: u32,
        /// The slice's bytes.
        bytes: Vec<u8>,
    },
    /// A submission finished; the reassembled result passed summary
    /// verification.
    Done {
        /// The submission this result answers.
        correlation: u64,
        /// Admission ticket.
        ticket: u64,
        /// How the result was produced.
        provenance: Provenance,
        /// The stream's digest, already verified against the
        /// reassembled bytes — callers comparing results across runs can
        /// use it without rehashing.
        digest: u64,
        /// The verified, decoded result.
        result: JobResult,
    },
    /// The daemon shed the submission (queue or pipeline-depth cap).
    Busy {
        /// The submission that was shed.
        correlation: u64,
        /// Jobs queued at the service.
        queue_depth: u32,
        /// The service's queue capacity.
        queue_capacity: u32,
    },
    /// The submission was admitted but failed, or the daemon rejected
    /// the frame itself (then `correlation` is [`crate::proto::FAILURE_ID`]).
    Failed {
        /// The submission that failed.
        correlation: u64,
        /// Admission ticket, or [`crate::proto::FAILURE_ID`].
        ticket: u64,
        /// The failure, rendered.
        message: String,
    },
    /// Reply to a pipelined ping.
    Pong {
        /// The probe's correlation.
        correlation: u64,
        /// The echoed token.
        token: u64,
    },
    /// Reply to a pipelined stats poll.
    Stats {
        /// The poll's correlation.
        correlation: u64,
        /// The counters.
        stats: ServiceStats,
    },
    /// The daemon acknowledged shutdown.
    Goodbye {
        /// The shutdown request's correlation.
        correlation: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WireDieRecord;

    fn samples() -> Vec<JobResult> {
        vec![
            JobResult::Shmoo {
                thresholds_mv: vec![-1400, -1300, -1200],
                phases_fs: vec![0, 10_000_000, 20_000_000],
                pass: vec![true, false, true, true, false, false, true, true, true],
                rendered: "shmoo 3x3".to_string(),
            },
            JobResult::Shmoo {
                thresholds_mv: Vec::new(),
                phases_fs: Vec::new(),
                pass: Vec::new(),
                rendered: "empty".to_string(),
            },
            JobResult::Wafer {
                records: (0..150)
                    .map(|i| WireDieRecord {
                        die: i,
                        bin: u8::try_from(i % 3).unwrap_or(0),
                        bist_errors: i * 7,
                        eye_ui: if i % 2 == 0 { Some(0.5 + f64::from(i) / 1000.0) } else { None },
                    })
                    .collect(),
                touchdowns: 12,
                injected_hard: 3,
                injected_marginal: 5,
                rendered: "wafer map".to_string(),
            },
            JobResult::Eye {
                points: (0..130)
                    .map(|i| (i64::from(i) * 10_000, 256, u32::from(i % 5 == 0)))
                    .collect(),
                step_fs: 10_000,
                rendered: "eye tub".to_string(),
            },
            JobResult::Bathtub {
                pairs: (0..600).map(|i| (f64::from(i) / 600.0, 1e-12 * f64::from(i))).collect(),
                rendered: "bathtub sweep: 600 points".to_string(),
            },
        ]
    }

    /// The digest is a function of the byte sequence alone — any split
    /// across absorb calls, including empty and sub-word slices, yields
    /// the one-shot value.
    #[test]
    fn stream_digest_is_split_invariant() {
        let data: Vec<u8> = (0u32..1000).map(|i| u8::try_from(i % 251).unwrap_or(0)).collect();
        let oneshot = stream_digest(&data);
        for split in [0usize, 1, 3, 7, 8, 9, 64, 500, 999, 1000] {
            let mut d = StreamDigest::new();
            let (a, b) = data.split_at(split);
            d.absorb(a);
            d.absorb(&[]);
            d.absorb(b);
            assert_eq!(d.finish(), oneshot, "split at {split}");
        }
        let mut byte_at_a_time = StreamDigest::new();
        for b in &data {
            byte_at_a_time.absorb(&[*b]);
        }
        assert_eq!(byte_at_a_time.finish(), oneshot);
    }

    /// Length is part of the digest: trailing zeros and prefixes do not
    /// collide, and distinct byte sequences differ.
    #[test]
    fn stream_digest_separates_lengths_and_contents() {
        assert_ne!(stream_digest(b""), stream_digest(b"\0"));
        assert_ne!(stream_digest(b"\0"), stream_digest(b"\0\0"));
        assert_ne!(stream_digest(b"12345678"), stream_digest(b"1234567"));
        assert_ne!(stream_digest(b"12345678"), stream_digest(b"12345679"));
        assert_ne!(stream_digest(b"abcdefgh12345678"), stream_digest(b"abcdefgh12345679"));
        // Same value every call: pure function, no hidden state.
        assert_eq!(stream_digest(b"abc"), stream_digest(b"abc"));
    }

    /// The load-bearing invariant: concatenated chunks are byte-identical
    /// to the monolithic encoding, for every result shape.
    #[test]
    fn chunk_concatenation_is_the_monolithic_encoding() {
        for result in samples() {
            let monolithic = result.encoded().unwrap();
            let chunks = chunk_result(&result).unwrap();
            assert!(chunks.len() >= 2, "preamble + footer at minimum");
            assert!(chunks.iter().all(|c| !c.is_empty()));
            let concat: Vec<u8> = chunks.iter().flatten().copied().collect();
            assert_eq!(concat, monolithic, "{result:?}");
        }
    }

    #[test]
    fn bulk_payloads_split_at_semantic_boundaries() {
        let results = samples();
        // 3x3 shmoo: preamble + 3 rows + footer.
        assert_eq!(chunk_result(&results[0]).unwrap().len(), 5);
        // 150 records at 64/stripe: preamble + 3 stripes + footer.
        assert_eq!(chunk_result(&results[2]).unwrap().len(), 5);
        // 130 points at 64/column: preamble + 3 columns + footer.
        assert_eq!(chunk_result(&results[3]).unwrap().len(), 5);
        // 600 pairs at 256/segment: preamble + 3 segments + footer.
        assert_eq!(chunk_result(&results[4]).unwrap().len(), 5);
    }

    #[test]
    fn reassembler_round_trips_and_verifies() {
        for result in samples() {
            let chunks = chunk_result(&result).unwrap();
            let concat: Vec<u8> = chunks.iter().flatten().copied().collect();
            let mut asm = Reassembler::new();
            for (seq, chunk) in chunks.iter().enumerate() {
                asm.push(u32::try_from(seq).unwrap_or(u32::MAX), chunk).unwrap();
            }
            let n = asm.chunks();
            let back = asm
                .finish(n, u64::try_from(concat.len()).unwrap_or(0), stream_digest(&concat))
                .unwrap();
            assert_eq!(back, result);
        }
    }

    #[test]
    fn reassembler_rejects_reordering_and_bad_summaries() {
        let result = samples().remove(0);
        let chunks = chunk_result(&result).unwrap();
        let concat: Vec<u8> = chunks.iter().flatten().copied().collect();
        let total = u64::try_from(concat.len()).unwrap_or(0);
        let digest = stream_digest(&concat);
        let n = u32::try_from(chunks.len()).unwrap_or(0);

        // A skipped seq is rejected at push time.
        let mut asm = Reassembler::new();
        asm.push(0, &chunks[0]).unwrap();
        assert!(asm.push(2, &chunks[2]).is_err());

        let assemble = || {
            let mut asm = Reassembler::new();
            for (seq, chunk) in chunks.iter().enumerate() {
                asm.push(u32::try_from(seq).unwrap_or(u32::MAX), chunk).unwrap();
            }
            asm
        };
        // Wrong chunk count, byte count, or digest each fail verification.
        assert!(assemble().finish(n + 1, total, digest).is_err());
        assert!(assemble().finish(n, total + 1, digest).is_err());
        assert!(assemble().finish(n, total, digest ^ 1).is_err());
        assert!(assemble().finish(n, total, digest).is_ok());
    }
}
