//! The ATE daemon: serves THP/1 over TCP until a client sends Shutdown.
//!
//! ```text
//! cargo run --release -p gigatest-atd --bin atd -- --addr 127.0.0.1:4815
//! ```
//!
//! Configuration comes from the environment: `EXEC_THREADS` sizes the
//! worker pool, `ATD_QUEUE_DEPTH` bounds admission, and
//! `ATD_CACHE_ENTRIES` bounds the result cache. The bound address is
//! printed on stdout as `atd listening on <addr>` so wrappers can bind
//! port 0 and discover the ephemeral port.

use std::net::TcpListener;

use atd::Service;

const DEFAULT_ADDR: &str = "127.0.0.1:4815";

fn parse_addr() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let mut addr = DEFAULT_ADDR.to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return Err("--addr requires a value".to_string()),
            },
            "--help" | "-h" => {
                return Err(format!("usage: atd [--addr HOST:PORT]   (default {DEFAULT_ADDR})"))
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(addr)
}

fn run() -> Result<(), String> {
    let addr = parse_addr()?;
    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    println!("atd listening on {local}");

    let service = serve_until_shutdown(&listener)?;
    let stats = service.stats();
    eprintln!(
        "atd: served {} jobs ({} cache hits, {} batched, {} shed, {} failed)",
        stats.submitted, stats.cache_hits, stats.batched, stats.shed, stats.failed
    );
    Ok(())
}

fn serve_until_shutdown(listener: &TcpListener) -> Result<Service, String> {
    atd::serve(listener, Service::from_env()).map_err(|e| format!("serve failed: {e}"))
}

fn main() {
    if let Err(message) = run() {
        eprintln!("atd: {message}");
        std::process::exit(2);
    }
}
