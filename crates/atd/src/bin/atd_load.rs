//! Closed-loop load generator for the ATE daemon.
//!
//! ```text
//! cargo run --release -p gigatest-atd --bin atd-load                  # timed, TCP
//! cargo run --release -p gigatest-atd --bin atd-load -- --requests 2000
//! cargo run --release -p gigatest-atd --bin atd-load -- --canary     # deterministic
//! ```
//!
//! The default mode boots an in-process `atd` daemon on an ephemeral TCP
//! port, drives it with a mixed request stream (submits, batches, pings,
//! stats polls) over real sockets, and reports throughput, latency, and
//! cache hit rate to `BENCH_atd.json`. Every repeated spec's result is
//! checked byte-for-byte against its first occurrence — the load test
//! doubles as a cache-identity audit — and the run fails on any protocol
//! error or byte mismatch.
//!
//! `--canary` skips sockets and clocks entirely: it drives the loopback
//! transport with a fixed mix and prints only deterministic bytes (result
//! digests and service counters). CI runs it under `EXEC_THREADS=1` and
//! `=4` and diffs the output, extending the workspace's thread-count
//! invariance proof through the wire protocol, scheduler, and cache.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::time::Instant; // xlint::allow(no-wall-clock, load-generator harness: wall time is the measurand here and never feeds back into results)

use atd::{
    AtdError, BatchSubmitted, Client, JobResult, JobSpec, Loopback, Provenance, Service, Submitted,
    TcpClient, Transport,
};
use pstime::{DataRate, Duration};

/// The fixed workload table: small variants of all four job kinds, sized
/// so a full mixed run stays in seconds while still exercising every
/// wire encoding and the batching/caching machinery.
fn spec_table() -> Vec<JobSpec> {
    let rate = DataRate::from_gbps(2.5);
    let mut specs = Vec::new();
    // Shmoo: a narrow 3-row band around the PECL midpoint.
    for (stim_seed, seed) in [(17, 5), (17, 6), (18, 5), (18, 6)] {
        specs.push(JobSpec::Shmoo {
            rate_bps: rate.as_bps(),
            bits: 256,
            stim_seed,
            phase_step_fs: Duration::from_ps(10).as_fs(),
            v_start_mv: -1400,
            v_end_mv: -1200,
            v_step_mv: 100,
            seed,
        });
    }
    // Wafer: four dies, two sites, modest defect rates.
    for seed in [1, 2, 3, 4] {
        specs.push(JobSpec::Wafer {
            columns: 2,
            dies: 4,
            sites: 2,
            hard_defect_rate: 0.25,
            marginal_rate: 0.0,
            rate_bps: rate.as_bps(),
            test_bits: 256,
            seed,
        });
    }
    // Eye scans over two stimuli.
    for (stim_seed, seed) in [(21, 9), (21, 10), (22, 9), (22, 10)] {
        specs.push(JobSpec::eye(rate, 256, stim_seed, seed));
    }
    // Bathtub sweeps across two jitter budgets.
    for (rj_ps, points) in [(3, 2001), (3, 1001), (5, 2001), (5, 1001)] {
        specs.push(JobSpec::bathtub(
            Duration::from_ps(rj_ps),
            Duration::from_ps(20),
            rate,
            0.5,
            points,
        ));
    }
    specs
}

/// Running tallies across the request stream.
#[derive(Debug, Default)]
struct Tally {
    requests: u64,
    jobs: u64,
    computed: u64,
    cached: u64,
    batched: u64,
    busy: u64,
    protocol_errors: u64,
    mismatches: u64,
}

impl Tally {
    fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            to_f64(self.cached + self.batched) / to_f64(self.jobs)
        }
    }
}

fn to_f64(n: u64) -> f64 {
    u32::try_from(n).map(f64::from).unwrap_or(f64::MAX)
}

/// Byte-identity ledger: first-seen result bytes per spec key.
#[derive(Debug, Default)]
struct Ledger {
    first_seen: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl Ledger {
    /// Records `result` for `spec`; returns false on a byte mismatch with
    /// the first occurrence.
    fn check(&mut self, spec: &JobSpec, result: &JobResult) -> bool {
        let key = spec.key_bytes();
        let bytes = result.encoded().unwrap_or_default();
        match self.first_seen.get(&key) {
            Some(first) => *first == bytes,
            None => {
                self.first_seen.insert(key, bytes);
                true
            }
        }
    }
}

fn note_submitted(tally: &mut Tally, provenance: Provenance) {
    tally.jobs += 1;
    match provenance {
        Provenance::Computed => tally.computed += 1,
        Provenance::Cache => tally.cached += 1,
        Provenance::Batched => tally.batched += 1,
    }
}

/// Drives one request of the mixed stream against `client`.
fn drive_one<T: Transport>(
    client: &mut Client<T>,
    specs: &[JobSpec],
    i: u64,
    tally: &mut Tally,
    ledger: &mut Ledger,
) -> Result<(), AtdError> {
    tally.requests += 1;
    let session = u32::try_from(i % 4).unwrap_or(0);
    if i % 97 == 13 {
        let token = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if client.ping(token)? != token {
            tally.protocol_errors += 1;
        }
        return Ok(());
    }
    if i % 131 == 7 {
        client.stats()?;
        return Ok(());
    }
    let slot = usize::try_from(i).unwrap_or(0) % specs.len().max(1);
    if i % 50 == 49 {
        // A batch of three consecutive table entries (wrapping).
        let mut batch = Vec::new();
        for k in 0..3 {
            if let Some(spec) = specs.get((slot + k) % specs.len().max(1)) {
                batch.push(*spec);
            }
        }
        match client.submit_batch(session, batch.clone())? {
            BatchSubmitted::Done(outcomes) => {
                for (spec, (_, provenance, outcome)) in batch.iter().zip(&outcomes) {
                    match outcome {
                        Ok(result) => {
                            note_submitted(tally, *provenance);
                            if !ledger.check(spec, result) {
                                tally.mismatches += 1;
                            }
                        }
                        Err(_) => tally.protocol_errors += 1,
                    }
                }
            }
            BatchSubmitted::Busy { .. } => tally.busy += 1,
        }
        return Ok(());
    }
    let Some(spec) = specs.get(slot) else {
        return Ok(());
    };
    match client.submit(session, *spec)? {
        Submitted::Done { provenance, result, .. } => {
            note_submitted(tally, provenance);
            if !ledger.check(spec, &result) {
                tally.mismatches += 1;
            }
        }
        Submitted::Busy { .. } => tally.busy += 1,
    }
    Ok(())
}

/// Deterministic loopback run: prints per-spec result digests and the
/// final counters — nothing wall-clock-dependent.
fn canary(requests: u64) -> Result<(), String> {
    let specs = spec_table();
    let mut client = Client::new(Loopback::new(Service::from_env()));
    let mut tally = Tally::default();
    let mut ledger = Ledger::default();
    for i in 0..requests {
        drive_one(&mut client, &specs, i, &mut tally, &mut ledger)
            .map_err(|e| format!("request {i} failed: {e}"))?;
    }
    println!("== atd canary ==");
    for spec in &specs {
        let key = spec.key_bytes();
        let digest =
            ledger.first_seen.get(&key).map(|bytes| atd::cache::fnv1a64(bytes)).unwrap_or_default();
        println!("{:8} {:016x} {:016x}", spec.kind(), atd::cache::fnv1a64(&key), digest);
    }
    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    println!(
        "jobs {} computed {} cached {} batched {} busy {} mismatches {}",
        tally.jobs, tally.computed, tally.cached, tally.batched, tally.busy, tally.mismatches
    );
    println!(
        "service: submitted {} completed {} cache_hits {} batched {} shed {} failed {}",
        stats.submitted, stats.completed, stats.cache_hits, stats.batched, stats.shed, stats.failed
    );
    if tally.mismatches > 0 || tally.protocol_errors > 0 {
        return Err(format!(
            "canary run saw {} mismatches, {} protocol errors",
            tally.mismatches, tally.protocol_errors
        ));
    }
    Ok(())
}

/// Timed TCP run against an in-process daemon; writes `BENCH_atd.json`.
fn bench(requests: u64) -> Result<(), String> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind daemon: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    let daemon = std::thread::spawn(move || atd::serve(&listener, Service::from_env()));
    eprintln!("atd-load: daemon on {addr}, {requests} requests");

    let specs = spec_table();
    let mut client = Client::new(
        TcpClient::connect(addr).map_err(|e| format!("cannot connect to daemon: {e}"))?,
    );
    let mut tally = Tally::default();
    let mut ledger = Ledger::default();
    let mut latencies_s = Vec::with_capacity(usize::try_from(requests).unwrap_or(0));

    let t0 = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        drive_one(&mut client, &specs, i, &mut tally, &mut ledger)
            .map_err(|e| format!("request {i} failed: {e}"))?;
        latencies_s.push(t.elapsed().as_secs_f64());
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    daemon
        .join()
        .map_err(|_| "daemon thread panicked".to_string())?
        .map_err(|e| format!("daemon failed: {e}"))?;

    latencies_s.sort_by(f64::total_cmp);
    let quantile = |q_permille: u64| -> f64 {
        let Some(last) = latencies_s.len().checked_sub(1) else {
            return 0.0;
        };
        let idx = (u64::try_from(last).unwrap_or(0) * q_permille + 500) / 1000;
        let idx = usize::try_from(idx).unwrap_or(0).min(last);
        latencies_s.get(idx).copied().unwrap_or(0.0)
    };
    let mean_s = if latencies_s.is_empty() {
        0.0
    } else {
        latencies_s.iter().sum::<f64>() / to_f64(u64::try_from(latencies_s.len()).unwrap_or(1))
    };
    let rps = if elapsed_s > 0.0 { to_f64(tally.requests) / elapsed_s } else { 0.0 };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"requests\": {},\n", tally.requests));
    json.push_str(&format!("  \"jobs\": {},\n", tally.jobs));
    json.push_str(&format!("  \"elapsed_s\": {elapsed_s:.6},\n"));
    json.push_str(&format!("  \"requests_per_s\": {rps:.1},\n"));
    json.push_str(&format!("  \"latency_mean_s\": {mean_s:.6},\n"));
    json.push_str(&format!("  \"latency_p50_s\": {:.6},\n", quantile(500)));
    json.push_str(&format!("  \"latency_p99_s\": {:.6},\n", quantile(990)));
    json.push_str(&format!("  \"cache_hit_rate\": {:.4},\n", tally.hit_rate()));
    json.push_str(&format!(
        "  \"provenance\": {{ \"computed\": {}, \"cached\": {}, \"batched\": {} }},\n",
        tally.computed, tally.cached, tally.batched
    ));
    json.push_str(&format!("  \"busy\": {},\n", tally.busy));
    json.push_str(&format!("  \"protocol_errors\": {},\n", tally.protocol_errors));
    json.push_str(&format!("  \"result_mismatches\": {},\n", tally.mismatches));
    json.push_str(&format!(
        "  \"service\": {{ \"submitted\": {}, \"completed\": {}, \"cache_hits\": {}, \"batched\": {}, \"shed\": {}, \"failed\": {} }}\n",
        stats.submitted, stats.completed, stats.cache_hits, stats.batched, stats.shed, stats.failed
    ));
    json.push_str("}\n");

    match std::fs::write("BENCH_atd.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_atd.json"),
        Err(e) => return Err(format!("failed to write BENCH_atd.json: {e}")),
    }
    print!("{json}");

    if tally.protocol_errors > 0 || tally.mismatches > 0 {
        return Err(format!(
            "load run saw {} protocol errors, {} result mismatches",
            tally.protocol_errors, tally.mismatches
        ));
    }
    Ok(())
}

fn parse_args() -> Result<(bool, u64), String> {
    let mut canary_mode = false;
    let mut requests: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--canary" => canary_mode = true,
            "--requests" => {
                let value = args.next().ok_or("--requests requires a value")?;
                requests = Some(value.parse().map_err(|_| format!("bad request count {value:?}"))?);
            }
            "--help" | "-h" => return Err("usage: atd-load [--canary] [--requests N]".to_string()),
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    // Canary default is small (CI diffs it twice); the timed default is
    // the full 1000-request mixed stream.
    let requests = requests.unwrap_or(if canary_mode { 200 } else { 1000 });
    Ok((canary_mode, requests))
}

fn main() {
    let result =
        parse_args().and_then(
            |(canary_mode, requests)| {
                if canary_mode {
                    canary(requests)
                } else {
                    bench(requests)
                }
            },
        );
    if let Err(message) = result {
        eprintln!("atd-load: {message}");
        std::process::exit(2);
    }
}
