//! Executes decoded job specs against the native workload crates.
//!
//! This is the bridge between the wire vocabulary ([`JobSpec`] /
//! [`JobResult`]) and the pool-parameterized entry points
//! ([`exec::PoolJob`]) the workloads expose: every spec reconstructs the
//! exact argument set a local caller would build, runs it on the supplied
//! pool, and converts the outcome back to wire form. Specs are validated
//! before any native constructor runs, so out-of-domain fields surface as
//! typed errors.

use exec::{ExecPool, PoolJob};
use pstime::{DataRate, Duration, Millivolts};

use crate::error::AtdError;
use crate::proto::{JobResult, JobSpec};

fn to_usize(v: u32) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Runs one job spec on `pool`, returning its wire-form result.
///
/// Identical specs produce byte-identical results at any pool width: the
/// workloads derive all randomness from spec-carried seeds through
/// index-addressed substreams.
///
/// # Errors
///
/// [`AtdError::Frame`] for an out-of-domain spec; workload and execution
/// errors otherwise.
pub fn execute(spec: &JobSpec, pool: &ExecPool) -> Result<JobResult, AtdError> {
    spec.validate()?;
    match *spec {
        JobSpec::Shmoo {
            rate_bps,
            bits,
            stim_seed,
            phase_step_fs,
            v_start_mv,
            v_end_mv,
            v_step_mv,
            seed,
        } => {
            let rate = DataRate::from_bps(rate_bps);
            let n_bits = to_usize(bits);
            let mut path = minitester::MiniTesterDatapath::new()?;
            let expected = path.expected_prbs(rate, n_bits)?;
            let mut stim_path = minitester::MiniTesterDatapath::new()?;
            let wave = stim_path.prbs_stimulus(rate, n_bits, stim_seed)?;
            let config = minitester::ShmooConfig {
                phase_step: Duration::from_fs(phase_step_fs),
                v_start: Millivolts::new(v_start_mv),
                v_end: Millivolts::new(v_end_mv),
                v_step: Millivolts::new(v_step_mv),
            };
            let plot =
                minitester::ShmooJob { wave: &wave, rate, expected: &expected, config, seed }
                    .run_on(pool)?;
            Ok(JobResult::from_shmoo(&plot)?)
        }
        JobSpec::Wafer {
            columns,
            dies,
            sites,
            hard_defect_rate,
            marginal_rate,
            rate_bps,
            test_bits,
            seed,
        } => {
            let config = minitester::WaferRunConfig {
                columns: to_usize(columns),
                dies: to_usize(dies),
                sites: to_usize(sites),
                hard_defect_rate,
                marginal_rate,
                rate: DataRate::from_bps(rate_bps),
                test_bits: to_usize(test_bits),
                seed,
            };
            let report = config.run_on(pool)?;
            Ok(JobResult::from_wafer(&report)?)
        }
        JobSpec::Eye { rate_bps, bits, stim_seed, seed } => {
            let rate = DataRate::from_bps(rate_bps);
            let n_bits = to_usize(bits);
            let mut path = minitester::MiniTesterDatapath::new()?;
            let expected = path.expected_prbs(rate, n_bits)?;
            let mut stim_path = minitester::MiniTesterDatapath::new()?;
            let wave = stim_path.prbs_stimulus(rate, n_bits, stim_seed)?;
            let capture = minitester::EtCapture::new();
            let scan = minitester::EyeScanJob {
                capture: &capture,
                wave: &wave,
                rate,
                expected: &expected,
                seed,
            }
            .run_on(pool)?;
            Ok(JobResult::from_eye(&scan)?)
        }
        JobSpec::Bathtub { rj_rms_fs, dj_pp_fs, rate_bps, transition_density, points } => {
            let curve = signal::BathtubCurve::new(
                Duration::from_fs(rj_rms_fs),
                Duration::from_fs(dj_pp_fs),
                DataRate::from_bps(rate_bps),
                transition_density,
            );
            let pairs =
                signal::BathtubSweep { curve: &curve, points: to_usize(points) }.run_on(pool)?;
            Ok(JobResult::from_bathtub(pairs))
        }
        // Shard variants: identical argument reconstruction to their
        // parents, run through the range entry points so every cell/die/
        // point seeds from its global substream — the sub-result is
        // byte-for-byte the band a full run would have produced.
        JobSpec::ShmooRows {
            rate_bps,
            bits,
            stim_seed,
            phase_step_fs,
            v_start_mv,
            v_end_mv,
            v_step_mv,
            seed,
            row_start,
            row_count,
        } => {
            let rate = DataRate::from_bps(rate_bps);
            let n_bits = to_usize(bits);
            let mut path = minitester::MiniTesterDatapath::new()?;
            let expected = path.expected_prbs(rate, n_bits)?;
            let mut stim_path = minitester::MiniTesterDatapath::new()?;
            let wave = stim_path.prbs_stimulus(rate, n_bits, stim_seed)?;
            let config = minitester::ShmooConfig {
                phase_step: Duration::from_fs(phase_step_fs),
                v_start: Millivolts::new(v_start_mv),
                v_end: Millivolts::new(v_end_mv),
                v_step: Millivolts::new(v_step_mv),
            };
            let plot =
                minitester::ShmooJob { wave: &wave, rate, expected: &expected, config, seed }
                    .run_rows_on(pool, to_usize(row_start), to_usize(row_count))?;
            Ok(JobResult::from_shmoo(&plot)?)
        }
        JobSpec::WaferDies {
            columns,
            dies,
            sites,
            hard_defect_rate,
            marginal_rate,
            rate_bps,
            test_bits,
            seed,
            die_start,
            die_count,
        } => {
            let config = minitester::WaferRunConfig {
                columns: to_usize(columns),
                dies: to_usize(dies),
                sites: to_usize(sites),
                hard_defect_rate,
                marginal_rate,
                rate: DataRate::from_bps(rate_bps),
                test_bits: to_usize(test_bits),
                seed,
            };
            let report = config.run_dies_on(pool, to_usize(die_start), to_usize(die_count))?;
            Ok(JobResult::from_wafer(&report)?)
        }
        JobSpec::EyeRange { rate_bps, bits, stim_seed, seed, phase_start, phase_count } => {
            let rate = DataRate::from_bps(rate_bps);
            let n_bits = to_usize(bits);
            let mut path = minitester::MiniTesterDatapath::new()?;
            let expected = path.expected_prbs(rate, n_bits)?;
            let mut stim_path = minitester::MiniTesterDatapath::new()?;
            let wave = stim_path.prbs_stimulus(rate, n_bits, stim_seed)?;
            let capture = minitester::EtCapture::new();
            let scan = minitester::EyeScanJob {
                capture: &capture,
                wave: &wave,
                rate,
                expected: &expected,
                seed,
            }
            .run_range_on(pool, to_usize(phase_start), to_usize(phase_count))?;
            Ok(JobResult::from_eye(&scan)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shmoo_spec_matches_direct_run() {
        let pool = ExecPool::new(2);
        let rate = DataRate::from_gbps(2.5);
        let config = minitester::ShmooConfig::pecl();
        let spec = JobSpec::shmoo(rate, 256, 17, &config, 5);
        let remote = execute(&spec, &pool).unwrap();

        let mut path = minitester::MiniTesterDatapath::new().unwrap();
        let expected = path.expected_prbs(rate, 256).unwrap();
        let mut stim = minitester::MiniTesterDatapath::new().unwrap();
        let wave = stim.prbs_stimulus(rate, 256, 17).unwrap();
        let plot = minitester::ShmooPlot::run_with_pool(&wave, rate, &expected, &config, 5, &pool)
            .unwrap();
        assert_eq!(remote, JobResult::from_shmoo(&plot).unwrap());
        assert_eq!(remote.rendered(), plot.to_string());
    }

    #[test]
    fn bathtub_spec_matches_direct_sweep() {
        let pool = ExecPool::new(3);
        let rj = Duration::from_ps_f64(3.2);
        let dj = Duration::from_ps(20);
        let rate = DataRate::from_gbps(2.5);
        let spec = JobSpec::bathtub(rj, dj, rate, 0.5, 101);
        let remote = execute(&spec, &pool).unwrap();
        let curve = signal::BathtubCurve::new(rj, dj, rate, 0.5);
        let pairs = curve.sweep(101).unwrap();
        assert_eq!(remote, JobResult::from_bathtub(pairs));
    }

    #[test]
    fn shard_specs_reproduce_slices_of_the_parent_result() {
        let pool = ExecPool::new(2);
        let specs = [
            JobSpec::shmoo(DataRate::from_gbps(2.5), 256, 17, &minitester::ShmooConfig::pecl(), 5),
            JobSpec::wafer(&minitester::WaferRunConfig {
                dies: 8,
                columns: 4,
                sites: 4,
                test_bits: 256,
                ..minitester::WaferRunConfig::default()
            }),
            JobSpec::eye(DataRate::from_gbps(2.5), 256, 21, 9),
        ];
        for spec in specs {
            let full = execute(&spec, &pool).unwrap();
            let extent = spec.shard_extent().unwrap();
            let head = execute(&spec.slice(0, 1).unwrap(), &pool).unwrap();
            let tail = execute(&spec.slice(1, extent - 1).unwrap(), &pool).unwrap();
            // Spot-check each shard against the parent's data rows.
            match (&full, &head, &tail) {
                (
                    JobResult::Shmoo { pass, phases_fs, .. },
                    JobResult::Shmoo { pass: head_pass, .. },
                    JobResult::Shmoo { pass: tail_pass, .. },
                ) => {
                    assert_eq!(head_pass.as_slice(), &pass[..phases_fs.len()]);
                    assert_eq!(tail_pass.as_slice(), &pass[phases_fs.len()..]);
                }
                (
                    JobResult::Wafer { records, touchdowns, .. },
                    JobResult::Wafer { records: head_recs, touchdowns: head_td, .. },
                    JobResult::Wafer { records: tail_recs, .. },
                ) => {
                    assert_eq!(head_recs.as_slice(), &records[..1]);
                    assert_eq!(tail_recs.as_slice(), &records[1..]);
                    assert_eq!(head_td, touchdowns, "geometry, not content");
                }
                (
                    JobResult::Eye { points, .. },
                    JobResult::Eye { points: head_pts, .. },
                    JobResult::Eye { points: tail_pts, .. },
                ) => {
                    assert_eq!(head_pts.as_slice(), &points[..1]);
                    assert_eq!(tail_pts.as_slice(), &points[1..]);
                }
                other => panic!("mismatched result kinds: {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_spec_is_a_typed_error() {
        let pool = ExecPool::serial();
        let spec = JobSpec::Eye { rate_bps: 0, bits: 16, stim_seed: 0, seed: 0 };
        assert!(matches!(execute(&spec, &pool), Err(AtdError::Frame(_))));
    }

    #[test]
    fn failing_workload_propagates_its_error() {
        // A one-point bathtub passes spec validation (only a ceiling is
        // enforced there) but the sweep itself needs both crossovers: the
        // signal-layer error must come back typed.
        let pool = ExecPool::serial();
        let spec = JobSpec::Bathtub {
            rj_rms_fs: 3_200,
            dj_pp_fs: 20_000,
            rate_bps: DataRate::from_gbps(2.5).as_bps(),
            transition_density: 0.5,
            points: 1,
        };
        assert!(matches!(execute(&spec, &pool), Err(AtdError::Signal(_))));
    }

    #[test]
    fn hostile_spec_is_shed_before_any_workload_runs() {
        // An inverted voltage sweep is now rejected by JobSpec::validate
        // (a Frame error), never reaching the shmoo constructor.
        let pool = ExecPool::serial();
        let spec = JobSpec::Shmoo {
            rate_bps: DataRate::from_gbps(2.5).as_bps(),
            bits: 64,
            stim_seed: 1,
            phase_step_fs: 10_000_000,
            v_start_mv: -900,
            v_end_mv: -1700,
            v_step_mv: 50,
            seed: 1,
        };
        assert!(matches!(execute(&spec, &pool), Err(AtdError::Frame(_))));
    }
}
