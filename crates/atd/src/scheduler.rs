//! Session-aware job scheduling: bounded admission, per-session fairness,
//! identical-spec coalescing, and the content-addressed result cache.
//!
//! The scheduler is a deterministic state machine: given the same sequence
//! of [`Scheduler::submit`] / [`Scheduler::drain`] calls it produces the
//! same completions, the same provenance labels, and the same cache state,
//! at any worker-pool width. Nothing here reads a clock — recency is a
//! logical tick counter and fairness is round-robin over sessions in
//! first-seen order.

use std::collections::{BTreeMap, VecDeque};

use exec::ExecPool;
use store::{Store, StoreConfig};

use crate::cache::ResultCache;
use crate::error::AtdError;
use crate::proto::{JobResult, JobSpec, Provenance, ServiceStats};
use crate::workload;

/// Environment override for the admission queue depth.
pub const ATD_QUEUE_DEPTH_ENV: &str = "ATD_QUEUE_DEPTH";

/// Environment override for the result-cache entry bound.
pub const ATD_CACHE_ENTRIES_ENV: &str = "ATD_CACHE_ENTRIES";

/// Environment knob naming the persistent store directory. Unset (or
/// blank) means no durable tier: the daemon serves from memory alone,
/// exactly as it did before the store existed.
pub const ATD_STORE_DIR_ENV: &str = "ATD_STORE_DIR";

/// Environment override for the store's segment-rotation threshold.
pub const ATD_STORE_SEGMENT_BYTES_ENV: &str = "ATD_STORE_SEGMENT_BYTES";

/// Environment override for the store's total disk bound.
pub const ATD_STORE_MAX_BYTES_ENV: &str = "ATD_STORE_MAX_BYTES";

/// Default admission queue depth.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Default result-cache entry bound.
pub const DEFAULT_CACHE_ENTRIES: usize = 64;

/// Default store segment-rotation threshold (1 MiB).
pub const DEFAULT_STORE_SEGMENT_BYTES: u64 = 1 << 20;

/// Default store disk bound (64 MiB).
pub const DEFAULT_STORE_MAX_BYTES: u64 = 64 << 20;

/// A job admitted to the queue but not yet executed.
#[derive(Debug, Clone)]
struct Pending {
    session: u32,
    ticket: u64,
    spec: JobSpec,
}

/// The verdict of an admission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Every spec was enqueued; one ticket per spec, in submission order.
    Accepted(Vec<u64>),
    /// The submission would overflow the queue; nothing was enqueued
    /// (all-or-nothing, so a batch is never half-admitted).
    Shed {
        /// Jobs currently queued.
        queue_depth: usize,
    },
}

/// One finished job from a drain cycle.
#[derive(Debug)]
pub struct Completion {
    /// The session that submitted the job.
    pub session: u32,
    /// The job's admission ticket.
    pub ticket: u64,
    /// How the result was produced.
    pub provenance: Provenance,
    /// The result, or the execution error.
    pub outcome: Result<crate::proto::JobResult, AtdError>,
}

/// The batching scheduler with its embedded result cache and optional
/// durable store tier.
#[derive(Debug)]
pub struct Scheduler {
    queue: VecDeque<Pending>,
    queue_capacity: usize,
    cache: ResultCache,
    /// The durable tier behind the LRU: read-through on a cache miss,
    /// write-behind on a computed success. `None` serves memory-only.
    store: Option<Store>,
    next_ticket: u64,
    stats: ServiceStats,
}

impl Scheduler {
    /// A scheduler with explicit bounds. A zero cache capacity disables
    /// caching; the queue capacity is clamped to at least 1.
    pub fn new(queue_capacity: usize, cache_entries: usize) -> Self {
        let queue_capacity = queue_capacity.max(1);
        let cache = ResultCache::new(cache_entries);
        let stats = ServiceStats {
            queue_capacity: u32::try_from(queue_capacity).unwrap_or(u32::MAX),
            cache_capacity: u32::try_from(cache_entries).unwrap_or(u32::MAX),
            ..ServiceStats::default()
        };
        Scheduler {
            queue: VecDeque::new(),
            queue_capacity,
            cache,
            store: None,
            next_ticket: 1,
            stats,
        }
    }

    /// A scheduler configured from `ATD_QUEUE_DEPTH` / `ATD_CACHE_ENTRIES`,
    /// falling back to the defaults on unset or unparsable values — the
    /// same lenient override idiom as `EXEC_THREADS`. When
    /// `ATD_STORE_DIR` names a directory the persistent store is opened
    /// there and attached as the durable tier; a store that fails to
    /// open is skipped rather than refusing to boot the daemon.
    pub fn from_env() -> Self {
        let sched = Scheduler::new(
            exec::env::positive_usize_or(ATD_QUEUE_DEPTH_ENV, DEFAULT_QUEUE_DEPTH),
            exec::env::positive_usize_or(ATD_CACHE_ENTRIES_ENV, DEFAULT_CACHE_ENTRIES),
        );
        match Scheduler::store_from_env() {
            Some(store) => sched.with_store(store),
            None => sched,
        }
    }

    /// [`Scheduler::from_env`] with an explicit durable tier instead of
    /// the `ATD_STORE_DIR`-derived one — the farm boots each head over
    /// its own store directory this way.
    pub fn from_env_with_store(store: Store) -> Self {
        Scheduler::new(
            exec::env::positive_usize_or(ATD_QUEUE_DEPTH_ENV, DEFAULT_QUEUE_DEPTH),
            exec::env::positive_usize_or(ATD_CACHE_ENTRIES_ENV, DEFAULT_CACHE_ENTRIES),
        )
        .with_store(store)
    }

    /// Opens the persistent store the `ATD_STORE_*` knobs describe.
    /// `None` when `ATD_STORE_DIR` is unset or blank, or when the open
    /// fails — the durable tier is an accelerator, never an availability
    /// dependency, so a bad disk degrades to memory-only service.
    pub fn store_from_env() -> Option<Store> {
        let dir = exec::env::non_empty(ATD_STORE_DIR_ENV)?;
        let config = StoreConfig::new(dir)
            .segment_bytes(exec::env::positive_u64_or(
                ATD_STORE_SEGMENT_BYTES_ENV,
                DEFAULT_STORE_SEGMENT_BYTES,
            ))
            .max_bytes(exec::env::positive_u64_or(
                ATD_STORE_MAX_BYTES_ENV,
                DEFAULT_STORE_MAX_BYTES,
            ));
        Store::open(config).ok()
    }

    /// Attaches `store` as the durable tier. Records already on disk
    /// become servable immediately and are reported via the
    /// `store_recovered` counter.
    #[must_use]
    pub fn with_store(mut self, store: Store) -> Self {
        self.stats.store_recovered = store.stats().recovered_records;
        self.store = Some(store);
        self
    }

    /// Whether a durable tier is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// A snapshot of the durable tier's own counters, when one is
    /// attached.
    pub fn store_stats(&self) -> Option<store::StoreStats> {
        self.store.as_ref().map(Store::stats)
    }

    /// The admission queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Entries currently resident in the result cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Admits `specs` for `session`, all-or-nothing against the queue
    /// bound.
    pub fn submit(&mut self, session: u32, specs: &[JobSpec]) -> Admission {
        if specs.is_empty() {
            return Admission::Accepted(Vec::new());
        }
        if self.queue.len() + specs.len() > self.queue_capacity {
            self.stats.shed += u64::try_from(specs.len()).unwrap_or(u64::MAX);
            return Admission::Shed { queue_depth: self.queue.len() };
        }
        let mut tickets = Vec::with_capacity(specs.len());
        for spec in specs {
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            self.queue.push_back(Pending { session, ticket, spec: *spec });
            tickets.push(ticket);
        }
        self.stats.submitted += u64::try_from(specs.len()).unwrap_or(u64::MAX);
        Admission::Accepted(tickets)
    }

    /// Counts a submission shed upstream of the queue (the server's
    /// per-session pipeline-depth cap) so every `Busy` reply is visible
    /// in the same counter.
    pub fn note_shed(&mut self, jobs: u64) {
        self.stats.shed += jobs;
    }

    /// Counts a connection the daemon accepted.
    pub fn note_connection_opened(&mut self) {
        self.stats.connections_opened += 1;
    }

    /// Counts a connection retired for any reason; paired with
    /// [`Self::note_connection_opened`] so the two balance once every
    /// peer is gone.
    pub fn note_connection_closed(&mut self) {
        self.stats.connections_closed += 1;
    }

    /// Counts a connection the daemon dropped on an error.
    pub fn note_connection_failed(&mut self) {
        self.stats.connections_failed += 1;
    }

    /// Counts a frame the daemon rejected as malformed.
    pub fn note_frame_rejected(&mut self) {
        self.stats.frames_rejected += 1;
    }

    /// Executes everything queued and returns the completions in service
    /// order: round-robin across sessions (first-seen order), FIFO within
    /// a session, so no session's backlog can starve another's.
    ///
    /// Within one drain, identical specs run once: the first occurrence is
    /// `Computed` (or `Cache` if a previous drain stored it) and the rest
    /// are `Batched` copies of the same bytes. Successful results enter
    /// the cache; errors are never cached, so a failed spec is retried on
    /// its next submission.
    pub fn drain(&mut self, pool: &ExecPool) -> Vec<Completion> {
        let mut completions = Vec::with_capacity(self.queue.len());
        self.drain_each(pool, &mut |c| completions.push(c));
        completions
    }

    /// [`Scheduler::drain`], streamed: `sink` receives each completion the
    /// moment the pool finishes it, in the same service order `drain`
    /// returns, without buffering whole jobs — the event-driven server
    /// turns each one into outbox frames as it lands.
    pub fn drain_each(&mut self, pool: &ExecPool, sink: &mut dyn FnMut(Completion)) {
        // Partition the queue per session, preserving first-seen session
        // order and FIFO order inside each session.
        let mut sessions: Vec<(u32, VecDeque<Pending>)> = Vec::new();
        while let Some(pending) = self.queue.pop_front() {
            match sessions.iter_mut().find(|(s, _)| *s == pending.session) {
                Some((_, q)) => q.push_back(pending),
                None => {
                    let mut q = VecDeque::new();
                    let session = pending.session;
                    q.push_back(pending);
                    sessions.push((session, q));
                }
            }
        }

        // Round-robin: one job per session per lap.
        let mut order = Vec::new();
        loop {
            let mut took_any = false;
            for (_, q) in &mut sessions {
                if let Some(pending) = q.pop_front() {
                    order.push(pending);
                    took_any = true;
                }
            }
            if !took_any {
                break;
            }
        }

        // Execute in service order, batching and caching as we go. The
        // per-drain `computed` map keys on full spec bytes (not the FNV
        // hash), so coalescing can never merge colliding specs.
        let mut computed: BTreeMap<Vec<u8>, crate::proto::JobResult> = BTreeMap::new();
        for pending in order {
            let key = pending.spec.key_bytes();
            // Coalescing outranks the cache: a spec computed earlier in
            // THIS drain is `Batched`; the cache answers only for specs
            // this drain has not touched.
            let (provenance, outcome) = if let Some(result) = computed.get(&key) {
                self.stats.batched += 1;
                (Provenance::Batched, Ok(result.clone()))
            } else if let Some(result) = self.cache.get(&key) {
                self.stats.cache_hits += 1;
                let result = result.clone();
                // A cache hit also counts as this drain's first occurrence:
                // later duplicates coalesce to Batched, as documented.
                computed.insert(key, result.clone());
                (Provenance::Cache, Ok(result))
            } else if let Some(result) = self.store_lookup(&key) {
                // Read-through from the durable tier: the payload is the
                // canonical result encoding, so serving it is
                // byte-identical to recomputing. Promote it into the LRU
                // and treat it as this drain's first occurrence.
                self.cache.insert(&key, result.clone());
                computed.insert(key, result.clone());
                (Provenance::Cache, Ok(result))
            } else {
                match workload::execute(&pending.spec, pool) {
                    Ok(result) => {
                        self.cache.insert(&key, result.clone());
                        self.store_persist(&key, &result);
                        computed.insert(key, result.clone());
                        (Provenance::Computed, Ok(result))
                    }
                    Err(e) => {
                        // Errors are never cached and never persisted: a
                        // failed spec is retried on its next submission,
                        // in this process or the next.
                        self.stats.failed += 1;
                        (Provenance::Computed, Err(e))
                    }
                }
            };
            if outcome.is_ok() {
                self.stats.completed += 1;
            }
            sink(Completion {
                session: pending.session,
                ticket: pending.ticket,
                provenance,
                outcome,
            });
        }
    }

    /// Read-through lookup in the durable tier. Counts a store hit or
    /// miss whenever a store is attached; with no store this is a no-op
    /// miss that touches no counter. A stored payload that no longer
    /// decodes as a result (codec drift, disk corruption under a running
    /// store) degrades to a miss and is recomputed.
    fn store_lookup(&mut self, key: &[u8]) -> Option<JobResult> {
        let store = self.store.as_mut()?;
        let payload = store.get(key).ok().flatten();
        let result = payload.as_deref().and_then(decode_stored_result);
        match result {
            Some(result) => {
                self.stats.store_hits += 1;
                Some(result)
            }
            None => {
                self.stats.store_misses += 1;
                None
            }
        }
    }

    /// Write-behind persistence of a computed success. Store errors are
    /// swallowed: the durable tier accelerates future runs but must
    /// never fail the present one. Only successes reach this point —
    /// errors are never persisted, mirroring the LRU's rule.
    fn store_persist(&mut self, key: &[u8], result: &JobResult) {
        let Some(store) = self.store.as_mut() else { return };
        if let Ok(payload) = result.encoded() {
            let _ = store.put(key, &payload);
        }
    }
}

/// Decodes a stored payload back to a result, requiring the payload to
/// be exactly one canonical result encoding with no trailing bytes.
fn decode_stored_result(payload: &[u8]) -> Option<JobResult> {
    let mut r = crate::wire::Reader::new(payload);
    let result = JobResult::decode(&mut r).ok()?;
    r.expect_end().ok()?;
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstime::{DataRate, Duration};

    fn bathtub(points: u32) -> JobSpec {
        JobSpec::bathtub(
            Duration::from_ps_f64(3.2),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
            points,
        )
    }

    fn bad_spec() -> JobSpec {
        // points < 2: admitted, fails at execution with a typed error.
        bathtub(1)
    }

    #[test]
    fn admission_is_all_or_nothing() {
        let mut sched = Scheduler::new(3, 4);
        assert_eq!(sched.queue_capacity(), 3);
        let specs = [bathtub(11), bathtub(12)];
        assert!(matches!(sched.submit(1, &specs), Admission::Accepted(t) if t == vec![1, 2]));
        assert_eq!(sched.queue_depth(), 2);
        // Two more would overflow: shed, queue untouched.
        assert_eq!(sched.submit(2, &specs), Admission::Shed { queue_depth: 2 });
        assert_eq!(sched.queue_depth(), 2);
        assert_eq!(sched.stats().shed, 2);
        // One more fits exactly.
        assert!(matches!(sched.submit(2, &[bathtub(13)]), Admission::Accepted(_)));
        assert_eq!(sched.queue_depth(), 3);
        assert!(matches!(sched.submit(3, &[]), Admission::Accepted(t) if t.is_empty()));
    }

    #[test]
    fn drain_round_robins_across_sessions() {
        let mut sched = Scheduler::new(16, 16);
        // Session 7 floods first; session 9 submits two.
        sched.submit(7, &[bathtub(11), bathtub(12), bathtub(13)]);
        sched.submit(9, &[bathtub(14), bathtub(15)]);
        let pool = ExecPool::serial();
        let done = sched.drain(&pool);
        let order: Vec<(u32, u64)> = done.iter().map(|c| (c.session, c.ticket)).collect();
        // Fair interleave: 7, 9, 7, 9, 7 — session 9 is not starved.
        assert_eq!(order, vec![(7, 1), (9, 4), (7, 2), (9, 5), (7, 3)]);
        assert!(done.iter().all(|c| c.outcome.is_ok()));
        assert_eq!(sched.queue_depth(), 0);
    }

    #[test]
    fn identical_specs_coalesce_within_a_drain() {
        let mut sched = Scheduler::new(16, 16);
        sched.submit(1, &[bathtub(21), bathtub(21), bathtub(21)]);
        let pool = ExecPool::serial();
        let done = sched.drain(&pool);
        let provenances: Vec<Provenance> = done.iter().map(|c| c.provenance).collect();
        assert_eq!(
            provenances,
            vec![Provenance::Computed, Provenance::Batched, Provenance::Batched]
        );
        // All three answers are byte-identical.
        let bytes: Vec<Vec<u8>> = done
            .iter()
            .map(|c| c.outcome.as_ref().ok().map(|r| r.encoded().ok()))
            .map(|b| b.flatten().unwrap_or_default())
            .collect();
        assert!(!bytes[0].is_empty());
        assert_eq!(bytes[0], bytes[1]);
        assert_eq!(bytes[0], bytes[2]);
        assert_eq!(sched.stats().batched, 2);
    }

    #[test]
    fn duplicates_of_a_cache_hit_coalesce_to_batched() {
        // Documented drain semantics: only the first occurrence in a drain
        // is Cache; repeats coalesce to Batched (and are counted as such).
        let mut sched = Scheduler::new(16, 16);
        let pool = ExecPool::serial();
        sched.submit(1, &[bathtub(51)]);
        sched.drain(&pool);
        sched.submit(1, &[bathtub(51), bathtub(51), bathtub(51)]);
        let done = sched.drain(&pool);
        let provenances: Vec<Provenance> = done.iter().map(|c| c.provenance).collect();
        assert_eq!(provenances, vec![Provenance::Cache, Provenance::Batched, Provenance::Batched]);
        let stats = sched.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.batched, 2);
    }

    #[test]
    fn cache_serves_across_drains_and_skips_errors() {
        let mut sched = Scheduler::new(16, 16);
        let pool = ExecPool::serial();
        sched.submit(1, &[bathtub(31), bad_spec()]);
        let first = sched.drain(&pool);
        assert!(first.iter().any(|c| c.outcome.is_err()));
        assert_eq!(sched.cache_len(), 1, "errors are not cached");
        // Resubmit: the good spec is a cache hit, the bad one fails again.
        sched.submit(1, &[bathtub(31), bad_spec()]);
        let second = sched.drain(&pool);
        let hit = second.iter().find(|c| c.outcome.is_ok());
        assert_eq!(hit.map(|c| c.provenance), Some(Provenance::Cache));
        let stats = sched.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.submitted, 4);
    }

    #[test]
    fn cache_hit_is_byte_identical_at_any_thread_count() {
        let serial = ExecPool::serial();
        let wide = ExecPool::new(4);
        let mut sched = Scheduler::new(16, 16);
        sched.submit(1, &[bathtub(41)]);
        let computed = sched.drain(&wide);
        sched.submit(2, &[bathtub(41)]);
        let cached = sched.drain(&serial);
        let a = computed
            .first()
            .and_then(|c| c.outcome.as_ref().ok())
            .and_then(|r| r.encoded().ok())
            .unwrap_or_default();
        let b = cached
            .first()
            .and_then(|c| c.outcome.as_ref().ok())
            .and_then(|r| r.encoded().ok())
            .unwrap_or_default();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert_eq!(cached.first().map(|c| c.provenance), Some(Provenance::Cache));
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("atd-scheduler-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_at(dir: &std::path::Path) -> Store {
        Store::open(StoreConfig::new(dir)).expect("open store")
    }

    /// Every segment file's bytes, in name order — the store's entire
    /// observable disk state.
    fn disk_state(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .expect("read store dir")
            .filter_map(|e| e.ok())
            .map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                let bytes = std::fs::read(e.path()).unwrap_or_default();
                (name, bytes)
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn store_tier_serves_an_lru_miss_without_recompute() {
        let dir = store_dir("readthrough");
        let pool = ExecPool::serial();
        // Cache bound of 1: computing a second spec evicts the first
        // from the LRU, but the store still holds it.
        let mut sched = Scheduler::new(16, 1).with_store(store_at(&dir));
        sched.submit(1, &[bathtub(61)]);
        let computed = sched.drain(&pool);
        sched.submit(1, &[bathtub(62)]);
        sched.drain(&pool);
        assert_eq!(sched.cache_len(), 1, "entry bound must have evicted bathtub(61)");
        sched.submit(1, &[bathtub(61)]);
        let replayed = sched.drain(&pool);
        assert_eq!(replayed.first().map(|c| c.provenance), Some(Provenance::Cache));
        let a = computed
            .first()
            .and_then(|c| c.outcome.as_ref().ok())
            .and_then(|r| r.encoded().ok())
            .unwrap_or_default();
        let b = replayed
            .first()
            .and_then(|c| c.outcome.as_ref().ok())
            .and_then(|r| r.encoded().ok())
            .unwrap_or_default();
        assert!(!a.is_empty());
        assert_eq!(a, b, "a store hit must be byte-identical to the computation");
        let stats = sched.stats();
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.store_misses, 2, "both first computations missed the store");
        assert_eq!(stats.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_fresh_scheduler_rehydrates_from_the_store() {
        let dir = store_dir("rehydrate");
        let pool = ExecPool::serial();
        let mut sched = Scheduler::new(16, 16).with_store(store_at(&dir));
        sched.submit(1, &[bathtub(71), bathtub(72)]);
        let computed = sched.drain(&pool);
        drop(sched);

        // A brand-new scheduler over the same directory: empty LRU, warm
        // disk. Both replays are served as Cache without recomputation.
        let mut restarted = Scheduler::new(16, 16).with_store(store_at(&dir));
        assert_eq!(restarted.stats().store_recovered, 2);
        restarted.submit(1, &[bathtub(71), bathtub(72)]);
        let replayed = restarted.drain(&pool);
        assert!(replayed.iter().all(|c| c.provenance == Provenance::Cache));
        let bytes = |cs: &[Completion]| -> Vec<Vec<u8>> {
            cs.iter()
                .map(|c| c.outcome.as_ref().ok().and_then(|r| r.encoded().ok()).unwrap_or_default())
                .collect()
        };
        assert_eq!(bytes(&computed), bytes(&replayed));
        assert_eq!(restarted.stats().store_hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_jobs_leave_the_segment_files_byte_identical() {
        // The durable mirror of "errors are never cached": a Failed
        // result must not change one byte of any segment file.
        let dir = store_dir("errskip");
        let pool = ExecPool::serial();
        let mut sched = Scheduler::new(16, 16).with_store(store_at(&dir));
        sched.submit(1, &[bathtub(81)]);
        sched.drain(&pool);
        let before = disk_state(&dir);
        assert!(!before.is_empty());

        sched.submit(1, &[bad_spec(), bad_spec()]);
        let failed = sched.drain(&pool);
        assert!(failed.iter().all(|c| c.outcome.is_err()));
        assert_eq!(
            disk_state(&dir),
            before,
            "a failed job must leave the store's disk state untouched"
        );
        // And the failure is retried, not replayed, after a restart.
        drop(sched);
        let mut restarted = Scheduler::new(16, 16).with_store(store_at(&dir));
        restarted.submit(1, &[bad_spec()]);
        let retried = restarted.drain(&pool);
        assert!(retried.iter().all(|c| c.outcome.is_err()));
        assert_eq!(restarted.stats().failed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_store_means_no_store_counters() {
        let pool = ExecPool::serial();
        let mut sched = Scheduler::new(16, 16);
        assert!(!sched.has_store());
        assert!(sched.store_stats().is_none());
        sched.submit(1, &[bathtub(91)]);
        sched.drain(&pool);
        let stats = sched.stats();
        assert_eq!(stats.store_hits, 0);
        assert_eq!(stats.store_misses, 0);
        assert_eq!(stats.store_recovered, 0);
    }

    #[test]
    fn env_defaults_apply() {
        // from_env with no overrides set in the test environment: the
        // defaults (or whatever the ambient overrides say) must be
        // positive and the scheduler usable.
        let sched = Scheduler::from_env();
        assert!(sched.queue_capacity() >= 1);
        let stats = sched.stats();
        assert!(stats.queue_capacity >= 1);
    }
}
