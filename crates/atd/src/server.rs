//! The TCP front end: a hand-rolled nonblocking readiness loop over
//! `std::net`, serving many connections concurrently with pipelined
//! THP/2 correlation IDs and streamed partial results — no third-party
//! event library, matching the workspace's zero-dependency discipline.
//!
//! Each pass of the loop accepts new connections, gives every connection
//! one bounded read (fair round-robin — no peer can monopolise a pass),
//! parses as many complete frames as the per-session pipeline-depth cap
//! admits (partial frames resume on the next pass), runs one scheduler
//! drain that routes completions straight into per-connection outboxes,
//! and flushes whatever each socket will take (partial writes resume
//! too). Liveness is policed by a logical-tick idle budget: a connection
//! that sits on a half-sent frame or an unread outbox for a whole budget
//! of passes is evicted (the slow-loris defence), while idle-but-clean
//! connections are left alone indefinitely.
//!
//! Protocol errors never take the daemon down: a malformed frame is
//! counted, answered with a typed `Failed` reply under the reserved
//! [`FAILURE_ID`], and the connection closed (framing can't be trusted
//! after a bad header). The first frame of a connection pins its
//! protocol revision via [`wire::sniff`] — THP/1 connections keep the
//! strict one-in-one-out reply order of the old blocking server, THP/2
//! connections pipeline up to the depth cap and may see responses out of
//! order, keyed by correlation id.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use crate::error::AtdError;
use crate::proto::{msg, JobResult, Provenance, Request, Response, FAILURE_ID};
use crate::scheduler::{Admission, Completion};
use crate::service::Service;
use crate::stream;
use crate::wire::{self, FrameError};

/// Environment override for the per-session pipeline-depth cap.
pub const ATD_PIPELINE_DEPTH_ENV: &str = "ATD_PIPELINE_DEPTH";

/// Environment override for the idle budget, in event-loop passes.
pub const ATD_IDLE_TICKS_ENV: &str = "ATD_IDLE_TICKS";

/// Default correlations a THP/2 session may have in flight. Deep enough
/// that a load generator's window never drains into a client-daemon
/// handoff stall on a single-core box; shallow enough that one session
/// cannot monopolise the admission queue.
pub const DEFAULT_PIPELINE_DEPTH: usize = 64;

/// Default idle budget: passes a connection may sit on a partial frame
/// or an unread outbox before eviction.
pub const DEFAULT_IDLE_BUDGET: u64 = 50_000;

/// Most bytes one connection may read per loop pass (fairness bound).
const READ_CHUNK: usize = 64 * 1024;

/// Most frames one connection may dispatch per loop pass (fairness
/// bound; pings are cheap but not free).
const MAX_FRAMES_PER_PASS: usize = 128;

/// Tuning for the event loop, env-configurable like every other knob.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Correlations one THP/2 session may have in flight; submissions
    /// beyond the cap are shed with a typed `Busy`.
    pub pipeline_depth: usize,
    /// Loop passes a stalled connection survives before eviction.
    pub idle_budget: u64,
}

impl ServerConfig {
    /// Reads `ATD_PIPELINE_DEPTH` / `ATD_IDLE_TICKS`, falling back to the
    /// defaults with the workspace's lenient parse-or-default idiom.
    pub fn from_env() -> Self {
        let depth = exec::env::positive_usize_or(ATD_PIPELINE_DEPTH_ENV, DEFAULT_PIPELINE_DEPTH);
        let budget = exec::env::positive_usize_or(
            ATD_IDLE_TICKS_ENV,
            usize::try_from(DEFAULT_IDLE_BUDGET).unwrap_or(usize::MAX),
        );
        ServerConfig {
            pipeline_depth: depth.max(1),
            idle_budget: u64::try_from(budget).unwrap_or(u64::MAX),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { pipeline_depth: DEFAULT_PIPELINE_DEPTH, idle_budget: DEFAULT_IDLE_BUDGET }
    }
}

/// Where a completed ticket's bytes must go.
#[derive(Debug)]
enum Route {
    /// One `Submit`: a monolithic v1 reply (`correlation: None`) or a
    /// v2 chunk stream plus summary.
    Single { conn: u64, correlation: Option<u64> },
    /// One member of a `SubmitBatch`; the group assembles in a
    /// [`BatchBuf`] until every ticket lands.
    Batch { group: u64 },
}

/// An in-flight batch: outcomes keyed by ticket, which is submission
/// order, so the final `BatchDone` replies in order no matter how the
/// fairness interleave executed the jobs.
#[derive(Debug)]
struct BatchBuf {
    conn: u64,
    correlation: Option<u64>,
    expected: usize,
    outcomes: BTreeMap<u64, (Provenance, Result<JobResult, String>)>,
}

/// One connection's state: buffered partial reads/writes, the pinned
/// protocol version, and in-flight accounting.
#[derive(Debug)]
struct Conn {
    id: u64,
    stream: TcpStream,
    /// Bytes read but not yet parsed into frames.
    rbuf: Vec<u8>,
    /// The outbox: frames queued but not yet (fully) written.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has reached the socket.
    wpos: usize,
    /// Protocol revision pinned by the first frame's magic.
    version: Option<u8>,
    /// Responses the scheduler still owes this connection.
    in_flight: usize,
    /// THP/2 correlation ids awaiting their terminal frame.
    active: BTreeSet<u64>,
    /// Consecutive passes without progress on this connection.
    idle_ticks: u64,
    /// Made progress this pass (resets the idle counter in `reap`).
    touched: bool,
    /// Flush the outbox, then drop cleanly.
    closing: bool,
    /// Drop now and count `connections_failed`.
    failed: bool,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.wpos >= self.wbuf.len()
    }

    fn push_frame(&mut self, frame: Result<Vec<u8>, FrameError>) {
        match frame {
            Ok(bytes) => self.wbuf.extend_from_slice(&bytes),
            // An unencodable response (an oversized rendering) is a
            // daemon-side defect; the connection cannot be re-synced, so
            // fail it rather than silently dropping a reply.
            Err(_) => self.failed = true,
        }
    }
}

struct EventLoop {
    service: Service,
    config: ServerConfig,
    conns: Vec<Conn>,
    next_conn: u64,
    routes: BTreeMap<u64, Route>,
    batches: BTreeMap<u64, BatchBuf>,
    next_group: u64,
}

/// Serves THP/1 and THP/2 on `listener` until a client requests
/// shutdown, then returns the service (so callers can inspect its final
/// counters). Configuration comes from the environment; see
/// [`serve_with`].
///
/// # Errors
///
/// [`AtdError::Io`] if the listener cannot be polled for connections.
pub fn serve(listener: &TcpListener, service: Service) -> Result<Service, AtdError> {
    serve_with(listener, service, ServerConfig::from_env())
}

/// [`serve`] with explicit tuning: the event loop described in the
/// module docs.
///
/// Per-connection failures (a peer vanishing mid-frame, a stalled
/// socket, a malformed frame) end that connection, bump the
/// `connections_failed` / `frames_rejected` counters, and the daemon
/// keeps serving; only listener-level failures are fatal.
///
/// # Errors
///
/// [`AtdError::Io`] if the listener cannot be polled for connections.
pub fn serve_with(
    listener: &TcpListener,
    service: Service,
    config: ServerConfig,
) -> Result<Service, AtdError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| AtdError::Io { op: "set listener nonblocking", message: e.to_string() })?;
    let mut el = EventLoop {
        service,
        config,
        conns: Vec::new(),
        next_conn: 1,
        routes: BTreeMap::new(),
        batches: BTreeMap::new(),
        next_group: 1,
    };
    // Two yields before sleeping: enough to hand the core to a peer that
    // is mid-burst (measured best on a 1-CPU box), without burning the
    // core in a yield storm once the connection set goes quiet.
    const YIELD_PASSES: usize = 2;
    let mut idle_passes: usize = 0;
    loop {
        let mut progress = el.accept_ready(listener)?;
        progress |= el.read_ready();
        progress |= el.parse_and_dispatch();
        progress |= el.drain_completions();
        progress |= el.flush_ready();
        el.reap();
        if el.service.shutdown_requested() && el.conns.iter().all(Conn::flushed) {
            return Ok(el.service);
        }
        if progress {
            idle_passes = 0;
        } else {
            // Nothing moved: yield the core to whoever is producing our
            // next bytes, and only fall back to a real sleep once the
            // lull looks like genuine idleness. The sleep is a poll
            // interval, not a timing source — nothing downstream
            // observes it.
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes < YIELD_PASSES {
                std::thread::yield_now();
            } else {
                // xlint::allow(event-loop-blocking, bounded 200us idle backoff that only runs after YIELD_PASSES empty polls with no readable connection)
                std::thread::sleep(core::time::Duration::from_micros(200));
            }
        }
    }
}

impl EventLoop {
    /// Accepts every connection the listener has ready.
    fn accept_ready(&mut self, listener: &TcpListener) -> Result<bool, AtdError> {
        let mut progress = false;
        while !self.service.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Per-connection socket failures degrade to a failed
                    // conn, never a dead daemon.
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        self.service.note_connection_failed();
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.service.note_connection_opened();
                    self.conns.push(Conn {
                        id,
                        stream,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        version: None,
                        in_flight: 0,
                        active: BTreeSet::new(),
                        idle_ticks: 0,
                        touched: true,
                        closing: false,
                        failed: false,
                    });
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => break,
                Err(e) => return Err(AtdError::Io { op: "accept", message: e.to_string() }),
            }
        }
        Ok(progress)
    }

    /// One bounded read per connection — the fairness unit.
    fn read_ready(&mut self) -> bool {
        let mut progress = false;
        let mut buf = [0u8; READ_CHUNK];
        for conn in &mut self.conns {
            if conn.closing || conn.failed {
                continue;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF. A peer that vanishes holding a partial frame
                    // or owed responses failed mid-exchange; one that
                    // closes between frames is done.
                    if !conn.rbuf.is_empty() {
                        self.service.note_frame_rejected();
                        conn.failed = true;
                    } else if conn.in_flight > 0 {
                        conn.failed = true;
                    } else {
                        conn.closing = true;
                    }
                    progress = true;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(buf.get(..n).unwrap_or(&[]));
                    conn.touched = true;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.failed = true;
                    progress = true;
                }
            }
        }
        progress
    }

    /// Parses complete frames out of every connection's read buffer and
    /// dispatches them. Partial frames stay buffered for the next pass;
    /// parsed bytes are trimmed once per pass (not per frame, which would
    /// be quadratic in frames-per-read).
    fn parse_and_dispatch(&mut self) -> bool {
        let mut progress = false;
        let EventLoop { service, config, conns, routes, batches, next_group, .. } = self;
        for conn in conns.iter_mut() {
            if conn.failed || conn.closing {
                continue;
            }
            let mut rpos = 0usize;
            for _ in 0..MAX_FRAMES_PER_PASS {
                // THP/1 keeps the old server's strict ordering: one
                // request in flight, replies in request order.
                if conn.version == Some(wire::VERSION) && conn.in_flight > 0 {
                    break;
                }
                let unread = conn.rbuf.get(rpos..).unwrap_or(&[]);
                match next_step(unread, conn.version) {
                    Step::Wait => break,
                    Step::Reject(e) => {
                        reject(service, conn, e);
                        break;
                    }
                    Step::Frame { version, correlation, msg_type, payload, total } => {
                        conn.version = Some(version);
                        rpos += total;
                        conn.touched = true;
                        progress = true;
                        match Request::from_parts(msg_type, &payload) {
                            Ok(request) => dispatch(
                                service,
                                config,
                                conn,
                                routes,
                                batches,
                                next_group,
                                correlation,
                                request,
                            ),
                            Err(e) => {
                                reject(service, conn, e);
                                break;
                            }
                        }
                    }
                }
            }
            if conn.closing || conn.failed {
                conn.rbuf.clear();
            } else if rpos > 0 {
                conn.rbuf.drain(..rpos.min(conn.rbuf.len()));
            }
        }
        progress
    }

    /// One scheduler drain, routing each completion into its outbox the
    /// moment it lands.
    fn drain_completions(&mut self) -> bool {
        if self.service.queue_depth() == 0 {
            return false;
        }
        let EventLoop { service, conns, routes, batches, .. } = self;
        service.drain_each(&mut |completion| {
            route_completion(conns, routes, batches, completion);
        });
        true
    }

    /// Writes whatever each socket will take; partial writes resume next
    /// pass.
    fn flush_ready(&mut self) -> bool {
        let mut progress = false;
        for conn in &mut self.conns {
            if conn.failed {
                continue;
            }
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(conn.wbuf.get(conn.wpos..).unwrap_or(&[])) {
                    Ok(0) => {
                        conn.failed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        conn.touched = true;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.failed = true;
                        break;
                    }
                }
            }
            if conn.flushed() && !conn.wbuf.is_empty() {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
        }
        progress
    }

    /// Advances idle clocks, evicts stalled connections, drops finished
    /// ones. Orphaned routes (tickets owed to a dropped connection)
    /// resolve at the next drain, where the missing connection makes the
    /// completion a no-op — nothing leaks.
    fn reap(&mut self) {
        let EventLoop { service, config, conns, .. } = self;
        conns.retain_mut(|conn| {
            if conn.touched {
                conn.idle_ticks = 0;
            } else {
                conn.idle_ticks = conn.idle_ticks.saturating_add(1);
            }
            conn.touched = false;
            // Stalled: sitting on a half-received frame or an outbox the
            // peer will not read. Idle-but-clean connections live
            // forever.
            let stalled = !conn.rbuf.is_empty() || !conn.flushed();
            if !conn.failed && stalled && conn.idle_ticks > config.idle_budget {
                conn.failed = true;
            }
            if conn.failed {
                service.note_connection_failed();
                service.note_connection_closed();
                return false;
            }
            let done = conn.closing && conn.flushed() && conn.in_flight == 0;
            if done {
                service.note_connection_closed();
            }
            !done
        });
    }
}

/// The outcome of inspecting one connection's unread bytes.
enum Step {
    /// Not a whole frame yet; wait for more bytes.
    Wait,
    /// The bytes are not a valid frame; answer and close.
    Reject(FrameError),
    /// One whole frame, version-normalised: THP/1 frames get the
    /// implicit [`FAILURE_ID`] correlation (their replies are ordered,
    /// not correlated).
    Frame { version: u8, correlation: u64, msg_type: u8, payload: Vec<u8>, total: usize },
}

/// Pure frame scanner: sniffs the revision, enforces the connection's
/// pinned version, and cuts one frame if the buffer holds one.
fn next_step(unread: &[u8], pinned: Option<u8>) -> Step {
    let (version, header_len) = match wire::sniff(unread) {
        Ok(Some(v)) => v,
        Ok(None) => return Step::Wait,
        Err(e) => return Step::Reject(e),
    };
    if let Some(p) = pinned {
        if p != version {
            // A connection may not switch revisions mid-stream.
            return Step::Reject(FrameError::UnsupportedVersion { found: version });
        }
    }
    if unread.len() < header_len {
        return Step::Wait;
    }
    let (msg_type, correlation, payload_len) = if version == wire::VERSION {
        match wire::decode_header(unread) {
            Ok((msg_type, len)) => (msg_type, FAILURE_ID, len),
            Err(e) => return Step::Reject(e),
        }
    } else {
        match wire::decode_header2(unread) {
            Ok(h) if h.flags != wire::flag::FINAL => {
                return Step::Reject(FrameError::BadPayload {
                    context: "request frames must be FINAL",
                })
            }
            Ok(h) => (h.msg_type, h.correlation, h.payload_len),
            Err(e) => return Step::Reject(e),
        }
    };
    let total = header_len.saturating_add(payload_len);
    match unread.get(header_len..total) {
        Some(payload) => {
            Step::Frame { version, correlation, msg_type, payload: payload.to_vec(), total }
        }
        None => Step::Wait,
    }
}

/// Counts a malformed frame, replies `Failed` under the reserved
/// [`FAILURE_ID`], and closes the connection after the flush — the
/// stream offset cannot be trusted after a bad frame.
fn reject(service: &mut Service, conn: &mut Conn, error: FrameError) {
    service.note_frame_rejected();
    let reply = Response::Failed { ticket: FAILURE_ID, message: error.to_string() };
    let frame = match conn.version {
        Some(wire::VERSION2) => reply.to_frame2(FAILURE_ID),
        _ => reply.to_frame(),
    };
    conn.push_frame(frame);
    conn.closing = true;
    conn.rbuf.clear();
}

/// Handles one decoded request on one connection.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    service: &mut Service,
    config: &ServerConfig,
    conn: &mut Conn,
    routes: &mut BTreeMap<u64, Route>,
    batches: &mut BTreeMap<u64, BatchBuf>,
    next_group: &mut u64,
    correlation: u64,
    request: Request,
) {
    let v2 = conn.version == Some(wire::VERSION2);
    let reply = |conn: &mut Conn, response: &Response| {
        let frame = if v2 { response.to_frame2(correlation) } else { response.to_frame() };
        conn.push_frame(frame);
    };
    match request {
        Request::Ping { token } => reply(conn, &Response::Pong { token }),
        Request::GetStats => reply(conn, &Response::StatsReport(service.stats())),
        Request::Shutdown => {
            service.request_shutdown();
            reply(conn, &Response::Goodbye);
        }
        Request::Submit { .. } | Request::SubmitBatch { .. } => {
            if v2 && (correlation == FAILURE_ID || conn.active.contains(&correlation)) {
                // A reserved or still-in-flight correlation id is a
                // protocol violation, not a schedulable request.
                reject(
                    service,
                    conn,
                    FrameError::BadPayload {
                        context: "correlation id reserved or already in flight",
                    },
                );
                return;
            }
            if v2 && conn.active.len() >= config.pipeline_depth {
                service.note_shed(jobs_in(&request));
                reply(conn, &busy(service));
                return;
            }
            let (session, specs, is_batch) = match request {
                Request::Submit { session, spec } => (session, vec![spec], false),
                Request::SubmitBatch { session, specs } => (session, specs, true),
                _ => return,
            };
            match service.admit(session, &specs) {
                Admission::Shed { .. } => reply(conn, &busy(service)),
                Admission::Accepted(tickets) if tickets.is_empty() => {
                    // An empty batch completes immediately.
                    reply(conn, &Response::BatchDone { outcomes: Vec::new() });
                }
                Admission::Accepted(tickets) => {
                    let corr = v2.then_some(correlation);
                    if !is_batch {
                        let ticket = tickets.first().copied().unwrap_or(0);
                        routes.insert(ticket, Route::Single { conn: conn.id, correlation: corr });
                    } else {
                        let group = *next_group;
                        *next_group += 1;
                        batches.insert(
                            group,
                            BatchBuf {
                                conn: conn.id,
                                correlation: corr,
                                expected: tickets.len(),
                                outcomes: BTreeMap::new(),
                            },
                        );
                        for ticket in tickets {
                            routes.insert(ticket, Route::Batch { group });
                        }
                    }
                    conn.in_flight += 1;
                    if v2 {
                        conn.active.insert(correlation);
                    }
                }
            }
        }
    }
}

fn jobs_in(request: &Request) -> u64 {
    match request {
        Request::Submit { .. } => 1,
        Request::SubmitBatch { specs, .. } => u64::try_from(specs.len()).unwrap_or(u64::MAX),
        _ => 0,
    }
}

fn busy(service: &Service) -> Response {
    Response::Busy {
        queue_depth: u32::try_from(service.queue_depth()).unwrap_or(u32::MAX),
        queue_capacity: u32::try_from(service.queue_capacity()).unwrap_or(u32::MAX),
    }
}

/// Routes one completion into its connection's outbox. A missing
/// connection (dropped mid-pipeline) makes this a counted no-op — the
/// scheduler already recorded the job, the bytes just have nowhere to
/// go.
fn route_completion(
    conns: &mut [Conn],
    routes: &mut BTreeMap<u64, Route>,
    batches: &mut BTreeMap<u64, BatchBuf>,
    completion: Completion,
) {
    let Some(route) = routes.remove(&completion.ticket) else { return };
    match route {
        Route::Single { conn: conn_id, correlation } => {
            let Some(conn) = conns.iter_mut().find(|c| c.id == conn_id && !c.failed) else {
                return;
            };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            conn.touched = true;
            match correlation {
                None => {
                    let frame = match completion.outcome {
                        Ok(result) => Response::JobDone {
                            ticket: completion.ticket,
                            provenance: completion.provenance,
                            result,
                        }
                        .to_frame(),
                        Err(e) => {
                            Response::Failed { ticket: completion.ticket, message: e.to_string() }
                                .to_frame()
                        }
                    };
                    conn.push_frame(frame);
                }
                Some(corr) => {
                    conn.active.remove(&corr);
                    match completion.outcome {
                        Ok(result) => push_stream(
                            conn,
                            corr,
                            completion.ticket,
                            completion.provenance,
                            &result,
                        ),
                        Err(e) => {
                            let frame = Response::Failed {
                                ticket: completion.ticket,
                                message: e.to_string(),
                            }
                            .to_frame2(corr);
                            conn.push_frame(frame);
                        }
                    }
                }
            }
        }
        Route::Batch { group } => {
            let complete = match batches.get_mut(&group) {
                Some(buf) => {
                    buf.outcomes.insert(
                        completion.ticket,
                        (completion.provenance, completion.outcome.map_err(|e| e.to_string())),
                    );
                    buf.outcomes.len() >= buf.expected
                }
                None => false,
            };
            if !complete {
                return;
            }
            let Some(buf) = batches.remove(&group) else { return };
            let Some(conn) = conns.iter_mut().find(|c| c.id == buf.conn && !c.failed) else {
                return;
            };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            conn.touched = true;
            let outcomes =
                buf.outcomes.into_iter().map(|(t, (p, o))| (t, p, o)).collect::<Vec<_>>();
            let response = Response::BatchDone { outcomes };
            match buf.correlation {
                None => conn.push_frame(response.to_frame()),
                Some(corr) => {
                    conn.active.remove(&corr);
                    conn.push_frame(response.to_frame2(corr));
                }
            }
        }
    }
}

/// Emits a completed result as a THP/2 chunk stream plus its terminal
/// summary: each semantic slice becomes one `CHUNK` frame the moment the
/// job lands, and the `FINAL` summary carries the count/bytes/digest the
/// client verifies reassembly against.
fn push_stream(
    conn: &mut Conn,
    corr: u64,
    ticket: u64,
    provenance: Provenance,
    result: &JobResult,
) {
    let chunks = match stream::chunk_result(result) {
        Ok(chunks) => chunks,
        Err(e) => {
            let frame = Response::Failed { ticket, message: e.to_string() }.to_frame2(corr);
            conn.push_frame(frame);
            return;
        }
    };
    let count = u32::try_from(chunks.len()).unwrap_or(u32::MAX);
    let mut total: u64 = 0;
    let mut digest = stream::StreamDigest::new();
    let mut seq: u32 = 0;
    for chunk in chunks {
        total = total.saturating_add(u64::try_from(chunk.len()).unwrap_or(u64::MAX));
        digest.absorb(&chunk);
        // Encoded straight into the outbox: a chunk frame's payload is
        // `seq` (u32 BE) followed by the raw slice, so the hot streaming
        // path skips the per-frame Response allocation round trip.
        let framed = wire::encode_frame2_into(
            &mut conn.wbuf,
            msg::CHUNK,
            wire::flag::CHUNK,
            corr,
            &[&seq.to_be_bytes(), &chunk],
        );
        if framed.is_err() {
            conn.failed = true;
            return;
        }
        seq = seq.wrapping_add(1);
    }
    let summary = Response::Summary {
        ticket,
        provenance,
        chunks: count,
        total_bytes: total,
        digest: digest.finish(),
    };
    conn.push_frame(summary.to_frame2(corr));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{JobSpec, Provenance};
    use crate::scheduler::Scheduler;
    use crate::transport::{read_frame, write_frame, Client, Submitted, TcpClient};
    use exec::ExecPool;
    use pstime::{DataRate, Duration};

    fn bathtub(points: u32) -> JobSpec {
        JobSpec::bathtub(
            Duration::from_ps_f64(3.2),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
            points,
        )
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || {
            let service = Service::new(ExecPool::serial(), Scheduler::new(8, 8));
            serve(&listener, service)
        });

        let mut client = Client::new(TcpClient::connect(addr).unwrap());
        assert_eq!(client.ping(7).unwrap(), 7);
        let done = client.submit(1, bathtub(91)).unwrap();
        assert!(matches!(done, Submitted::Done { provenance: Provenance::Computed, .. }));

        // A second connection sees the same service state (cache hit).
        drop(client);
        let mut client = Client::new(TcpClient::connect(addr).unwrap());
        let again = client.submit(2, bathtub(91)).unwrap();
        assert!(matches!(again, Submitted::Done { provenance: Provenance::Cache, .. }));
        client.shutdown().unwrap();

        let service = daemon.join().unwrap().unwrap();
        assert_eq!(service.stats().cache_hits, 1);
        assert!(service.shutdown_requested());
    }

    #[test]
    fn concurrent_connections_are_served_together() {
        // The old server held connection 2 hostage until connection 1
        // finished; the event loop must interleave them.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || {
            let service = Service::new(ExecPool::serial(), Scheduler::new(32, 8));
            serve(&listener, service)
        });

        let mut a = Client::new(TcpClient::connect(addr).unwrap());
        let mut b = Client::new(TcpClient::connect(addr).unwrap());
        // Interleave requests across both open connections.
        for round in 0..3u32 {
            assert_eq!(a.ping(u64::from(round)).unwrap(), u64::from(round));
            let done = b.submit(2, bathtub(80 + round)).unwrap();
            assert!(matches!(done, Submitted::Done { .. }));
            let done = a.submit(1, bathtub(80 + round)).unwrap();
            assert!(matches!(done, Submitted::Done { provenance: Provenance::Cache, .. }));
        }
        drop(b);
        a.shutdown().unwrap();
        let service = daemon.join().unwrap().unwrap();
        assert_eq!(service.stats().cache_hits, 3);
    }

    #[test]
    fn malformed_frame_gets_failed_reply_not_a_crash() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || {
            let service = Service::new(ExecPool::serial(), Scheduler::new(8, 8));
            serve(&listener, service)
        });

        // Hand-build a frame with a response-only type code: decodes as a
        // header but not as a request.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let bogus = crate::wire::encode_frame(crate::proto::msg::GOODBYE, &[]).unwrap();
        write_frame(&mut stream, &bogus).unwrap();
        let (ty, payload) = read_frame(&mut stream).unwrap().unwrap();
        match Response::from_parts(ty, &payload).unwrap() {
            Response::Failed { ticket, message } => {
                assert_eq!(ticket, FAILURE_ID, "protocol failures use the reserved id");
                assert!(message.contains("unknown message type"), "{message}");
            }
            other => panic!("unexpected response {other:?}"),
        }

        // The daemon is still alive: a fresh connection works, and the
        // rejected frame is visible in the counters.
        let mut client = Client::new(TcpClient::connect(addr).unwrap());
        assert_eq!(client.ping(3).unwrap(), 3);
        let stats = client.stats().unwrap();
        assert_eq!(stats.frames_rejected, 1);
        client.shutdown().unwrap();
        daemon.join().unwrap().unwrap();
    }
}
