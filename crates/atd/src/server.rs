//! The TCP front end: a thin framed loop around [`Service::handle`].
//!
//! Connections are served one at a time, requests within a connection in
//! arrival order — the service core is a deterministic state machine and
//! the server preserves that by never interleaving. A malformed frame
//! gets a typed `Failed` reply and closes the connection (framing can't
//! be trusted after a bad header); it never takes the daemon down.

use std::net::{TcpListener, TcpStream};

use crate::error::AtdError;
use crate::proto::{Request, Response};
use crate::service::Service;
use crate::transport::{read_frame, write_frame};

fn serve_connection(stream: &mut TcpStream, service: &mut Service) -> Result<(), AtdError> {
    while let Some((ty, payload)) = read_frame(stream)? {
        let response = match Request::from_parts(ty, &payload) {
            Ok(request) => service.handle(request),
            Err(e) => {
                // Report the decode failure, then drop the connection:
                // after a malformed frame the stream offset is unreliable.
                let reply = Response::Failed { ticket: 0, message: e.to_string() };
                write_frame(stream, &reply.to_frame()?)?;
                return Ok(());
            }
        };
        write_frame(stream, &response.to_frame()?)?;
        if service.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

/// Serves THP/1 on `listener` until a client requests shutdown, then
/// returns the service (so callers can inspect its final counters).
///
/// Per-connection failures (a peer disconnecting mid-frame, a write to a
/// closed socket) end that connection and the daemon keeps serving;
/// accept failures are fatal.
///
/// # Errors
///
/// [`AtdError::Io`] if accepting a connection fails.
pub fn serve(listener: &TcpListener, mut service: Service) -> Result<Service, AtdError> {
    while !service.shutdown_requested() {
        let (mut stream, _) =
            listener.accept().map_err(|e| AtdError::Io { op: "accept", message: e.to_string() })?;
        // A connection dying mid-exchange is the peer's problem, not the
        // daemon's: log-free best effort, keep listening.
        let _ = serve_connection(&mut stream, &mut service);
    }
    Ok(service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{JobSpec, Provenance};
    use crate::scheduler::Scheduler;
    use crate::transport::{Client, Submitted, TcpClient};
    use exec::ExecPool;
    use pstime::{DataRate, Duration};

    fn bathtub(points: u32) -> JobSpec {
        JobSpec::bathtub(
            Duration::from_ps_f64(3.2),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
            points,
        )
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || {
            let service = Service::new(ExecPool::serial(), Scheduler::new(8, 8));
            serve(&listener, service)
        });

        let mut client = Client::new(TcpClient::connect(addr).unwrap());
        assert_eq!(client.ping(7).unwrap(), 7);
        let done = client.submit(1, bathtub(91)).unwrap();
        assert!(matches!(done, Submitted::Done { provenance: Provenance::Computed, .. }));

        // A second connection sees the same service state (cache hit).
        drop(client);
        let mut client = Client::new(TcpClient::connect(addr).unwrap());
        let again = client.submit(2, bathtub(91)).unwrap();
        assert!(matches!(again, Submitted::Done { provenance: Provenance::Cache, .. }));
        client.shutdown().unwrap();

        let service = daemon.join().unwrap().unwrap();
        assert_eq!(service.stats().cache_hits, 1);
        assert!(service.shutdown_requested());
    }

    #[test]
    fn malformed_frame_gets_failed_reply_not_a_crash() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || {
            let service = Service::new(ExecPool::serial(), Scheduler::new(8, 8));
            serve(&listener, service)
        });

        // Hand-build a frame with a response-only type code: decodes as a
        // header but not as a request.
        let mut stream = TcpStream::connect(addr).unwrap();
        let bogus = crate::wire::encode_frame(crate::proto::msg::GOODBYE, &[]).unwrap();
        write_frame(&mut stream, &bogus).unwrap();
        let (ty, payload) = read_frame(&mut stream).unwrap().unwrap();
        match Response::from_parts(ty, &payload).unwrap() {
            Response::Failed { ticket, message } => {
                assert_eq!(ticket, 0);
                assert!(message.contains("unknown message type"), "{message}");
            }
            other => panic!("unexpected response {other:?}"),
        }

        // The daemon is still alive: a fresh connection works.
        let mut client = Client::new(TcpClient::connect(addr).unwrap());
        assert_eq!(client.ping(3).unwrap(), 3);
        client.shutdown().unwrap();
        daemon.join().unwrap().unwrap();
    }
}
