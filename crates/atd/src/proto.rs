//! THP/1 message semantics: typed requests, responses, job specifications
//! and results, with canonical byte encodings.
//!
//! Every value has exactly one encoding (fixed field order, big-endian,
//! f64 as IEEE-754 bits), which gives the service layer two properties at
//! once: golden wire vectors are stable across releases, and the
//! content-addressed result cache can key on the spec's encoded bytes.

use pstime::{DataRate, Duration};

use crate::wire::{self, FrameError, Reader, Writer};

/// Message-type codes. Requests occupy `0x01..=0x7F`, responses have the
/// high bit set.
pub mod msg {
    /// Liveness probe carrying an echo token.
    pub const PING: u8 = 0x01;
    /// Ask the service for its counters.
    pub const GET_STATS: u8 = 0x02;
    /// Submit one job.
    pub const SUBMIT: u8 = 0x03;
    /// Submit a batch of jobs under one session.
    pub const SUBMIT_BATCH: u8 = 0x04;
    /// Ask the daemon to stop serving.
    pub const SHUTDOWN: u8 = 0x05;
    /// Reply to [`PING`].
    pub const PONG: u8 = 0x81;
    /// Reply to [`GET_STATS`].
    pub const STATS_REPORT: u8 = 0x82;
    /// Successful completion of a [`SUBMIT`].
    pub const JOB_DONE: u8 = 0x83;
    /// Admission control shed the request.
    pub const BUSY: u8 = 0x84;
    /// The job was accepted but its execution failed.
    pub const FAILED: u8 = 0x85;
    /// Successful completion of a [`SUBMIT_BATCH`].
    pub const BATCH_DONE: u8 = 0x86;
    /// Reply to [`SHUTDOWN`].
    pub const GOODBYE: u8 = 0x87;
    /// One slice of a streamed THP/2 result (`CHUNK`-flagged frames).
    pub const CHUNK: u8 = 0x88;
    /// Terminal summary of a streamed THP/2 result.
    pub const SUMMARY: u8 = 0x89;
}

/// The reserved protocol-level failure correlation id (and ticket).
///
/// Admission tickets start at 1 and count up, and THP/2 clients may not
/// choose this value as a correlation id, so a `Failed` reply carrying it
/// unambiguously means "the failure happened before any job existed" — a
/// malformed frame, an unknown type code — and can never collide with a
/// real job the way the old `ticket: 0` sentinel could.
pub const FAILURE_ID: u64 = u64::MAX;

/// Admission bounds on work magnitude, enforced by [`JobSpec::validate`]
/// alongside the domain checks.
///
/// The wire format can describe jobs (4 G dies, femtosecond phase steps
/// over megahertz unit intervals, u32::MAX sweep points) that would pin
/// the daemon for hours or exhaust memory — a denial of service from one
/// well-formed frame. These ceilings are far above anything the modeled
/// instrument runs (the paper's workloads use hundreds of dies, hundreds
/// of cells, and ≤ 4 Ki-bit patterns) but finite, so a hostile-but-valid
/// spec is shed with a typed `BadPayload` instead of executed.
pub mod limits {
    /// Minimum data rate any spec may name, 1 Mb/s. Besides keeping specs
    /// in the instrument's plausible range, this caps the unit interval at
    /// 1 µs, which bounds the eye scan at 100 000 strobe steps of the
    /// 10 ps vernier.
    pub const MIN_RATE_BPS: u64 = 1_000_000;
    /// Maximum PRBS stimulus length in bits (shmoo, eye, per-die wafer
    /// test content).
    pub const MAX_BITS: u32 = 1 << 16;
    /// Maximum dies per wafer run, and maximum probe-array sites.
    pub const MAX_DIES: u32 = 16_384;
    /// Maximum (threshold × strobe-phase) cells in one shmoo grid.
    pub const MAX_SHMOO_CELLS: u64 = 1 << 14;
    /// Maximum points in a bathtub sweep.
    pub const MAX_SWEEP_POINTS: u32 = 1 << 16;
}

/// How a result was produced, reported with every completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Executed on the worker pool for this request.
    Computed,
    /// Served byte-identical from the result cache.
    Cache,
    /// Coalesced with an identical spec earlier in the same drain cycle.
    Batched,
}

impl Provenance {
    fn code(self) -> u8 {
        match self {
            Provenance::Computed => 0,
            Provenance::Cache => 1,
            Provenance::Batched => 2,
        }
    }

    fn decode(code: u8) -> Result<Self, FrameError> {
        match code {
            0 => Ok(Provenance::Computed),
            1 => Ok(Provenance::Cache),
            2 => Ok(Provenance::Batched),
            _ => Err(FrameError::BadPayload { context: "provenance code" }),
        }
    }
}

/// A job the test head can run, described entirely by exact integers and
/// IEEE-754 bit patterns: the encoded bytes are the cache key, so two
/// specs are interchangeable exactly when their encodings match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobSpec {
    /// A timing × voltage shmoo plot over a PRBS stimulus.
    Shmoo {
        /// Data rate in bits per second (nonzero).
        rate_bps: u64,
        /// PRBS pattern length in bits.
        bits: u32,
        /// Seed for the stimulus waveform's jitter draws.
        stim_seed: u64,
        /// Strobe-phase step in femtoseconds.
        phase_step_fs: i64,
        /// Threshold sweep start, millivolts.
        v_start_mv: i32,
        /// Threshold sweep end (inclusive), millivolts.
        v_end_mv: i32,
        /// Threshold step, millivolts.
        v_step_mv: i32,
        /// Master seed for the sweep's capture substreams.
        seed: u64,
    },
    /// A multi-site wafer run with seeded defect injection.
    Wafer {
        /// Dies per wafer-map row.
        columns: u32,
        /// Total dies.
        dies: u32,
        /// Parallel tester sites (nonzero).
        sites: u32,
        /// Fraction of dies with a hard defect, in `[0, 1]`.
        hard_defect_rate: f64,
        /// Fraction of dies with a marginal channel, in `[0, 1]`.
        marginal_rate: f64,
        /// Test rate in bits per second (nonzero).
        rate_bps: u64,
        /// PRBS bits per die test.
        test_bits: u32,
        /// Run seed.
        seed: u64,
    },
    /// An equivalent-time eye scan over a PRBS stimulus.
    Eye {
        /// Data rate in bits per second (nonzero).
        rate_bps: u64,
        /// PRBS pattern length in bits.
        bits: u32,
        /// Seed for the stimulus waveform's jitter draws.
        stim_seed: u64,
        /// Master seed for the per-phase capture substreams.
        seed: u64,
    },
    /// A modeled dual-Dirac bathtub sweep.
    Bathtub {
        /// RJ rms in femtoseconds (nonnegative).
        rj_rms_fs: i64,
        /// DJ peak-to-peak in femtoseconds (nonnegative).
        dj_pp_fs: i64,
        /// Data rate in bits per second (nonzero).
        rate_bps: u64,
        /// Transition density, in `(0, 1]`.
        transition_density: f64,
        /// Number of sweep points (at least 2).
        points: u32,
    },
    /// A contiguous band of threshold rows of a [`JobSpec::Shmoo`] — the
    /// shard form the farm coordinator submits. It carries the *full*
    /// sweep definition plus a row range, because every cell seeds from
    /// its global `(row, col)` substream: the head must reconstruct the
    /// whole threshold axis to seed (and render) the band exactly as a
    /// full run would.
    ShmooRows {
        /// Data rate in bits per second (nonzero).
        rate_bps: u64,
        /// PRBS pattern length in bits.
        bits: u32,
        /// Seed for the stimulus waveform's jitter draws.
        stim_seed: u64,
        /// Strobe-phase step in femtoseconds.
        phase_step_fs: i64,
        /// Threshold sweep start, millivolts.
        v_start_mv: i32,
        /// Threshold sweep end (inclusive), millivolts.
        v_end_mv: i32,
        /// Threshold step, millivolts.
        v_step_mv: i32,
        /// Master seed for the sweep's capture substreams.
        seed: u64,
        /// First threshold row of the band.
        row_start: u32,
        /// Rows in the band (nonzero).
        row_count: u32,
    },
    /// A contiguous die range of a [`JobSpec::Wafer`] — the shard form
    /// the farm coordinator submits. Die substreams key on the global die
    /// index, so the range reproduces exactly the dies a full run would
    /// have produced.
    WaferDies {
        /// Dies per wafer-map row.
        columns: u32,
        /// Total dies on the wafer (not the range).
        dies: u32,
        /// Parallel tester sites (nonzero).
        sites: u32,
        /// Fraction of dies with a hard defect, in `[0, 1]`.
        hard_defect_rate: f64,
        /// Fraction of dies with a marginal channel, in `[0, 1]`.
        marginal_rate: f64,
        /// Test rate in bits per second (nonzero).
        rate_bps: u64,
        /// PRBS bits per die test.
        test_bits: u32,
        /// Run seed.
        seed: u64,
        /// First die of the range.
        die_start: u32,
        /// Dies in the range (nonzero).
        die_count: u32,
    },
    /// A contiguous strobe-step range of a [`JobSpec::Eye`] — the shard
    /// form the farm coordinator submits. Per-point substreams key on the
    /// global step index.
    EyeRange {
        /// Data rate in bits per second (nonzero).
        rate_bps: u64,
        /// PRBS pattern length in bits.
        bits: u32,
        /// Seed for the stimulus waveform's jitter draws.
        stim_seed: u64,
        /// Master seed for the per-phase capture substreams.
        seed: u64,
        /// First strobe step of the range.
        phase_start: u32,
        /// Strobe steps in the range (nonzero).
        phase_count: u32,
    },
}

const SPEC_SHMOO: u8 = 1;
const SPEC_WAFER: u8 = 2;
const SPEC_EYE: u8 = 3;
const SPEC_BATHTUB: u8 = 4;
const SPEC_SHMOO_ROWS: u8 = 5;
const SPEC_WAFER_DIES: u8 = 6;
const SPEC_EYE_RANGE: u8 = 7;

/// The 10 ps strobe vernier step in femtoseconds — the grid the eye
/// scan's shard extent is measured on. Pinned here (rather than read off
/// a capture head) so spec validation stays allocation-free; a unit test
/// asserts it matches [`minitester::EtCapture`]'s vernier.
const EYE_STEP_FS: i64 = 10_000;

/// Threshold-row count of a shmoo sweep (ascending sweep with positive
/// step — i.e. already validated), in wide arithmetic.
fn shmoo_row_count(v_start_mv: i32, v_end_mv: i32, v_step_mv: i32) -> i64 {
    let span = i64::from(v_end_mv) - i64::from(v_start_mv);
    span / i64::from(v_step_mv) + 1
}

/// Strobe-step count of an eye scan at `rate_bps` (nonzero — i.e.
/// already validated): one unit interval on the 10 ps vernier grid,
/// matching `EyeScanJob`'s own ceiling division.
fn eye_step_count(rate_bps: u64) -> i64 {
    let ui_fs = DataRate::from_bps(rate_bps).unit_interval().as_fs();
    ((ui_fs + EYE_STEP_FS - 1) / EYE_STEP_FS).max(1)
}

impl JobSpec {
    /// A shmoo spec from the native configuration types.
    pub fn shmoo(
        rate: DataRate,
        bits: u32,
        stim_seed: u64,
        config: &minitester::ShmooConfig,
        seed: u64,
    ) -> Self {
        JobSpec::Shmoo {
            rate_bps: rate.as_bps(),
            bits,
            stim_seed,
            phase_step_fs: config.phase_step.as_fs(),
            v_start_mv: config.v_start.as_mv(),
            v_end_mv: config.v_end.as_mv(),
            v_step_mv: config.v_step.as_mv(),
            seed,
        }
    }

    /// A wafer-run spec from the native configuration, with counts clamped
    /// into u32 range (a wafer beyond 4 G dies is not a real request).
    pub fn wafer(config: &minitester::WaferRunConfig) -> Self {
        JobSpec::Wafer {
            columns: u32::try_from(config.columns).unwrap_or(u32::MAX),
            dies: u32::try_from(config.dies).unwrap_or(u32::MAX),
            sites: u32::try_from(config.sites).unwrap_or(u32::MAX),
            hard_defect_rate: config.hard_defect_rate,
            marginal_rate: config.marginal_rate,
            rate_bps: config.rate.as_bps(),
            test_bits: u32::try_from(config.test_bits).unwrap_or(u32::MAX),
            seed: config.seed,
        }
    }

    /// An eye-scan spec.
    pub fn eye(rate: DataRate, bits: u32, stim_seed: u64, seed: u64) -> Self {
        JobSpec::Eye { rate_bps: rate.as_bps(), bits, stim_seed, seed }
    }

    /// A bathtub-sweep spec from the native curve parameters.
    pub fn bathtub(
        rj_rms: Duration,
        dj_pp: Duration,
        rate: DataRate,
        transition_density: f64,
        points: u32,
    ) -> Self {
        JobSpec::Bathtub {
            rj_rms_fs: rj_rms.as_fs(),
            dj_pp_fs: dj_pp.as_fs(),
            rate_bps: rate.as_bps(),
            transition_density,
            points,
        }
    }

    /// How many independent slices this spec decomposes into: threshold
    /// rows for a shmoo, dies for a wafer, strobe steps for an eye scan.
    ///
    /// `None` for indivisible specs (bathtub), for shard variants (a
    /// slice does not slice again), and for specs that fail
    /// [`JobSpec::validate`] — so a caller holding `Some(n)` may slice
    /// `[0, n)` without further checks.
    pub fn shard_extent(&self) -> Option<u64> {
        if self.validate().is_err() {
            return None;
        }
        match *self {
            JobSpec::Shmoo { v_start_mv, v_end_mv, v_step_mv, .. } => {
                Some(shmoo_row_count(v_start_mv, v_end_mv, v_step_mv).unsigned_abs())
            }
            JobSpec::Wafer { dies, .. } => Some(u64::from(dies)),
            JobSpec::Eye { rate_bps, .. } => Some(eye_step_count(rate_bps).unsigned_abs()),
            JobSpec::Bathtub { .. }
            | JobSpec::ShmooRows { .. }
            | JobSpec::WaferDies { .. }
            | JobSpec::EyeRange { .. } => None,
        }
    }

    /// The shard sub-spec covering `[start, start + count)` of this
    /// spec's [`JobSpec::shard_extent`].
    ///
    /// `None` if the spec is indivisible or the range is empty, out of
    /// bounds, or beyond u32.
    pub fn slice(&self, start: u64, count: u64) -> Option<JobSpec> {
        let extent = self.shard_extent()?;
        if count == 0 || start.checked_add(count)? > extent {
            return None;
        }
        let (s, c) = (u32::try_from(start).ok()?, u32::try_from(count).ok()?);
        match *self {
            JobSpec::Shmoo {
                rate_bps,
                bits,
                stim_seed,
                phase_step_fs,
                v_start_mv,
                v_end_mv,
                v_step_mv,
                seed,
            } => Some(JobSpec::ShmooRows {
                rate_bps,
                bits,
                stim_seed,
                phase_step_fs,
                v_start_mv,
                v_end_mv,
                v_step_mv,
                seed,
                row_start: s,
                row_count: c,
            }),
            JobSpec::Wafer {
                columns,
                dies,
                sites,
                hard_defect_rate,
                marginal_rate,
                rate_bps,
                test_bits,
                seed,
            } => Some(JobSpec::WaferDies {
                columns,
                dies,
                sites,
                hard_defect_rate,
                marginal_rate,
                rate_bps,
                test_bits,
                seed,
                die_start: s,
                die_count: c,
            }),
            JobSpec::Eye { rate_bps, bits, stim_seed, seed } => Some(JobSpec::EyeRange {
                rate_bps,
                bits,
                stim_seed,
                seed,
                phase_start: s,
                phase_count: c,
            }),
            _ => None,
        }
    }

    /// The full spec a shard variant was sliced from; `None` for specs
    /// that are not shard variants.
    pub fn parent(&self) -> Option<JobSpec> {
        match *self {
            JobSpec::ShmooRows {
                rate_bps,
                bits,
                stim_seed,
                phase_step_fs,
                v_start_mv,
                v_end_mv,
                v_step_mv,
                seed,
                ..
            } => Some(JobSpec::Shmoo {
                rate_bps,
                bits,
                stim_seed,
                phase_step_fs,
                v_start_mv,
                v_end_mv,
                v_step_mv,
                seed,
            }),
            JobSpec::WaferDies {
                columns,
                dies,
                sites,
                hard_defect_rate,
                marginal_rate,
                rate_bps,
                test_bits,
                seed,
                ..
            } => Some(JobSpec::Wafer {
                columns,
                dies,
                sites,
                hard_defect_rate,
                marginal_rate,
                rate_bps,
                test_bits,
                seed,
            }),
            JobSpec::EyeRange { rate_bps, bits, stim_seed, seed, .. } => {
                Some(JobSpec::Eye { rate_bps, bits, stim_seed, seed })
            }
            _ => None,
        }
    }

    /// Checks every field against its domain and every derived work
    /// magnitude against [`limits`] — the gate both decoding and execution
    /// pass through, so a malformed spec becomes a typed error rather than
    /// a panic deep inside a workload constructor, and a hostile-but-
    /// well-formed spec is shed instead of pinning the daemon.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] naming the offending field.
    pub fn validate(&self) -> Result<(), FrameError> {
        let bad = |context| Err(FrameError::BadPayload { context });
        let check_rate = |rate_bps: u64| {
            if rate_bps < limits::MIN_RATE_BPS {
                bad("data rate below the 1 Mb/s service minimum")
            } else {
                Ok(())
            }
        };
        match *self {
            JobSpec::Shmoo {
                rate_bps,
                bits,
                phase_step_fs,
                v_start_mv,
                v_end_mv,
                v_step_mv,
                ..
            } => {
                check_rate(rate_bps)?;
                if bits > limits::MAX_BITS {
                    return bad("stimulus length exceeds the bits ceiling");
                }
                if phase_step_fs <= 0 {
                    return bad("phase step must be positive");
                }
                if v_step_mv <= 0 || v_end_mv < v_start_mv {
                    return bad("voltage sweep must be ascending with positive step");
                }
                // Grid size in wide arithmetic: an i32 span and an i64
                // phase count both fit i128 exactly, so a sweep spanning
                // the whole i32 range (which would overflow the native
                // `v += v_step` walk) is measured, not executed.
                let span = i64::from(v_end_mv) - i64::from(v_start_mv);
                let thresholds = span / i64::from(v_step_mv) + 1;
                let ui_fs = DataRate::from_bps(rate_bps).unit_interval().as_fs();
                let phases = (ui_fs / phase_step_fs + i64::from(ui_fs % phase_step_fs != 0)).max(1);
                let cells = i128::from(thresholds) * i128::from(phases);
                if cells > i128::from(limits::MAX_SHMOO_CELLS) {
                    return bad("shmoo grid exceeds the cell ceiling");
                }
            }
            JobSpec::Eye { rate_bps, bits, .. } => {
                check_rate(rate_bps)?;
                if bits > limits::MAX_BITS {
                    return bad("stimulus length exceeds the bits ceiling");
                }
            }
            JobSpec::Wafer {
                dies,
                sites,
                hard_defect_rate,
                marginal_rate,
                rate_bps,
                test_bits,
                ..
            } => {
                check_rate(rate_bps)?;
                if sites == 0 {
                    return bad("wafer run needs at least one site");
                }
                if dies > limits::MAX_DIES || sites > limits::MAX_DIES {
                    return bad("wafer run exceeds the die ceiling");
                }
                if test_bits > limits::MAX_BITS {
                    return bad("stimulus length exceeds the bits ceiling");
                }
                for rate in [hard_defect_rate, marginal_rate] {
                    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                        return bad("defect rates must be finite fractions in [0, 1]");
                    }
                }
            }
            JobSpec::Bathtub { rj_rms_fs, dj_pp_fs, rate_bps, transition_density, points } => {
                check_rate(rate_bps)?;
                if rj_rms_fs < 0 || dj_pp_fs < 0 {
                    return bad("jitter terms must be nonnegative");
                }
                if !(transition_density.is_finite()
                    && transition_density > 0.0
                    && transition_density <= 1.0)
                {
                    return bad("transition density must be in (0, 1]");
                }
                if points > limits::MAX_SWEEP_POINTS {
                    return bad("sweep exceeds the point ceiling");
                }
            }
            // Shard variants: the parent spec must pass in full (they
            // carry its every field), and the range must sit inside the
            // parent's shard extent. `shard_extent` returns `Some` exactly
            // when the parent validates, so a `None` here means the
            // embedded parent itself is bad.
            JobSpec::ShmooRows { row_start, row_count, .. }
            | JobSpec::WaferDies { die_start: row_start, die_count: row_count, .. }
            | JobSpec::EyeRange { phase_start: row_start, phase_count: row_count, .. } => {
                let Some(parent) = self.parent() else {
                    return bad("shard variant without a parent spec");
                };
                let Some(extent) = parent.shard_extent() else {
                    return parent.validate();
                };
                if row_count == 0 {
                    return bad("shard range must be non-empty");
                }
                if u64::from(row_start).saturating_add(u64::from(row_count)) > extent {
                    return bad("shard range overruns the parent spec's extent");
                }
            }
        }
        Ok(())
    }

    /// A short human label for logs and load reports.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Shmoo { .. } => "shmoo",
            JobSpec::Wafer { .. } => "wafer",
            JobSpec::Eye { .. } => "eye",
            JobSpec::Bathtub { .. } => "bathtub",
            JobSpec::ShmooRows { .. } => "shmoo-rows",
            JobSpec::WaferDies { .. } => "wafer-dies",
            JobSpec::EyeRange { .. } => "eye-range",
        }
    }

    /// Canonical encoding — the bytes the result cache keys on.
    pub fn encode(&self, w: &mut Writer) {
        match *self {
            JobSpec::Shmoo {
                rate_bps,
                bits,
                stim_seed,
                phase_step_fs,
                v_start_mv,
                v_end_mv,
                v_step_mv,
                seed,
            } => {
                w.u8(SPEC_SHMOO);
                w.u64(rate_bps);
                w.u32(bits);
                w.u64(stim_seed);
                w.i64(phase_step_fs);
                w.i32(v_start_mv);
                w.i32(v_end_mv);
                w.i32(v_step_mv);
                w.u64(seed);
            }
            JobSpec::Wafer {
                columns,
                dies,
                sites,
                hard_defect_rate,
                marginal_rate,
                rate_bps,
                test_bits,
                seed,
            } => {
                w.u8(SPEC_WAFER);
                w.u32(columns);
                w.u32(dies);
                w.u32(sites);
                w.f64(hard_defect_rate);
                w.f64(marginal_rate);
                w.u64(rate_bps);
                w.u32(test_bits);
                w.u64(seed);
            }
            JobSpec::Eye { rate_bps, bits, stim_seed, seed } => {
                w.u8(SPEC_EYE);
                w.u64(rate_bps);
                w.u32(bits);
                w.u64(stim_seed);
                w.u64(seed);
            }
            JobSpec::Bathtub { rj_rms_fs, dj_pp_fs, rate_bps, transition_density, points } => {
                w.u8(SPEC_BATHTUB);
                w.i64(rj_rms_fs);
                w.i64(dj_pp_fs);
                w.u64(rate_bps);
                w.f64(transition_density);
                w.u32(points);
            }
            JobSpec::ShmooRows {
                rate_bps,
                bits,
                stim_seed,
                phase_step_fs,
                v_start_mv,
                v_end_mv,
                v_step_mv,
                seed,
                row_start,
                row_count,
            } => {
                w.u8(SPEC_SHMOO_ROWS);
                w.u64(rate_bps);
                w.u32(bits);
                w.u64(stim_seed);
                w.i64(phase_step_fs);
                w.i32(v_start_mv);
                w.i32(v_end_mv);
                w.i32(v_step_mv);
                w.u64(seed);
                w.u32(row_start);
                w.u32(row_count);
            }
            JobSpec::WaferDies {
                columns,
                dies,
                sites,
                hard_defect_rate,
                marginal_rate,
                rate_bps,
                test_bits,
                seed,
                die_start,
                die_count,
            } => {
                w.u8(SPEC_WAFER_DIES);
                w.u32(columns);
                w.u32(dies);
                w.u32(sites);
                w.f64(hard_defect_rate);
                w.f64(marginal_rate);
                w.u64(rate_bps);
                w.u32(test_bits);
                w.u64(seed);
                w.u32(die_start);
                w.u32(die_count);
            }
            JobSpec::EyeRange { rate_bps, bits, stim_seed, seed, phase_start, phase_count } => {
                w.u8(SPEC_EYE_RANGE);
                w.u64(rate_bps);
                w.u32(bits);
                w.u64(stim_seed);
                w.u64(seed);
                w.u32(phase_start);
                w.u32(phase_count);
            }
        }
    }

    /// The spec's canonical bytes on their own — the cache-key material.
    pub fn key_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes and validates one spec.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on truncation, an unknown spec tag, or an
    /// out-of-domain field.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let spec = match r.u8()? {
            SPEC_SHMOO => JobSpec::Shmoo {
                rate_bps: r.u64()?,
                bits: r.u32()?,
                stim_seed: r.u64()?,
                phase_step_fs: r.i64()?,
                v_start_mv: r.i32()?,
                v_end_mv: r.i32()?,
                v_step_mv: r.i32()?,
                seed: r.u64()?,
            },
            SPEC_WAFER => JobSpec::Wafer {
                columns: r.u32()?,
                dies: r.u32()?,
                sites: r.u32()?,
                hard_defect_rate: r.f64()?,
                marginal_rate: r.f64()?,
                rate_bps: r.u64()?,
                test_bits: r.u32()?,
                seed: r.u64()?,
            },
            SPEC_EYE => JobSpec::Eye {
                rate_bps: r.u64()?,
                bits: r.u32()?,
                stim_seed: r.u64()?,
                seed: r.u64()?,
            },
            SPEC_BATHTUB => JobSpec::Bathtub {
                rj_rms_fs: r.i64()?,
                dj_pp_fs: r.i64()?,
                rate_bps: r.u64()?,
                transition_density: r.f64()?,
                points: r.u32()?,
            },
            SPEC_SHMOO_ROWS => JobSpec::ShmooRows {
                rate_bps: r.u64()?,
                bits: r.u32()?,
                stim_seed: r.u64()?,
                phase_step_fs: r.i64()?,
                v_start_mv: r.i32()?,
                v_end_mv: r.i32()?,
                v_step_mv: r.i32()?,
                seed: r.u64()?,
                row_start: r.u32()?,
                row_count: r.u32()?,
            },
            SPEC_WAFER_DIES => JobSpec::WaferDies {
                columns: r.u32()?,
                dies: r.u32()?,
                sites: r.u32()?,
                hard_defect_rate: r.f64()?,
                marginal_rate: r.f64()?,
                rate_bps: r.u64()?,
                test_bits: r.u32()?,
                seed: r.u64()?,
                die_start: r.u32()?,
                die_count: r.u32()?,
            },
            SPEC_EYE_RANGE => JobSpec::EyeRange {
                rate_bps: r.u64()?,
                bits: r.u32()?,
                stim_seed: r.u64()?,
                seed: r.u64()?,
                phase_start: r.u32()?,
                phase_count: r.u32()?,
            },
            _ => return Err(FrameError::BadPayload { context: "job spec tag" }),
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// One die's record inside a wafer result (wire mirror of
/// [`minitester::DieRecord`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireDieRecord {
    /// Die index on the wafer map.
    pub die: u32,
    /// Bin code: 0 good, 1 BIST fail, 2 margin fail.
    pub bin: u8,
    /// BIST error count.
    pub bist_errors: u32,
    /// Loopback eye opening in UI, when the margin test ran.
    pub eye_ui: Option<f64>,
}

/// A completed job's payload: the full structured outcome plus the
/// workload's rendered text, so clients can assert byte identity against a
/// local run without re-deriving the rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// Outcome of a [`JobSpec::Shmoo`].
    Shmoo {
        /// Threshold rows, millivolts, ascending.
        thresholds_mv: Vec<i32>,
        /// Strobe-phase columns, femtoseconds.
        phases_fs: Vec<i64>,
        /// Row-major pass map.
        pass: Vec<bool>,
        /// The plot's `Display` rendering.
        rendered: String,
    },
    /// Outcome of a [`JobSpec::Wafer`].
    Wafer {
        /// Per-die records in die order.
        records: Vec<WireDieRecord>,
        /// Touchdowns the probe array needed.
        touchdowns: u32,
        /// Hard defects the simulation injected.
        injected_hard: u32,
        /// Marginal channels the simulation injected.
        injected_marginal: u32,
        /// The wafer map's `Display` rendering.
        rendered: String,
    },
    /// Outcome of a [`JobSpec::Eye`].
    Eye {
        /// `(phase fs, compared, errors)` per strobe point.
        points: Vec<(i64, u32, u32)>,
        /// The strobe step in femtoseconds.
        step_fs: i64,
        /// The scan's `Display` rendering.
        rendered: String,
    },
    /// Outcome of a [`JobSpec::Bathtub`].
    Bathtub {
        /// `(phase UI, BER)` pairs.
        pairs: Vec<(f64, f64)>,
        /// A short textual summary.
        rendered: String,
    },
}

const RESULT_SHMOO: u8 = 1;
const RESULT_WAFER: u8 = 2;
const RESULT_EYE: u8 = 3;
const RESULT_BATHTUB: u8 = 4;

fn to_u32(n: usize, context: &'static str) -> Result<u32, FrameError> {
    u32::try_from(n).map_err(|_| FrameError::BadPayload { context })
}

impl JobResult {
    /// Builds the wire result from a native shmoo plot.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] if a dimension exceeds u32 (not reachable
    /// from any accepted spec).
    pub fn from_shmoo(plot: &minitester::ShmooPlot) -> Result<Self, FrameError> {
        let thresholds_mv: Vec<i32> = plot.thresholds().iter().map(|v| v.as_mv()).collect();
        let phases_fs: Vec<i64> = plot.phases().iter().map(|p| p.as_fs()).collect();
        let mut pass = Vec::with_capacity(thresholds_mv.len() * phases_fs.len());
        for row in 0..plot.thresholds().len() {
            for col in 0..plot.phases().len() {
                pass.push(plot.passed(row, col));
            }
        }
        Ok(JobResult::Shmoo { thresholds_mv, phases_fs, pass, rendered: plot.to_string() })
    }

    /// Builds the wire result from a native wafer report.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] if a count exceeds u32.
    pub fn from_wafer(report: &minitester::WaferReport) -> Result<Self, FrameError> {
        let mut records = Vec::with_capacity(report.records().len());
        for rec in report.records() {
            let bin = match rec.bin {
                minitester::Bin::Good => 0,
                minitester::Bin::FailBist => 1,
                minitester::Bin::FailMargin => 2,
            };
            records.push(WireDieRecord {
                die: to_u32(rec.die, "die index")?,
                bin,
                bist_errors: to_u32(rec.bist_errors, "bist error count")?,
                eye_ui: rec.eye_ui,
            });
        }
        let (hard, marginal) = report.injected_defects();
        Ok(JobResult::Wafer {
            records,
            touchdowns: to_u32(report.touchdowns(), "touchdown count")?,
            injected_hard: to_u32(hard, "injected hard count")?,
            injected_marginal: to_u32(marginal, "injected marginal count")?,
            rendered: report.to_string(),
        })
    }

    /// Builds the wire result from a native eye scan.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] if a count exceeds u32.
    pub fn from_eye(scan: &minitester::EyeScan) -> Result<Self, FrameError> {
        let mut points = Vec::with_capacity(scan.points().len());
        for p in scan.points() {
            points.push((
                p.phase.as_fs(),
                to_u32(p.compared, "compared count")?,
                to_u32(p.errors, "error count")?,
            ));
        }
        Ok(JobResult::Eye { points, step_fs: scan.step().as_fs(), rendered: scan.to_string() })
    }

    /// Builds the wire result from a native bathtub sweep.
    pub fn from_bathtub(pairs: Vec<(f64, f64)>) -> Self {
        let rendered = format!("bathtub sweep: {} points", pairs.len());
        JobResult::Bathtub { pairs, rendered }
    }

    /// The workload's rendered text (shmoo map, wafer map, eye tub, or
    /// sweep summary).
    pub fn rendered(&self) -> &str {
        match self {
            JobResult::Shmoo { rendered, .. }
            | JobResult::Wafer { rendered, .. }
            | JobResult::Eye { rendered, .. }
            | JobResult::Bathtub { rendered, .. } => rendered,
        }
    }

    /// Canonical encoding.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if a sequence length exceeds u32.
    pub fn encode(&self, w: &mut Writer) -> Result<(), FrameError> {
        match self {
            JobResult::Shmoo { thresholds_mv, phases_fs, pass, rendered } => {
                w.u8(RESULT_SHMOO);
                w.count(thresholds_mv.len())?;
                for v in thresholds_mv {
                    w.i32(*v);
                }
                w.count(phases_fs.len())?;
                for p in phases_fs {
                    w.i64(*p);
                }
                w.count(pass.len())?;
                for b in pass {
                    w.bool(*b);
                }
                w.str(rendered)?;
            }
            JobResult::Wafer {
                records,
                touchdowns,
                injected_hard,
                injected_marginal,
                rendered,
            } => {
                w.u8(RESULT_WAFER);
                w.count(records.len())?;
                for rec in records {
                    w.u32(rec.die);
                    w.u8(rec.bin);
                    w.u32(rec.bist_errors);
                    match rec.eye_ui {
                        Some(ui) => {
                            w.bool(true);
                            w.f64(ui);
                        }
                        None => w.bool(false),
                    }
                }
                w.u32(*touchdowns);
                w.u32(*injected_hard);
                w.u32(*injected_marginal);
                w.str(rendered)?;
            }
            JobResult::Eye { points, step_fs, rendered } => {
                w.u8(RESULT_EYE);
                w.count(points.len())?;
                for (phase, compared, errors) in points {
                    w.i64(*phase);
                    w.u32(*compared);
                    w.u32(*errors);
                }
                w.i64(*step_fs);
                w.str(rendered)?;
            }
            JobResult::Bathtub { pairs, rendered } => {
                w.u8(RESULT_BATHTUB);
                w.count(pairs.len())?;
                for (phase, ber) in pairs {
                    w.f64(*phase);
                    w.f64(*ber);
                }
                w.str(rendered)?;
            }
        }
        Ok(())
    }

    /// The result's canonical bytes — what cache-identity assertions
    /// compare.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if a sequence length exceeds u32.
    pub fn encoded(&self) -> Result<Vec<u8>, FrameError> {
        let mut w = Writer::new();
        self.encode(&mut w)?;
        Ok(w.finish())
    }

    /// Decodes one result.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on truncation or an unknown result tag.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        match r.u8()? {
            RESULT_SHMOO => {
                let n = r.count(4)?;
                let mut thresholds_mv = Vec::with_capacity(n);
                for _ in 0..n {
                    thresholds_mv.push(r.i32()?);
                }
                let n = r.count(8)?;
                let mut phases_fs = Vec::with_capacity(n);
                for _ in 0..n {
                    phases_fs.push(r.i64()?);
                }
                let n = r.count(1)?;
                let mut pass = Vec::with_capacity(n);
                for _ in 0..n {
                    pass.push(r.bool()?);
                }
                Ok(JobResult::Shmoo { thresholds_mv, phases_fs, pass, rendered: r.str()? })
            }
            RESULT_WAFER => {
                let n = r.count(10)?;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let die = r.u32()?;
                    let bin = r.u8()?;
                    if bin > 2 {
                        return Err(FrameError::BadPayload { context: "bin code" });
                    }
                    let bist_errors = r.u32()?;
                    let eye_ui = if r.bool()? { Some(r.f64()?) } else { None };
                    records.push(WireDieRecord { die, bin, bist_errors, eye_ui });
                }
                Ok(JobResult::Wafer {
                    records,
                    touchdowns: r.u32()?,
                    injected_hard: r.u32()?,
                    injected_marginal: r.u32()?,
                    rendered: r.str()?,
                })
            }
            RESULT_EYE => {
                let n = r.count(16)?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push((r.i64()?, r.u32()?, r.u32()?));
                }
                Ok(JobResult::Eye { points, step_fs: r.i64()?, rendered: r.str()? })
            }
            RESULT_BATHTUB => {
                let n = r.count(16)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((r.f64()?, r.f64()?));
                }
                Ok(JobResult::Bathtub { pairs, rendered: r.str()? })
            }
            _ => Err(FrameError::BadPayload { context: "job result tag" }),
        }
    }
}

/// The service's cumulative counters, reported by
/// [`Response::StatsReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs answered from the result cache.
    pub cache_hits: u64,
    /// Jobs coalesced with an identical spec in the same drain.
    pub batched: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
    /// Jobs whose execution failed.
    pub failed: u64,
    /// Connections the daemon has accepted.
    pub connections_opened: u64,
    /// Connections retired for any reason — clean peer close, shutdown,
    /// or a failed drop. `connections_opened - connections_closed` is
    /// the live connection count, so the two balance once every peer is
    /// gone.
    pub connections_closed: u64,
    /// Connections the daemon dropped on an error: an I/O failure, a
    /// peer vanishing mid-frame or mid-pipeline, or a slow-loris
    /// eviction.
    pub connections_failed: u64,
    /// Frames the daemon rejected as malformed (bad magic, unknown type,
    /// undecodable payload, truncated-then-closed).
    pub frames_rejected: u64,
    /// Jobs answered from the persistent store (an LRU miss served off
    /// disk instead of recomputed). Zero when no store is attached.
    pub store_hits: u64,
    /// LRU misses the persistent store also missed on, forcing a
    /// recompute. Zero when no store is attached.
    pub store_misses: u64,
    /// Records the persistent store recovered from disk when it opened —
    /// the warm set a restarted head rehydrates from.
    pub store_recovered: u64,
    /// Configured queue capacity.
    pub queue_capacity: u32,
    /// Configured cache capacity in entries.
    pub cache_capacity: u32,
}

impl ServiceStats {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.submitted);
        w.u64(self.completed);
        w.u64(self.cache_hits);
        w.u64(self.batched);
        w.u64(self.shed);
        w.u64(self.failed);
        w.u64(self.connections_opened);
        w.u64(self.connections_closed);
        w.u64(self.connections_failed);
        w.u64(self.frames_rejected);
        w.u64(self.store_hits);
        w.u64(self.store_misses);
        w.u64(self.store_recovered);
        w.u32(self.queue_capacity);
        w.u32(self.cache_capacity);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(ServiceStats {
            submitted: r.u64()?,
            completed: r.u64()?,
            cache_hits: r.u64()?,
            batched: r.u64()?,
            shed: r.u64()?,
            failed: r.u64()?,
            connections_opened: r.u64()?,
            connections_closed: r.u64()?,
            connections_failed: r.u64()?,
            frames_rejected: r.u64()?,
            store_hits: r.u64()?,
            store_misses: r.u64()?,
            store_recovered: r.u64()?,
            queue_capacity: r.u32()?,
            cache_capacity: r.u32()?,
        })
    }
}

/// A client-to-service message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; the token comes back in the [`Response::Pong`].
    Ping {
        /// Echo token.
        token: u64,
    },
    /// Ask for the service counters.
    GetStats,
    /// Submit one job under a session.
    Submit {
        /// Session the job belongs to (fairness unit).
        session: u32,
        /// The job.
        spec: JobSpec,
    },
    /// Submit several jobs under one session; answered with one
    /// [`Response::BatchDone`] in submission order.
    SubmitBatch {
        /// Session the jobs belong to.
        session: u32,
        /// The jobs, in order.
        specs: Vec<JobSpec>,
    },
    /// Ask the daemon to stop serving after replying.
    Shutdown,
}

impl Request {
    fn parts(&self) -> Result<(u8, Vec<u8>), FrameError> {
        let mut w = Writer::new();
        let ty = match self {
            Request::Ping { token } => {
                w.u64(*token);
                msg::PING
            }
            Request::GetStats => msg::GET_STATS,
            Request::Submit { session, spec } => {
                w.u32(*session);
                spec.encode(&mut w);
                msg::SUBMIT
            }
            Request::SubmitBatch { session, specs } => {
                w.u32(*session);
                w.count(specs.len())?;
                for spec in specs {
                    spec.encode(&mut w);
                }
                msg::SUBMIT_BATCH
            }
            Request::Shutdown => msg::SHUTDOWN,
        };
        Ok((ty, w.finish()))
    }

    /// Encodes the request as one THP/1 frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if the payload exceeds the frame ceiling.
    pub fn to_frame(&self) -> Result<Vec<u8>, FrameError> {
        let (ty, payload) = self.parts()?;
        wire::encode_frame(ty, &payload)
    }

    /// Encodes the request as one THP/2 frame under `correlation`. The
    /// payload grammar is identical to THP/1 — only the envelope differs
    /// — and every request frame is `FINAL` (requests never stream).
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if the payload exceeds the frame
    /// ceiling, [`FrameError::BadPayload`] if `correlation` is the
    /// reserved [`FAILURE_ID`].
    pub fn to_frame2(&self, correlation: u64) -> Result<Vec<u8>, FrameError> {
        if correlation == FAILURE_ID {
            return Err(FrameError::BadPayload {
                context: "correlation id collides with the reserved failure id",
            });
        }
        let (ty, payload) = self.parts()?;
        wire::encode_frame2(ty, wire::flag::FINAL, correlation, &payload)
    }

    /// Decodes one full frame into a request.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; response-type codes arriving here are
    /// [`FrameError::UnknownType`].
    pub fn from_frame(frame: &[u8]) -> Result<Self, FrameError> {
        let (ty, payload) = wire::decode_frame(frame)?;
        Request::from_parts(ty, payload)
    }

    /// Decodes a request from an already-split `(type, payload)` pair —
    /// the entry point for streaming transports.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`].
    pub fn from_parts(ty: u8, payload: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(payload);
        let req = match ty {
            msg::PING => Request::Ping { token: r.u64()? },
            msg::GET_STATS => Request::GetStats,
            msg::SUBMIT => Request::Submit { session: r.u32()?, spec: JobSpec::decode(&mut r)? },
            msg::SUBMIT_BATCH => {
                let session = r.u32()?;
                let n = r.count(1)?;
                let mut specs = Vec::with_capacity(n);
                for _ in 0..n {
                    specs.push(JobSpec::decode(&mut r)?);
                }
                Request::SubmitBatch { session, specs }
            }
            msg::SHUTDOWN => Request::Shutdown,
            code => return Err(FrameError::UnknownType { code }),
        };
        r.expect_end()?;
        Ok(req)
    }
}

/// A service-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Echo of a [`Request::Ping`].
    Pong {
        /// The probe's token, returned verbatim.
        token: u64,
    },
    /// The service counters.
    StatsReport(ServiceStats),
    /// A submitted job completed.
    JobDone {
        /// The job's admission ticket.
        ticket: u64,
        /// How the result was produced.
        provenance: Provenance,
        /// The outcome.
        result: JobResult,
    },
    /// Admission control shed the submission; nothing was enqueued.
    Busy {
        /// Jobs currently queued.
        queue_depth: u32,
        /// The queue's capacity.
        queue_capacity: u32,
    },
    /// The job was accepted but failed during execution.
    Failed {
        /// The job's admission ticket.
        ticket: u64,
        /// The failure, rendered.
        message: String,
    },
    /// A batch completed; one entry per spec, in submission order.
    BatchDone {
        /// `(ticket, provenance, outcome)` per job; `Err` carries the
        /// failure text.
        outcomes: Vec<(u64, Provenance, Result<JobResult, String>)>,
    },
    /// The daemon acknowledges shutdown.
    Goodbye,
    /// One slice of a streamed THP/2 result: a contiguous byte range of
    /// the result's canonical encoding. Concatenating a correlation's
    /// chunks in `seq` order reproduces the monolithic
    /// [`JobResult::encoded`] bytes exactly.
    Chunk {
        /// Zero-based position of this slice in the stream.
        seq: u32,
        /// The slice's bytes.
        bytes: Vec<u8>,
    },
    /// Terminal frame of a streamed THP/2 result; carries everything a
    /// client needs to verify the reassembly before decoding it.
    Summary {
        /// The job's admission ticket.
        ticket: u64,
        /// How the result was produced.
        provenance: Provenance,
        /// How many chunks the stream held.
        chunks: u32,
        /// Total bytes across all chunks.
        total_bytes: u64,
        /// [`crate::stream::StreamDigest`] of the concatenated chunk bytes.
        digest: u64,
    },
}

impl Response {
    fn parts(&self) -> Result<(u8, Vec<u8>), FrameError> {
        let mut w = Writer::new();
        let ty = match self {
            Response::Pong { token } => {
                w.u64(*token);
                msg::PONG
            }
            Response::StatsReport(stats) => {
                stats.encode(&mut w);
                msg::STATS_REPORT
            }
            Response::JobDone { ticket, provenance, result } => {
                w.u64(*ticket);
                w.u8(provenance.code());
                result.encode(&mut w)?;
                msg::JOB_DONE
            }
            Response::Busy { queue_depth, queue_capacity } => {
                w.u32(*queue_depth);
                w.u32(*queue_capacity);
                msg::BUSY
            }
            Response::Failed { ticket, message } => {
                w.u64(*ticket);
                w.str(message)?;
                msg::FAILED
            }
            Response::BatchDone { outcomes } => {
                w.count(outcomes.len())?;
                for (ticket, provenance, outcome) in outcomes {
                    w.u64(*ticket);
                    w.u8(provenance.code());
                    match outcome {
                        Ok(result) => {
                            w.bool(true);
                            result.encode(&mut w)?;
                        }
                        Err(message) => {
                            w.bool(false);
                            w.str(message)?;
                        }
                    }
                }
                msg::BATCH_DONE
            }
            Response::Goodbye => msg::GOODBYE,
            Response::Chunk { seq, bytes } => {
                w.u32(*seq);
                w.bytes(bytes);
                msg::CHUNK
            }
            Response::Summary { ticket, provenance, chunks, total_bytes, digest } => {
                w.u64(*ticket);
                w.u8(provenance.code());
                w.u32(*chunks);
                w.u64(*total_bytes);
                w.u64(*digest);
                msg::SUMMARY
            }
        };
        Ok((ty, w.finish()))
    }

    /// Encodes the response as one THP/1 frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if the payload exceeds the frame
    /// ceiling, [`FrameError::UnknownType`] for the THP/2-only streaming
    /// variants (`Chunk` / `Summary`), which THP/1 cannot carry.
    pub fn to_frame(&self) -> Result<Vec<u8>, FrameError> {
        if matches!(self, Response::Chunk { .. } | Response::Summary { .. }) {
            return Err(FrameError::UnknownType { code: self.code() });
        }
        let (ty, payload) = self.parts()?;
        wire::encode_frame(ty, &payload)
    }

    /// Encodes the response as one THP/2 frame under `correlation`.
    /// `Chunk` responses get the `CHUNK` flag; everything else is
    /// `FINAL`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if the payload exceeds the frame ceiling.
    pub fn to_frame2(&self, correlation: u64) -> Result<Vec<u8>, FrameError> {
        let flags = if matches!(self, Response::Chunk { .. }) {
            wire::flag::CHUNK
        } else {
            wire::flag::FINAL
        };
        let (ty, payload) = self.parts()?;
        wire::encode_frame2(ty, flags, correlation, &payload)
    }

    /// The message-type code this response travels under.
    pub fn code(&self) -> u8 {
        match self {
            Response::Pong { .. } => msg::PONG,
            Response::StatsReport(_) => msg::STATS_REPORT,
            Response::JobDone { .. } => msg::JOB_DONE,
            Response::Busy { .. } => msg::BUSY,
            Response::Failed { .. } => msg::FAILED,
            Response::BatchDone { .. } => msg::BATCH_DONE,
            Response::Goodbye => msg::GOODBYE,
            Response::Chunk { .. } => msg::CHUNK,
            Response::Summary { .. } => msg::SUMMARY,
        }
    }

    /// Decodes one full frame into a response.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; request-type codes arriving here are
    /// [`FrameError::UnknownType`].
    pub fn from_frame(frame: &[u8]) -> Result<Self, FrameError> {
        let (ty, payload) = wire::decode_frame(frame)?;
        Response::from_parts(ty, payload)
    }

    /// Decodes a response from an already-split `(type, payload)` pair.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`].
    pub fn from_parts(ty: u8, payload: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(payload);
        let resp = match ty {
            msg::PONG => Response::Pong { token: r.u64()? },
            msg::STATS_REPORT => Response::StatsReport(ServiceStats::decode(&mut r)?),
            msg::JOB_DONE => Response::JobDone {
                ticket: r.u64()?,
                provenance: Provenance::decode(r.u8()?)?,
                result: JobResult::decode(&mut r)?,
            },
            msg::BUSY => Response::Busy { queue_depth: r.u32()?, queue_capacity: r.u32()? },
            msg::FAILED => Response::Failed { ticket: r.u64()?, message: r.str()? },
            msg::BATCH_DONE => {
                let n = r.count(10)?;
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    let ticket = r.u64()?;
                    let provenance = Provenance::decode(r.u8()?)?;
                    let outcome =
                        if r.bool()? { Ok(JobResult::decode(&mut r)?) } else { Err(r.str()?) };
                    outcomes.push((ticket, provenance, outcome));
                }
                Response::BatchDone { outcomes }
            }
            msg::GOODBYE => Response::Goodbye,
            msg::CHUNK => Response::Chunk { seq: r.u32()?, bytes: r.take_rest().to_vec() },
            msg::SUMMARY => Response::Summary {
                ticket: r.u64()?,
                provenance: Provenance::decode(r.u8()?)?,
                chunks: r.u32()?,
                total_bytes: r.u64()?,
                digest: r.u64()?,
            },
            code => return Err(FrameError::UnknownType { code }),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_specs() -> Vec<JobSpec> {
        vec![
            JobSpec::shmoo(DataRate::from_gbps(2.5), 256, 17, &minitester::ShmooConfig::pecl(), 5),
            JobSpec::wafer(&minitester::WaferRunConfig::default()),
            JobSpec::eye(DataRate::from_gbps(2.5), 512, 21, 9),
            JobSpec::bathtub(
                Duration::from_ps_f64(3.2),
                Duration::from_ps(20),
                DataRate::from_gbps(2.5),
                0.5,
                101,
            ),
        ]
    }

    #[test]
    fn specs_round_trip() {
        for spec in sample_specs() {
            let bytes = spec.key_bytes();
            let mut r = Reader::new(&bytes);
            let back = JobSpec::decode(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, spec);
            assert!(!spec.kind().is_empty());
        }
    }

    #[test]
    fn shard_specs_round_trip() {
        for spec in sample_specs() {
            let Some(extent) = spec.shard_extent() else {
                assert_eq!(spec.kind(), "bathtub");
                assert!(spec.slice(0, 1).is_none());
                continue;
            };
            assert!(extent >= 1, "{spec:?}");
            for (start, count) in [(0, extent), (0, 1), (extent - 1, 1), (extent / 2, 1)] {
                let sub = spec.slice(start, count).expect("in-range slice");
                assert!(sub.validate().is_ok(), "{sub:?}");
                assert_eq!(sub.parent(), Some(spec), "{sub:?}");
                assert!(sub.shard_extent().is_none(), "a slice does not slice again");
                let bytes = sub.key_bytes();
                let mut r = Reader::new(&bytes);
                assert_eq!(JobSpec::decode(&mut r).unwrap(), sub);
                r.expect_end().unwrap();
                assert!(!sub.kind().is_empty());
            }
            // The range grammar: empty, overrunning, and overflowing
            // slices do not exist.
            assert!(spec.slice(0, 0).is_none());
            assert!(spec.slice(extent, 1).is_none());
            assert!(spec.slice(0, extent + 1).is_none());
            assert!(spec.slice(u64::MAX, 2).is_none());
        }
    }

    #[test]
    fn out_of_range_shard_specs_rejected_on_decode() {
        let specs = [
            JobSpec::ShmooRows {
                rate_bps: GBPS,
                bits: 256,
                stim_seed: 17,
                phase_step_fs: 10_000_000,
                v_start_mv: -1650,
                v_end_mv: -950,
                v_step_mv: 50,
                seed: 5,
                row_start: 14,
                row_count: 2, // 15-row sweep: overruns by one
            },
            JobSpec::WaferDies {
                columns: 8,
                dies: 64,
                sites: 16,
                hard_defect_rate: 0.06,
                marginal_rate: 0.08,
                rate_bps: GBPS,
                test_bits: 512,
                seed: 1,
                die_start: 0,
                die_count: 0, // empty range
            },
            JobSpec::EyeRange {
                rate_bps: GBPS,
                bits: 512,
                stim_seed: 21,
                seed: 9,
                phase_start: 40, // 40-step scan: starts past the end
                phase_count: 1,
            },
            JobSpec::EyeRange {
                // Bad parent (zero rate) embedded in a shard variant.
                rate_bps: 0,
                bits: 512,
                stim_seed: 21,
                seed: 9,
                phase_start: 0,
                phase_count: 1,
            },
        ];
        for spec in specs {
            assert!(spec.validate().is_err(), "{spec:?}");
            let bytes = spec.key_bytes();
            let mut r = Reader::new(&bytes);
            assert!(JobSpec::decode(&mut r).is_err(), "{spec:?}");
        }
    }

    #[test]
    fn eye_step_constant_matches_the_vernier() {
        let capture = minitester::EtCapture::new();
        assert_eq!(capture.vernier().step().as_fs(), EYE_STEP_FS);
    }

    const GBPS: u64 = 2_500_000_000;

    fn pecl_shmoo() -> JobSpec {
        JobSpec::shmoo(DataRate::from_gbps(2.5), 256, 17, &minitester::ShmooConfig::pecl(), 5)
    }

    #[test]
    fn invalid_specs_rejected() {
        let cases = [
            JobSpec::Shmoo {
                rate_bps: 0,
                bits: 1,
                stim_seed: 0,
                phase_step_fs: 1,
                v_start_mv: 0,
                v_end_mv: 0,
                v_step_mv: 1,
                seed: 0,
            },
            JobSpec::Wafer {
                columns: 1,
                dies: 1,
                sites: 0,
                hard_defect_rate: 0.0,
                marginal_rate: 0.0,
                rate_bps: GBPS,
                test_bits: 1,
                seed: 0,
            },
            JobSpec::Wafer {
                columns: 1,
                dies: 1,
                sites: 1,
                hard_defect_rate: f64::NAN,
                marginal_rate: 0.0,
                rate_bps: GBPS,
                test_bits: 1,
                seed: 0,
            },
            JobSpec::Eye { rate_bps: 0, bits: 1, stim_seed: 0, seed: 0 },
            JobSpec::Bathtub {
                rj_rms_fs: -1,
                dj_pp_fs: 0,
                rate_bps: GBPS,
                transition_density: 0.5,
                points: 2,
            },
            JobSpec::Bathtub {
                rj_rms_fs: 0,
                dj_pp_fs: 0,
                rate_bps: GBPS,
                transition_density: 0.0,
                points: 2,
            },
        ];
        for spec in cases {
            assert!(spec.validate().is_err(), "{spec:?}");
            // The same rejection fires on the decode path.
            let bytes = spec.key_bytes();
            let mut r = Reader::new(&bytes);
            assert!(JobSpec::decode(&mut r).is_err(), "{spec:?}");
        }
    }

    #[test]
    fn hostile_magnitude_specs_rejected() {
        // Every case is well-formed on the wire but describes work that
        // would pin the daemon (or overflow a workload constructor);
        // validation must shed each one as a typed BadPayload.
        let cases = [
            // The reviewer repro: a voltage sweep spanning the whole i32
            // range used to pass validation and overflow (or OOM) inside
            // ShmooConfig::voltage_points.
            JobSpec::Shmoo {
                rate_bps: GBPS,
                bits: 256,
                stim_seed: 0,
                phase_step_fs: 400_000,
                v_start_mv: i32::MIN + 1,
                v_end_mv: i32::MAX - 1,
                v_step_mv: 1,
                seed: 0,
            },
            // Femtosecond strobe steps over a full UI: ~4e8 grid columns.
            JobSpec::Shmoo {
                rate_bps: GBPS,
                bits: 256,
                stim_seed: 0,
                phase_step_fs: 1,
                v_start_mv: -1650,
                v_end_mv: -950,
                v_step_mv: 50,
                seed: 0,
            },
            // Inverted and zero-step sweeps, previously only caught deep in
            // the workload.
            JobSpec::Shmoo {
                rate_bps: GBPS,
                bits: 256,
                stim_seed: 0,
                phase_step_fs: 400_000,
                v_start_mv: -950,
                v_end_mv: -1650,
                v_step_mv: 50,
                seed: 0,
            },
            JobSpec::Shmoo {
                rate_bps: GBPS,
                bits: 256,
                stim_seed: 0,
                phase_step_fs: 0,
                v_start_mv: -1650,
                v_end_mv: -950,
                v_step_mv: 50,
                seed: 0,
            },
            // Multi-gigabit pattern memory.
            JobSpec::Shmoo {
                rate_bps: GBPS,
                bits: u32::MAX,
                stim_seed: 0,
                phase_step_fs: 400_000,
                v_start_mv: -1650,
                v_end_mv: -950,
                v_step_mv: 50,
                seed: 0,
            },
            // rate_bps = 1 gives a ~1e8-step eye scan.
            JobSpec::Eye { rate_bps: 1, bits: 256, stim_seed: 0, seed: 0 },
            JobSpec::Eye { rate_bps: GBPS, bits: u32::MAX, stim_seed: 0, seed: 0 },
            // 4 G dies, each booting a full MiniTester.
            JobSpec::Wafer {
                columns: 64,
                dies: u32::MAX,
                sites: 16,
                hard_defect_rate: 0.0,
                marginal_rate: 0.0,
                rate_bps: GBPS,
                test_bits: 256,
                seed: 0,
            },
            JobSpec::Wafer {
                columns: 64,
                dies: 64,
                sites: u32::MAX,
                hard_defect_rate: 0.0,
                marginal_rate: 0.0,
                rate_bps: GBPS,
                test_bits: 256,
                seed: 0,
            },
            JobSpec::Wafer {
                columns: 64,
                dies: 64,
                sites: 16,
                hard_defect_rate: 0.0,
                marginal_rate: 0.0,
                rate_bps: GBPS,
                test_bits: u32::MAX,
                seed: 0,
            },
            JobSpec::Bathtub {
                rj_rms_fs: 3_200,
                dj_pp_fs: 20_000,
                rate_bps: GBPS,
                transition_density: 0.5,
                points: u32::MAX,
            },
        ];
        for spec in cases {
            assert!(matches!(spec.validate(), Err(FrameError::BadPayload { .. })), "{spec:?}");
            // The same rejection fires on the decode path, so a hostile
            // frame never reaches the scheduler.
            let bytes = spec.key_bytes();
            let mut r = Reader::new(&bytes);
            assert!(JobSpec::decode(&mut r).is_err(), "{spec:?}");
        }
    }

    #[test]
    fn magnitude_caps_are_inclusive() {
        // Specs sitting exactly on the ceilings are still valid work.
        let at_cap = [
            pecl_shmoo(),
            JobSpec::Eye {
                rate_bps: limits::MIN_RATE_BPS,
                bits: limits::MAX_BITS,
                stim_seed: 0,
                seed: 0,
            },
            JobSpec::Wafer {
                columns: 128,
                dies: limits::MAX_DIES,
                sites: limits::MAX_DIES,
                hard_defect_rate: 0.02,
                marginal_rate: 0.05,
                rate_bps: limits::MIN_RATE_BPS,
                test_bits: limits::MAX_BITS,
                seed: 0,
            },
            JobSpec::Bathtub {
                rj_rms_fs: 3_200,
                dj_pp_fs: 20_000,
                rate_bps: limits::MIN_RATE_BPS,
                transition_density: 1.0,
                points: limits::MAX_SWEEP_POINTS,
            },
        ];
        for spec in at_cap {
            assert!(spec.validate().is_ok(), "{spec:?}");
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Ping { token: 0xFEED_FACE },
            Request::GetStats,
            Request::Submit { session: 3, spec: sample_specs().remove(0) },
            Request::SubmitBatch { session: 9, specs: sample_specs() },
            Request::Shutdown,
        ];
        for req in requests {
            let frame = req.to_frame().unwrap();
            assert_eq!(Request::from_frame(&frame).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let result = JobResult::Eye {
            points: vec![(0, 256, 10), (10_000_000, 256, 0)],
            step_fs: 10_000_000,
            rendered: "[#.] step 10 ps".to_string(),
        };
        let responses = vec![
            Response::Pong { token: 7 },
            Response::StatsReport(ServiceStats {
                submitted: 10,
                completed: 8,
                cache_hits: 4,
                batched: 1,
                shed: 1,
                failed: 1,
                connections_opened: 6,
                connections_closed: 4,
                connections_failed: 2,
                frames_rejected: 3,
                store_hits: 5,
                store_misses: 2,
                store_recovered: 9,
                queue_capacity: 256,
                cache_capacity: 64,
            }),
            Response::JobDone { ticket: 41, provenance: Provenance::Cache, result: result.clone() },
            Response::Busy { queue_depth: 256, queue_capacity: 256 },
            Response::Failed { ticket: 42, message: "eye completely closed".to_string() },
            Response::BatchDone {
                outcomes: vec![
                    (43, Provenance::Computed, Ok(result)),
                    (44, Provenance::Batched, Err("bad test plan".to_string())),
                ],
            },
            Response::Goodbye,
        ];
        for resp in responses {
            let frame = resp.to_frame().unwrap();
            assert_eq!(Response::from_frame(&frame).unwrap(), resp);
        }
    }

    #[test]
    fn streaming_responses_round_trip_on_thp2_only() {
        let chunk = Response::Chunk { seq: 3, bytes: vec![0xAB, 0, 0xCD] };
        let summary = Response::Summary {
            ticket: 12,
            provenance: Provenance::Computed,
            chunks: 4,
            total_bytes: 4096,
            digest: 0x1234_5678_9ABC_DEF0,
        };
        for resp in [chunk.clone(), summary.clone()] {
            // THP/1 cannot carry the streaming vocabulary.
            assert!(matches!(resp.to_frame(), Err(FrameError::UnknownType { .. })));
            let frame = resp.to_frame2(77).unwrap();
            let (header, payload) = wire::decode_frame2(&frame).unwrap();
            assert_eq!(header.correlation, 77);
            assert_eq!(Response::from_parts(header.msg_type, payload).unwrap(), resp);
        }
        // Flag assignment: chunks stream, summaries terminate.
        let (h, _) = wire::decode_frame2(&chunk.to_frame2(1).unwrap()).unwrap();
        assert_eq!(h.flags, wire::flag::CHUNK);
        let (h, _) = wire::decode_frame2(&summary.to_frame2(1).unwrap()).unwrap();
        assert_eq!(h.flags, wire::flag::FINAL);
    }

    #[test]
    fn thp2_request_framing_round_trips_and_reserves_the_failure_id() {
        let requests = vec![
            Request::Ping { token: 0xFEED_FACE },
            Request::GetStats,
            Request::Submit { session: 3, spec: sample_specs().remove(0) },
            Request::SubmitBatch { session: 9, specs: sample_specs() },
            Request::Shutdown,
        ];
        for req in requests {
            let frame = req.to_frame2(41).unwrap();
            let (header, payload) = wire::decode_frame2(&frame).unwrap();
            assert_eq!(header.correlation, 41);
            assert_eq!(header.flags, wire::flag::FINAL);
            assert_eq!(Request::from_parts(header.msg_type, payload).unwrap(), req);
            // The payload grammar is byte-identical to THP/1 — only the
            // envelope differs.
            let v1 = req.to_frame().unwrap();
            assert_eq!(&v1[wire::HEADER_LEN..], payload);
            assert!(matches!(req.to_frame2(FAILURE_ID), Err(FrameError::BadPayload { .. })));
        }
    }

    #[test]
    fn request_decoder_rejects_response_codes_and_vice_versa() {
        let frame = Response::Goodbye.to_frame().unwrap();
        assert!(matches!(Request::from_frame(&frame), Err(FrameError::UnknownType { .. })));
        let frame = Request::GetStats.to_frame().unwrap();
        assert!(matches!(Response::from_frame(&frame), Err(FrameError::UnknownType { .. })));
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut w = Writer::new();
        w.u64(1);
        w.u8(0xCC); // one byte too many for a Ping
        let frame = wire::encode_frame(msg::PING, &w.finish()).unwrap();
        assert!(matches!(Request::from_frame(&frame), Err(FrameError::TrailingBytes { .. })));
    }

    #[test]
    fn all_results_round_trip() {
        let results = vec![
            JobResult::Shmoo {
                thresholds_mv: vec![-1650, -1600],
                phases_fs: vec![0, 10_000_000],
                pass: vec![true, false, false, true],
                rendered: "shmoo".to_string(),
            },
            JobResult::Wafer {
                records: vec![
                    WireDieRecord { die: 0, bin: 0, bist_errors: 0, eye_ui: Some(0.875) },
                    WireDieRecord { die: 1, bin: 1, bist_errors: 120, eye_ui: None },
                ],
                touchdowns: 2,
                injected_hard: 1,
                injected_marginal: 0,
                rendered: ". X\nyield 50.0%".to_string(),
            },
            JobResult::Bathtub {
                pairs: vec![(0.0, 0.25), (0.5, 1e-15), (1.0, 0.25)],
                rendered: "bathtub sweep: 3 points".to_string(),
            },
        ];
        for result in results {
            let bytes = result.encoded().unwrap();
            let mut r = Reader::new(&bytes);
            let back = JobResult::decode(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, result);
            assert!(!result.rendered().is_empty());
        }
    }
}
