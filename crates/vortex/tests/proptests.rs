//! Property-based tests for the Data Vortex fabric: conservation, delivery,
//! and latency invariants under arbitrary traffic.

use proptest::collection::vec;
use proptest::prelude::*;
use vortex::{DataVortex, Packet, VortexParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_packet_is_delivered_to_its_destination(
        dests in vec(0u32..8, 1..24),
    ) {
        let params = VortexParams::eight_node();
        let mut dv = DataVortex::new(params);
        let mut accepted = Vec::new();
        let mut out = Vec::new();
        for (id, dest) in dests.iter().enumerate() {
            let angle = (id as u32) % params.angles();
            if dv.inject(Packet::new(id as u64, *dest, 0), angle).is_ok() {
                accepted.push((id as u64, *dest));
            }
            out.extend(dv.step());
        }
        out.extend(dv.run_until_drained(10_000));
        prop_assert_eq!(dv.in_flight(), 0, "fabric must drain");
        out.sort_by_key(|d| d.packet.id());
        // Conservation + correct routing.
        prop_assert_eq!(out.len(), accepted.len());
        for d in &out {
            let (_, dest) = accepted.iter().find(|(id, _)| *id == d.packet.id()).unwrap();
            prop_assert_eq!(d.packet.dest_height(), *dest);
        }
    }

    #[test]
    fn latency_bounds(entry in 0u32..8, dest in 0u32..8) {
        // A lone packet: latency = cylinders + (bits that mismatch at the
        // moment each cylinder is reached). Bounded by 2x cylinders.
        let params = VortexParams::eight_node();
        let mut dv = DataVortex::new(params);
        dv.try_inject_at(Packet::new(0, dest, 0), 0, entry).unwrap();
        let out = dv.run_until_drained(100);
        prop_assert_eq!(out.len(), 1);
        let latency = out[0].latency();
        prop_assert!(latency >= u64::from(params.cylinders()));
        prop_assert!(latency <= 2 * u64::from(params.cylinders()));
        // Deflections for a lone packet = mismatched bits only.
        let mismatches = (entry ^ dest).count_ones();
        prop_assert_eq!(out[0].packet.deflections(), mismatches);
    }

    #[test]
    fn no_two_packets_exit_one_port_in_the_same_slot(
        dests in vec(0u32..4, 4..20),
    ) {
        // Funnel traffic into few ports to force output contention.
        let params = VortexParams::eight_node();
        let mut dv = DataVortex::new(params);
        for (id, dest) in dests.iter().enumerate() {
            let _ = dv.inject(Packet::new(id as u64, *dest, 0), (id as u32) % 4);
        }
        let out = dv.run_until_drained(10_000);
        let mut seen = std::collections::HashSet::new();
        for d in &out {
            prop_assert!(
                seen.insert((d.packet.dest_height(), d.delivered_slot)),
                "two packets left port {} in slot {}",
                d.packet.dest_height(),
                d.delivered_slot
            );
        }
    }

    #[test]
    fn stats_are_consistent(dests in vec(0u32..8, 1..40), load_angles in 1u32..4) {
        let params = VortexParams::eight_node();
        let mut dv = DataVortex::new(params);
        let mut injected = 0u64;
        for (id, dest) in dests.iter().enumerate() {
            if dv.inject(Packet::new(id as u64, *dest, 0), (id as u32) % load_angles).is_ok() {
                injected += 1;
            }
            dv.step();
        }
        dv.run_until_drained(10_000);
        let stats = dv.stats();
        prop_assert_eq!(stats.injected, injected);
        prop_assert_eq!(stats.delivered, injected);
        prop_assert_eq!(stats.latency.count(), injected);
        prop_assert!((stats.delivery_ratio() - 1.0).abs() < 1e-12);
        if injected > 0 {
            prop_assert!(stats.latency.min() >= u64::from(params.cylinders()));
        }
    }

    #[test]
    fn bigger_fabrics_also_route(cyl in 2u32..5, dest_seed in any::<u64>()) {
        let params = VortexParams::new(cyl, 4);
        let dest = (dest_seed % u64::from(params.heights())) as u32;
        let mut dv = DataVortex::new(params);
        dv.inject(Packet::new(0, dest, 0), 0).unwrap();
        let out = dv.run_until_drained(1_000);
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0].packet.dest_height(), dest);
    }
}
