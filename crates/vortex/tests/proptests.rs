//! Property-based tests for the Data Vortex fabric: conservation, delivery,
//! and latency invariants under arbitrary traffic.
//!
//! Cases are drawn from named substreams of the first-party `rng` crate, so
//! every run covers the same randomized slice of the input space
//! deterministically.

use rng::{Rng, SeedTree};
use vortex::{DataVortex, Packet, VortexParams};

const CASES: usize = 48;

fn cases(label: &str) -> (Rng, usize) {
    (SeedTree::new(0x40e7).stream("vortex.proptests").stream(label).rng(), CASES)
}

fn random_dests(rng: &mut Rng, max_dest: u32, min_len: usize, max_len: usize) -> Vec<u32> {
    let len = rng.range_usize(min_len..max_len);
    (0..len).map(|_| rng.range_u32(0..max_dest)).collect()
}

#[test]
fn every_packet_is_delivered_to_its_destination() {
    let (mut rng, n) = cases("delivery");
    for _ in 0..n {
        let dests = random_dests(&mut rng, 8, 1, 24);
        let params = VortexParams::eight_node();
        let mut dv = DataVortex::new(params);
        let mut accepted = Vec::new();
        let mut out = Vec::new();
        for (id, dest) in dests.iter().enumerate() {
            let angle = (id as u32) % params.angles();
            if dv.inject(Packet::new(id as u64, *dest, 0), angle).is_ok() {
                accepted.push((id as u64, *dest));
            }
            out.extend(dv.step());
        }
        out.extend(dv.run_until_drained(10_000));
        assert_eq!(dv.in_flight(), 0, "fabric must drain (dests={dests:?})");
        out.sort_by_key(|d| d.packet.id());
        // Conservation + correct routing.
        assert_eq!(out.len(), accepted.len(), "dests={dests:?}");
        for d in &out {
            let (_, dest) = accepted.iter().find(|(id, _)| *id == d.packet.id()).unwrap();
            assert_eq!(d.packet.dest_height(), *dest, "dests={dests:?}");
        }
    }
}

#[test]
fn latency_bounds() {
    // A lone packet: latency = cylinders + (bits that mismatch at the
    // moment each cylinder is reached). Bounded by 2x cylinders.
    let params = VortexParams::eight_node();
    for entry in 0u32..8 {
        for dest in 0u32..8 {
            let mut dv = DataVortex::new(params);
            dv.try_inject_at(Packet::new(0, dest, 0), 0, entry).unwrap();
            let out = dv.run_until_drained(100);
            assert_eq!(out.len(), 1, "entry={entry} dest={dest}");
            let latency = out[0].latency();
            assert!(latency >= u64::from(params.cylinders()), "entry={entry} dest={dest}");
            assert!(latency <= 2 * u64::from(params.cylinders()), "entry={entry} dest={dest}");
            // Deflections for a lone packet = mismatched bits only.
            let mismatches = (entry ^ dest).count_ones();
            assert_eq!(out[0].packet.deflections(), mismatches, "entry={entry} dest={dest}");
        }
    }
}

#[test]
fn no_two_packets_exit_one_port_in_the_same_slot() {
    let (mut rng, n) = cases("port-contention");
    for _ in 0..n {
        // Funnel traffic into few ports to force output contention.
        let dests = random_dests(&mut rng, 4, 4, 20);
        let params = VortexParams::eight_node();
        let mut dv = DataVortex::new(params);
        for (id, dest) in dests.iter().enumerate() {
            let _ = dv.inject(Packet::new(id as u64, *dest, 0), (id as u32) % 4);
        }
        let out = dv.run_until_drained(10_000);
        let mut seen = std::collections::HashSet::new();
        for d in &out {
            assert!(
                seen.insert((d.packet.dest_height(), d.delivered_slot)),
                "two packets left port {} in slot {} (dests={dests:?})",
                d.packet.dest_height(),
                d.delivered_slot
            );
        }
    }
}

#[test]
fn stats_are_consistent() {
    let (mut rng, n) = cases("stats");
    for _ in 0..n {
        let dests = random_dests(&mut rng, 8, 1, 40);
        let load_angles = rng.range_u32(1..4);
        let params = VortexParams::eight_node();
        let mut dv = DataVortex::new(params);
        let mut injected = 0u64;
        for (id, dest) in dests.iter().enumerate() {
            if dv.inject(Packet::new(id as u64, *dest, 0), (id as u32) % load_angles).is_ok() {
                injected += 1;
            }
            dv.step();
        }
        dv.run_until_drained(10_000);
        let stats = dv.stats();
        assert_eq!(stats.injected, injected, "dests={dests:?} angles={load_angles}");
        assert_eq!(stats.delivered, injected);
        assert_eq!(stats.latency.count(), injected);
        assert!((stats.delivery_ratio() - 1.0).abs() < 1e-12);
        if injected > 0 {
            assert!(stats.latency.min() >= u64::from(params.cylinders()));
        }
    }
}

#[test]
fn bigger_fabrics_also_route() {
    let (mut rng, n) = cases("bigger-fabrics");
    for _ in 0..n {
        let cyl = rng.range_u32(2..5);
        let params = VortexParams::new(cyl, 4);
        let dest = rng.range_u32(0..params.heights());
        let mut dv = DataVortex::new(params);
        dv.inject(Packet::new(0, dest, 0), 0).unwrap();
        let out = dv.run_until_drained(1_000);
        assert_eq!(out.len(), 1, "cyl={cyl} dest={dest}");
        assert_eq!(out[0].packet.dest_height(), dest);
    }
}
