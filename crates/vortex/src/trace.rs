//! Occupancy tracing and fairness analysis.
//!
//! Virtual buffering means blocked packets *live in the fabric*: cylinder
//! occupancy is the Data Vortex's queue depth, and deflection routing can
//! in principle starve some inputs. These are the two questions a switch
//! evaluation asks beyond raw throughput, so the tracer records both:
//! per-cylinder occupancy over time, and per-input-angle delivery
//! statistics with Jain's fairness index.

use core::fmt;

use rng::SeedTree;

use crate::fabric::DataVortex;
use crate::packet::Packet;
use crate::stats::LatencyStats;
use crate::topology::VortexParams;
use crate::traffic::Pattern;

/// A `u32` topology coordinate as a vector index. Never truncates: every
/// supported target has at least a 32-bit `usize`.
fn idx(n: u32) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// Approximate `f64` view of a count, for ratio math. Saturates at
/// `u32::MAX`, far beyond any tractable simulation.
fn approx(n: u64) -> f64 {
    f64::from(u32::try_from(n).unwrap_or(u32::MAX))
}

/// Per-input-angle accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AngleStats {
    /// Packets injected at this angle.
    pub injected: u64,
    /// Packets from this angle delivered.
    pub delivered: u64,
    /// Latency of this angle's deliveries.
    pub latency: LatencyStats,
}

/// The trace of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Mean occupancy per cylinder over the measured slots.
    pub mean_occupancy: Vec<f64>,
    /// Peak occupancy per cylinder.
    pub peak_occupancy: Vec<usize>,
    /// Per-input-angle statistics.
    pub angles: Vec<AngleStats>,
    /// Slots measured.
    pub slots: u64,
}

impl TraceReport {
    /// Jain's fairness index over per-angle throughput:
    /// `(Σx)² / (n·Σx²)`, 1.0 = perfectly fair, `1/n` = one angle hogs
    /// everything.
    pub fn fairness_index(&self) -> f64 {
        let xs: Vec<f64> = self.angles.iter().map(|a| approx(a.delivered)).collect();
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        let n = approx(u64::try_from(xs.len()).unwrap_or(u64::MAX));
        sum * sum / (n * sum_sq)
    }

    /// The most loaded cylinder's mean occupancy.
    pub fn hottest_cylinder(&self) -> (usize, f64) {
        self.mean_occupancy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, v)| (i, *v))
            .unwrap_or((0, 0.0))
    }

    /// Worst latency spread between angles (max mean − min mean).
    pub fn latency_spread(&self) -> f64 {
        let means: Vec<f64> = self
            .angles
            .iter()
            .filter(|a| a.latency.count() > 0)
            .map(|a| a.latency.mean())
            .collect();
        if means.is_empty() {
            return 0.0;
        }
        let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace over {} slots:", self.slots)?;
        for (c, (mean, peak)) in self.mean_occupancy.iter().zip(&self.peak_occupancy).enumerate() {
            writeln!(f, "  cylinder {c}: mean occupancy {mean:.2}, peak {peak}")?;
        }
        write!(
            f,
            "  fairness {:.3}, latency spread {:.2} slots",
            self.fairness_index(),
            self.latency_spread()
        )
    }
}

/// Runs traffic while tracing occupancy and per-angle fairness.
///
/// Same injection model as [`crate::traffic::run_load`], with full
/// accounting.
///
/// # Panics
///
/// Panics if `offered_load` is outside `[0, 1]`.
pub fn run_traced(
    params: VortexParams,
    pattern: Pattern,
    offered_load: f64,
    measure_slots: u64,
    seed: u64,
) -> TraceReport {
    assert!((0.0..=1.0).contains(&offered_load), "offered load must be in [0, 1]");
    let mut dv = DataVortex::new(params);
    let mut rng = SeedTree::new(seed).stream("vortex.trace").rng();
    let mut angles = vec![AngleStats::default(); idx(params.angles())];
    let mut origin: Vec<u32> = Vec::new(); // packet id -> injection angle
    let mut mean = vec![0.0f64; idx(params.cylinders())];
    let mut peak = vec![0usize; idx(params.cylinders())];

    let account = |delivered: &[crate::fabric::Delivered],
                   angles: &mut Vec<AngleStats>,
                   origin: &Vec<u32>| {
        for d in delivered {
            let a = idx(origin[usize::try_from(d.packet.id()).unwrap_or(usize::MAX)]);
            angles[a].delivered += 1;
            angles[a].latency.record(d.latency());
        }
    };

    for _ in 0..measure_slots {
        for a in 0..params.angles() {
            if rng.f64() >= offered_load {
                continue;
            }
            let dest = match pattern {
                Pattern::UniformRandom => rng.range_u32(0..params.heights()),
                Pattern::Permutation { offset } => {
                    (a * params.heights() / params.angles() + offset) % params.heights()
                }
                Pattern::Hotspot { target, fraction } => {
                    if rng.f64() < fraction {
                        target
                    } else {
                        rng.range_u32(0..params.heights())
                    }
                }
            };
            let id = u64::try_from(origin.len()).unwrap_or(u64::MAX);
            if dv.inject(Packet::new(id, dest, u8::try_from(a % 8).unwrap_or(0)), a).is_ok() {
                angles[idx(a)].injected += 1;
            }
            origin.push(a);
        }
        for c in 0..params.cylinders() {
            let occ = dv.cylinder_occupancy(c);
            mean[idx(c)] += approx(u64::try_from(occ).unwrap_or(u64::MAX));
            peak[idx(c)] = peak[idx(c)].max(occ);
        }
        let out = dv.step();
        account(&out, &mut angles, &origin);
    }
    // Drain.
    loop {
        let out = dv.step();
        account(&out, &mut angles, &origin);
        if dv.in_flight() == 0 {
            break;
        }
    }

    for m in &mut mean {
        *m /= approx(measure_slots.max(1));
    }
    TraceReport { mean_occupancy: mean, peak_occupancy: peak, angles, slots: measure_slots }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_traffic_is_fair() {
        let report = run_traced(VortexParams::eight_node(), Pattern::UniformRandom, 0.5, 500, 3);
        assert_eq!(report.angles.len(), 4);
        let fairness = report.fairness_index();
        assert!(fairness > 0.97, "uniform traffic unfair: {fairness}");
        // Everything injected was delivered.
        let injected: u64 = report.angles.iter().map(|a| a.injected).sum();
        let delivered: u64 = report.angles.iter().map(|a| a.delivered).sum();
        assert_eq!(injected, delivered);
        assert!(injected > 500);
        assert!(report.latency_spread() < 1.0, "spread {}", report.latency_spread());
    }

    #[test]
    fn occupancy_grows_with_load() {
        let light = run_traced(VortexParams::eight_node(), Pattern::UniformRandom, 0.1, 400, 5);
        let heavy = run_traced(VortexParams::eight_node(), Pattern::UniformRandom, 0.9, 400, 5);
        let light_total: f64 = light.mean_occupancy.iter().sum();
        let heavy_total: f64 = heavy.mean_occupancy.iter().sum();
        assert!(
            heavy_total > light_total * 3.0,
            "occupancy should scale with load: {light_total} vs {heavy_total}"
        );
        assert!(heavy.peak_occupancy.iter().any(|p| *p > 4));
    }

    #[test]
    fn hotspot_backpressure_fills_the_fabric() {
        // A saturated output port backpressures through deflections: the
        // whole fabric fills (outermost cylinders worst, since blocked
        // descents pile upstream and injections keep arriving), fairness
        // and latency spread degrade versus uniform traffic.
        let uniform = run_traced(VortexParams::eight_node(), Pattern::UniformRandom, 0.6, 400, 7);
        let hotspot = run_traced(
            VortexParams::eight_node(),
            Pattern::Hotspot { target: 2, fraction: 0.9 },
            0.6,
            400,
            7,
        );
        let occ_uniform: f64 = uniform.mean_occupancy.iter().sum();
        let occ_hotspot: f64 = hotspot.mean_occupancy.iter().sum();
        assert!(
            occ_hotspot > occ_uniform * 3.0,
            "hotspot should congest the fabric: {occ_uniform} vs {occ_hotspot}"
        );
        // Backpressure accumulates upstream: outermost cylinder hottest.
        assert_eq!(hotspot.hottest_cylinder().0, 0, "{hotspot}");
        assert!(hotspot.fairness_index() < uniform.fairness_index());
        assert!(hotspot.latency_spread() > uniform.latency_spread());
    }

    #[test]
    fn report_renders() {
        let report = run_traced(VortexParams::eight_node(), Pattern::UniformRandom, 0.3, 100, 1);
        let text = report.to_string();
        assert!(text.contains("cylinder 0"));
        assert!(text.contains("fairness"));
        assert_eq!(report.slots, 100);
    }

    #[test]
    fn zero_load_trace() {
        let report = run_traced(VortexParams::eight_node(), Pattern::UniformRandom, 0.0, 50, 1);
        assert_eq!(report.fairness_index(), 1.0);
        assert_eq!(report.latency_spread(), 0.0);
        assert!(report.mean_occupancy.iter().all(|m| *m == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_traced(VortexParams::eight_node(), Pattern::UniformRandom, 0.4, 200, 9);
        let b = run_traced(VortexParams::eight_node(), Pattern::UniformRandom, 0.4, 200, 9);
        assert_eq!(a, b);
    }
}
