//! Packets and wavelength channels.

use core::fmt;

/// A WDM wavelength channel index.
///
/// The test bed modulates "lasers of different wavelengths" and combines
/// them optically; in the Data Vortex each payload wavelength carries part
/// of the parallel word while routing is done on dedicated header
/// wavelengths. For the simulator a wavelength is an identity tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Wavelength(pub u8);

impl fmt::Display for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// A packet traversing the fabric: identity, destination height, wavelength,
/// and accounting for latency/deflection statistics.
///
/// # Examples
///
/// ```
/// use vortex::Packet;
///
/// let p = Packet::new(42, 5, 1);
/// assert_eq!(p.id(), 42);
/// assert_eq!(p.dest_height(), 5);
/// assert_eq!(p.wavelength().0, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    id: u64,
    dest_height: u32,
    wavelength: Wavelength,
    hops: u32,
    deflections: u32,
}

impl Packet {
    /// Creates a packet addressed to `dest_height` on wavelength channel
    /// `lambda`.
    pub fn new(id: u64, dest_height: u32, lambda: u8) -> Self {
        Packet { id, dest_height, wavelength: Wavelength(lambda), hops: 0, deflections: 0 }
    }

    /// The packet's identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The destination output height.
    pub fn dest_height(&self) -> u32 {
        self.dest_height
    }

    /// The wavelength channel.
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// Total hops taken so far.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Hops that were deflections (same-cylinder moves forced by blocking
    /// or a mismatched bit).
    pub fn deflections(&self) -> u32 {
        self.deflections
    }

    /// The header bits the transmitter would encode for this destination:
    /// MSB-first height address, one bit per cylinder.
    pub fn header_bits(&self, cylinders: u32) -> Vec<bool> {
        (0..cylinders).rev().map(|b| (self.dest_height >> b) & 1 == 1).collect()
    }

    pub(crate) fn record_hop(&mut self, deflected: bool) {
        self.hops += 1;
        if deflected {
            self.deflections += 1;
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pkt#{} -> h{} on {} ({} hops, {} deflections)",
            self.id, self.dest_height, self.wavelength, self.hops, self.deflections
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Packet::new(7, 3, 2);
        assert_eq!(p.id(), 7);
        assert_eq!(p.dest_height(), 3);
        assert_eq!(p.wavelength(), Wavelength(2));
        assert_eq!(p.hops(), 0);
        assert_eq!(p.deflections(), 0);
    }

    #[test]
    fn hop_accounting() {
        let mut p = Packet::new(0, 0, 0);
        p.record_hop(false);
        p.record_hop(true);
        p.record_hop(true);
        assert_eq!(p.hops(), 3);
        assert_eq!(p.deflections(), 2);
    }

    #[test]
    fn header_bits_msb_first() {
        let p = Packet::new(0, 0b101, 0);
        assert_eq!(p.header_bits(3), vec![true, false, true]);
        assert_eq!(p.header_bits(4), vec![false, true, false, true]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Wavelength(3).to_string(), "λ3");
        let p = Packet::new(1, 2, 3);
        assert!(p.to_string().contains("pkt#1"));
        assert!(p.to_string().contains("h2"));
    }
}
