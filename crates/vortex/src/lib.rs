//! # gigatest-vortex — a Data Vortex optical packet switch simulator
//!
//! The paper's Optical Test Bed exists to "exercise and test a Data Vortex,
//! an experimental switching fabric designed to address the issues
//! associated with interfacing an optical packet interconnection network to
//! high-performance computing systems" (§3, refs \[4, 5\]). A reproduction
//! of the test system therefore needs the device under test: this crate is
//! a slot-synchronous simulator of the Data Vortex topology (Reed's
//! "multiple level minimum logic network", US 5,996,020).
//!
//! ## Topology
//!
//! A Data Vortex with `C` cylinders, `A` angles, and `H = 2^C` heights is a
//! set of nodes `(c, a, h)`. Packets enter at cylinder 0 and spiral inward:
//! cylinder `c` fixes bit `c` (MSB-first) of the destination height. Every
//! slot a packet moves to angle `a+1 (mod A)`; it *descends* one cylinder
//! when its current height bit matches the destination and the target node
//! is free, otherwise it stays on its cylinder — circulating packets **are**
//! the network's buffer ("virtual buffering", the banyan-without-memory
//! trick the paper's reference \[4\] demonstrates on an 8-node fabric).
//! Deflection signals guarantee single occupancy per node without optical
//! memory.
//!
//! ## Example
//!
//! ```
//! use vortex::{DataVortex, Packet, VortexParams};
//!
//! let mut dv = DataVortex::new(VortexParams::eight_node());
//! dv.inject(Packet::new(0, 5, 0), 0)?; // id 0, destination height 5, λ0
//! let delivered = dv.run_until_drained(100);
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].packet.dest_height(), 5);
//! # Ok::<(), vortex::VortexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod packet;
mod stats;
mod topology;
pub mod trace;
pub mod traffic;

pub use fabric::{DataVortex, Delivered, VortexError};
pub use packet::{Packet, Wavelength};
pub use stats::{FabricStats, LatencyStats};
pub use topology::{NodeAddr, VortexParams};
pub use trace::{run_traced, AngleStats, TraceReport};
