//! The slot-synchronous Data Vortex fabric simulator.

use core::fmt;

use crate::packet::Packet;
use crate::stats::FabricStats;
use crate::topology::{NodeAddr, VortexParams};

/// Errors raised by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VortexError {
    /// The chosen entry node (or every entry height) is occupied this slot.
    EntryBlocked {
        /// The injection angle.
        angle: u32,
    },
    /// A coordinate outside the fabric geometry.
    OutOfRange {
        /// Which coordinate.
        what: &'static str,
        /// The offending value.
        value: u32,
    },
}

impl fmt::Display for VortexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VortexError::EntryBlocked { angle } => {
                write!(f, "entry nodes at angle {angle} are occupied")
            }
            VortexError::OutOfRange { what, value } => {
                write!(f, "{what} {value} out of range")
            }
        }
    }
}

impl std::error::Error for VortexError {}

/// A packet that reached its output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The packet (with final hop/deflection counts).
    pub packet: Packet,
    /// Slot at which it was injected.
    pub injected_slot: u64,
    /// Slot at which it left the fabric.
    pub delivered_slot: u64,
}

impl Delivered {
    /// Transit latency in slots.
    pub fn latency(&self) -> u64 {
        self.delivered_slot - self.injected_slot
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    packet: Packet,
    injected_slot: u64,
}

/// The Data Vortex switch fabric.
///
/// Slot-synchronous simulation with the topology's defining properties:
///
/// * single-occupancy nodes, **no optical buffers** — blocked packets keep
///   circulating on their cylinder (virtual buffering);
/// * deflection priority: packets resident on an inner cylinder block
///   descents from the cylinder above (the deflection-signal mechanism);
/// * MSB-first height-bit fixing cylinder by cylinder.
///
/// # Examples
///
/// ```
/// use vortex::{DataVortex, Packet, VortexParams};
///
/// let mut dv = DataVortex::new(VortexParams::eight_node());
/// for id in 0..4 {
///     dv.inject(Packet::new(id, (id as u32) % 8, 0), (id as u32) % 4)?;
/// }
/// let delivered = dv.run_until_drained(1_000);
/// assert_eq!(delivered.len(), 4);
/// # Ok::<(), vortex::VortexError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DataVortex {
    params: VortexParams,
    nodes: Vec<Option<InFlight>>,
    slot: u64,
    stats: FabricStats,
    pending_outputs: Vec<Vec<Delivered>>,
}

impl DataVortex {
    /// Creates an empty fabric.
    pub fn new(params: VortexParams) -> Self {
        DataVortex {
            params,
            nodes: vec![None; params.node_count()],
            slot: 0,
            stats: FabricStats::default(),
            pending_outputs: vec![Vec::new(); params.heights() as usize],
        }
    }

    /// The fabric geometry.
    pub fn params(&self) -> &VortexParams {
        &self.params
    }

    /// The current slot number.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Number of packets currently circulating.
    pub fn in_flight(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Number of packets on cylinder `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` exceeds the cylinder count.
    pub fn cylinder_occupancy(&self, c: u32) -> usize {
        assert!(c < self.params.cylinders(), "cylinder out of range");
        let mut count = 0;
        for a in 0..self.params.angles() {
            for h in 0..self.params.heights() {
                if self.nodes[NodeAddr::new(c, a, h).index(&self.params)].is_some() {
                    count += 1;
                }
            }
        }
        count
    }

    /// Injects a packet at cylinder 0 on `angle`, picking the first free
    /// entry height.
    ///
    /// # Errors
    ///
    /// [`VortexError::EntryBlocked`] when every height at that angle is
    /// occupied, [`VortexError::OutOfRange`] for bad coordinates.
    pub fn inject(&mut self, packet: Packet, angle: u32) -> Result<(), VortexError> {
        if angle >= self.params.angles() {
            return Err(VortexError::OutOfRange { what: "angle", value: angle });
        }
        for h in 0..self.params.heights() {
            if self.try_inject_at(packet, angle, h)? {
                return Ok(());
            }
        }
        self.stats.injection_blocked += 1;
        Err(VortexError::EntryBlocked { angle })
    }

    /// Injects at a specific entry height. Returns `false` (without error)
    /// if that node is occupied.
    ///
    /// # Errors
    ///
    /// [`VortexError::OutOfRange`] for bad coordinates or a destination
    /// beyond the fabric's height range.
    pub fn try_inject_at(
        &mut self,
        packet: Packet,
        angle: u32,
        height: u32,
    ) -> Result<bool, VortexError> {
        if angle >= self.params.angles() {
            return Err(VortexError::OutOfRange { what: "angle", value: angle });
        }
        if !self.params.height_in_range(height) {
            return Err(VortexError::OutOfRange { what: "height", value: height });
        }
        if !self.params.height_in_range(packet.dest_height()) {
            return Err(VortexError::OutOfRange {
                what: "destination height",
                value: packet.dest_height(),
            });
        }
        let idx = NodeAddr::new(0, angle, height).index(&self.params);
        if self.nodes[idx].is_some() {
            return Ok(false);
        }
        self.nodes[idx] = Some(InFlight { packet, injected_slot: self.slot });
        self.stats.injected += 1;
        Ok(true)
    }

    /// Advances the fabric one slot; returns the packets delivered in this
    /// slot.
    pub fn step(&mut self) -> Vec<Delivered> {
        let p = self.params;
        let c_count = p.cylinders();
        let mut next: Vec<Option<InFlight>> = vec![None; self.nodes.len()];
        let mut delivered = Vec::new();
        let mut output_busy = vec![false; p.heights() as usize];

        // Innermost cylinders move first: residents get priority over
        // descenders (the deflection-signal contract).
        for c in (0..c_count).rev() {
            for a in 0..p.angles() {
                let a_next = (a + 1) % p.angles();
                for h in 0..p.heights() {
                    let idx = NodeAddr::new(c, a, h).index(&p);
                    let Some(mut flight) = self.nodes[idx] else { continue };
                    let dest = flight.packet.dest_height();
                    let bit_ok = p.bit_matches(c, h, dest);

                    if bit_ok && c == c_count - 1 {
                        // All bits fixed: eject to output port `dest`.
                        if !output_busy[dest as usize] {
                            output_busy[dest as usize] = true;
                            flight.packet.record_hop(false);
                            let d = Delivered {
                                packet: flight.packet,
                                injected_slot: flight.injected_slot,
                                delivered_slot: self.slot + 1,
                            };
                            self.stats.delivered += 1;
                            self.stats.total_deflections += u64::from(flight.packet.deflections());
                            self.stats.latency.record(d.latency());
                            delivered.push(d);
                            continue;
                        }
                        // Output contention: circulate at the same height.
                        self.place_on_cylinder(&mut next, c, a_next, h, flight, true);
                        continue;
                    }

                    if bit_ok {
                        // Try to descend; the inner cylinder was already
                        // placed, so occupancy in `next` is authoritative.
                        let down = NodeAddr::new(c + 1, a_next, h).index(&p);
                        if next[down].is_none() {
                            flight.packet.record_hop(false);
                            next[down] = Some(flight);
                            continue;
                        }
                        // Blocked by the inner cylinder: circulate.
                        self.place_on_cylinder(&mut next, c, a_next, h, flight, true);
                        continue;
                    }

                    // Wrong bit: cross to the partner height to fix it.
                    let cross = p.crossing_height(c, h);
                    self.place_on_cylinder(&mut next, c, a_next, cross, flight, true);
                }
            }
        }

        self.nodes = next;
        self.slot += 1;
        self.stats.slots += 1;
        for d in &delivered {
            self.pending_outputs[d.packet.dest_height() as usize].push(*d);
        }
        delivered
    }

    /// Places a packet on its own cylinder at `angle`, preferring `height`
    /// and falling back to the crossing partner if taken.
    fn place_on_cylinder(
        &mut self,
        next: &mut [Option<InFlight>],
        c: u32,
        angle: u32,
        height: u32,
        mut flight: InFlight,
        deflected: bool,
    ) {
        let p = self.params;
        flight.packet.record_hop(deflected);
        let first = NodeAddr::new(c, angle, height).index(&p);
        // xlint::allow(panic-reachable, NodeAddr::index always stays below params.node_count() == next.len())
        if next[first].is_none() {
            // xlint::allow(panic-reachable, NodeAddr::index always stays below params.node_count() == next.len())
            next[first] = Some(flight);
            return;
        }
        let alt = NodeAddr::new(c, angle, p.crossing_height(c, height)).index(&p);
        // xlint::allow(panic-reachable, NodeAddr::index always stays below params.node_count() == next.len())
        if next[alt].is_none() {
            // xlint::allow(panic-reachable, NodeAddr::index always stays below params.node_count() == next.len())
            next[alt] = Some(flight);
            return;
        }
        // With single-occupancy sources, at most two packets contend for a
        // crossing pair, so one of the two slots is always free.
        // xlint::allow(no-panic-in-lib, single-occupancy sources mean at most two packets contend for a crossing pair so one slot is always free; see the invariant note above)
        unreachable!("crossing pair had no free node — occupancy invariant broken");
    }

    /// Runs until the fabric drains or `max_slots` elapse; returns every
    /// packet delivered during the run.
    pub fn run_until_drained(&mut self, max_slots: u64) -> Vec<Delivered> {
        let mut all = Vec::new();
        for _ in 0..max_slots {
            all.extend(self.step());
            if self.in_flight() == 0 {
                break;
            }
        }
        all
    }

    /// Drains and returns the per-port delivery log for `height`.
    ///
    /// # Panics
    ///
    /// Panics if `height` is out of range.
    pub fn take_output(&mut self, height: u32) -> Vec<Delivered> {
        std::mem::take(&mut self.pending_outputs[height as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> DataVortex {
        DataVortex::new(VortexParams::eight_node())
    }

    #[test]
    fn single_packet_routes_to_destination() {
        for dest in 0..8 {
            let mut dv = fabric();
            dv.inject(Packet::new(u64::from(dest), dest, 0), 0).unwrap();
            let out = dv.run_until_drained(100);
            assert_eq!(out.len(), 1, "dest {dest}");
            assert_eq!(out[0].packet.dest_height(), dest);
            // Min latency is one hop per cylinder; deflections add more.
            assert!(out[0].latency() >= 3, "latency {}", out[0].latency());
            assert!(out[0].latency() <= 10);
            // Output log matches.
            assert_eq!(dv.take_output(dest).len(), 1);
            assert!(dv.take_output(dest).is_empty());
        }
    }

    #[test]
    fn latency_grows_with_mismatched_bits() {
        // dest whose every bit mismatches the entry height takes crossings.
        let mut dv = fabric();
        dv.try_inject_at(Packet::new(0, 0b111, 0), 0, 0b000).unwrap();
        let out = dv.run_until_drained(100);
        assert_eq!(out.len(), 1);
        // 3 descents + 3 crossings = 6 hops.
        assert_eq!(out[0].latency(), 6);
        assert_eq!(out[0].packet.deflections(), 3);

        let mut dv = fabric();
        dv.try_inject_at(Packet::new(0, 0b101, 0), 0, 0b101).unwrap();
        let out = dv.run_until_drained(100);
        assert_eq!(out[0].latency(), 3);
        assert_eq!(out[0].packet.deflections(), 0);
    }

    #[test]
    fn all_pairs_route_correctly() {
        // Every (entry height, destination) combination delivers.
        for entry in 0..8 {
            for dest in 0..8 {
                let mut dv = fabric();
                dv.try_inject_at(Packet::new(1, dest, 0), 1, entry).unwrap();
                let out = dv.run_until_drained(200);
                assert_eq!(out.len(), 1, "entry {entry} dest {dest}");
                assert_eq!(out[0].packet.dest_height(), dest);
            }
        }
    }

    #[test]
    fn concurrent_packets_all_deliver() {
        let mut dv = fabric();
        // Fill all four angles with packets to distinct destinations.
        for a in 0..4 {
            for (i, dest) in [a, a + 4].iter().enumerate() {
                dv.inject(Packet::new(u64::from(a * 2 + i as u32), *dest % 8, 0), a).unwrap();
            }
        }
        assert_eq!(dv.in_flight(), 8);
        let out = dv.run_until_drained(500);
        assert_eq!(out.len(), 8);
        assert_eq!(dv.stats().delivered, 8);
        assert_eq!(dv.stats().delivery_ratio(), 1.0);
    }

    #[test]
    fn hotspot_contention_serializes_deliveries() {
        // Many packets to ONE output: the port takes one per slot, the rest
        // circulate (virtual buffering) — nothing is lost.
        let mut dv = fabric();
        for id in 0..8 {
            dv.inject(Packet::new(id, 5, 0), (id % 4) as u32).unwrap();
        }
        let out = dv.run_until_drained(500);
        assert_eq!(out.len(), 8);
        // Deliveries at port 5 happen in distinct slots.
        let mut slots: Vec<u64> = out.iter().map(|d| d.delivered_slot).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 8, "one delivery per slot at a hotspot port");
        assert!(dv.stats().total_deflections > 0);
    }

    #[test]
    fn injection_blocking() {
        let mut dv = fabric();
        // Occupy every height at angle 0.
        for h in 0..8 {
            assert!(dv.try_inject_at(Packet::new(u64::from(h), 0, 0), 0, h).unwrap());
        }
        // Ninth injection at angle 0 fails.
        let err = dv.inject(Packet::new(99, 0, 0), 0).unwrap_err();
        assert_eq!(err, VortexError::EntryBlocked { angle: 0 });
        assert_eq!(dv.stats().injection_blocked, 1);
        // Same-node targeted injection reports false.
        assert!(!dv.try_inject_at(Packet::new(100, 0, 0), 0, 3).unwrap());
    }

    #[test]
    fn out_of_range_errors() {
        let mut dv = fabric();
        assert!(matches!(
            dv.inject(Packet::new(0, 0, 0), 9),
            Err(VortexError::OutOfRange { what: "angle", .. })
        ));
        assert!(matches!(
            dv.try_inject_at(Packet::new(0, 0, 0), 0, 99),
            Err(VortexError::OutOfRange { what: "height", .. })
        ));
        assert!(matches!(
            dv.try_inject_at(Packet::new(0, 99, 0), 0, 0),
            Err(VortexError::OutOfRange { what: "destination height", .. })
        ));
        assert!(VortexError::EntryBlocked { angle: 1 }.to_string().contains("angle 1"));
        assert!(VortexError::OutOfRange { what: "height", value: 9 }
            .to_string()
            .contains("height 9"));
    }

    #[test]
    fn saturation_run_conserves_packets() {
        // Offered load at every angle for many slots: injected = delivered
        // + still in flight; nothing vanishes.
        let mut dv = fabric();
        let mut injected = 0u64;
        let mut delivered = 0u64;
        for slot in 0..200u64 {
            for a in 0..4 {
                let dest = ((slot + u64::from(a) * 3) % 8) as u32;
                if dv.inject(Packet::new(injected, dest, 0), a).is_ok() {
                    injected += 1;
                }
            }
            delivered += dv.step().len() as u64;
        }
        delivered += dv.run_until_drained(1_000).len() as u64;
        assert_eq!(dv.in_flight(), 0);
        assert_eq!(injected, delivered, "packet conservation");
        assert_eq!(dv.stats().delivered, delivered);
        assert!(dv.stats().latency.mean() >= 3.0);
        assert!(dv.stats().throughput() > 0.0);
    }

    #[test]
    fn occupancy_reporting() {
        let mut dv = fabric();
        dv.try_inject_at(Packet::new(0, 7, 0), 0, 0).unwrap();
        assert_eq!(dv.cylinder_occupancy(0), 1);
        assert_eq!(dv.cylinder_occupancy(1), 0);
        dv.step();
        // After one slot the packet has descended (bit matched or crossed).
        assert_eq!(dv.in_flight(), 1);
        assert_eq!(dv.slot(), 1);
        assert!(format!("{:?}", dv.params()).contains("cylinders: 3"));
    }

    #[test]
    fn wavelengths_are_preserved() {
        let mut dv = fabric();
        dv.inject(Packet::new(0, 3, 7), 0).unwrap();
        let out = dv.run_until_drained(100);
        assert_eq!(out[0].packet.wavelength().0, 7);
    }
}
