//! Data Vortex topology parameters and node addressing.

use core::fmt;

/// Geometry of a Data Vortex fabric.
///
/// `cylinders` (`C`) fixes the address length: the fabric routes to
/// `H = 2^C` output heights. `angles` (`A`) sets the circumference of each
/// cylinder — more angles mean more virtual-buffer capacity and fewer
/// collisions at the cost of latency.
///
/// # Examples
///
/// ```
/// use vortex::VortexParams;
///
/// let p = VortexParams::eight_node();
/// assert_eq!(p.heights(), 8);
/// assert_eq!(p.cylinders(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VortexParams {
    cylinders: u32,
    angles: u32,
}

impl VortexParams {
    /// Creates a geometry with `cylinders` levels and `angles` positions
    /// per cylinder.
    ///
    /// # Panics
    ///
    /// Panics if `cylinders` is 0 or > 16, or `angles` < 2.
    pub fn new(cylinders: u32, angles: u32) -> Self {
        assert!((1..=16).contains(&cylinders), "cylinders must be 1..=16");
        assert!(angles >= 2, "need at least 2 angles");
        VortexParams { cylinders, angles }
    }

    /// The 8-node fabric of the paper's reference \[4\] (Lu et al., an
    /// "Eight-Node Data Vortex Switching Fabric"): 3 cylinders × 4 angles.
    pub fn eight_node() -> Self {
        VortexParams::new(3, 4)
    }

    /// A larger research-scale fabric: 5 cylinders × 8 angles (32 ports).
    pub fn thirty_two_node() -> Self {
        VortexParams::new(5, 8)
    }

    /// Number of cylinders (address bits).
    pub fn cylinders(&self) -> u32 {
        self.cylinders
    }

    /// Number of angles per cylinder.
    pub fn angles(&self) -> u32 {
        self.angles
    }

    /// Number of heights (`2^cylinders`) — the port count.
    pub fn heights(&self) -> u32 {
        1 << self.cylinders
    }

    /// Total node count: `(cylinders + 1) × angles × heights` (the extra
    /// cylinder is the output stage).
    pub fn node_count(&self) -> usize {
        (self.cylinders as usize + 1) * self.angles as usize * self.heights() as usize
    }

    /// The height-bit index fixed at cylinder `c` (MSB first: cylinder 0
    /// fixes the most significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `c >= cylinders`.
    pub fn bit_for_cylinder(&self, c: u32) -> u32 {
        assert!(c < self.cylinders, "cylinder out of range");
        self.cylinders - 1 - c
    }

    /// Whether height `h`'s cylinder-`c` bit already matches destination
    /// `dest`'s.
    pub fn bit_matches(&self, c: u32, h: u32, dest: u32) -> bool {
        let bit = self.bit_for_cylinder(c);
        (h >> bit) & 1 == (dest >> bit) & 1
    }

    /// The height reached by a same-cylinder hop at cylinder `c` from
    /// height `h`: the node with the cylinder bit toggled, giving the
    /// packet a chance to fix the bit on the next angle.
    pub fn crossing_height(&self, c: u32, h: u32) -> u32 {
        h ^ (1 << self.bit_for_cylinder(c))
    }

    /// Validates a height value.
    pub fn height_in_range(&self, h: u32) -> bool {
        h < self.heights()
    }
}

impl fmt::Display for VortexParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DataVortex C={} A={} H={} ({} nodes)",
            self.cylinders,
            self.angles,
            self.heights(),
            self.node_count()
        )
    }
}

/// Address of one routing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeAddr {
    /// Cylinder index (0 = outermost/entry).
    pub cylinder: u32,
    /// Angle position around the cylinder.
    pub angle: u32,
    /// Height within the cylinder.
    pub height: u32,
}

impl NodeAddr {
    /// Creates a node address.
    pub fn new(cylinder: u32, angle: u32, height: u32) -> Self {
        NodeAddr { cylinder, angle, height }
    }

    /// Linear index of this node within a fabric of geometry `p`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for `p` (cylinder may equal
    /// `p.cylinders()` — the output stage).
    pub fn index(&self, p: &VortexParams) -> usize {
        assert!(self.cylinder <= p.cylinders(), "cylinder out of range");
        assert!(self.angle < p.angles(), "angle out of range");
        assert!(self.height < p.heights(), "height out of range");
        ((self.cylinder * p.angles() + self.angle) * p.heights() + self.height) as usize
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(c{},a{},h{})", self.cylinder, self.angle, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        let p = VortexParams::eight_node();
        assert_eq!(p.cylinders(), 3);
        assert_eq!(p.angles(), 4);
        assert_eq!(p.heights(), 8);
        assert_eq!(p.node_count(), 4 * 4 * 8);
        assert_eq!(p.to_string(), "DataVortex C=3 A=4 H=8 (128 nodes)");
        let big = VortexParams::thirty_two_node();
        assert_eq!(big.heights(), 32);
    }

    #[test]
    fn bit_fixing_is_msb_first() {
        let p = VortexParams::eight_node();
        assert_eq!(p.bit_for_cylinder(0), 2);
        assert_eq!(p.bit_for_cylinder(1), 1);
        assert_eq!(p.bit_for_cylinder(2), 0);
    }

    #[test]
    fn bit_matching() {
        let p = VortexParams::eight_node();
        // dest 0b101: cylinder 0 checks bit 2 (=1).
        assert!(p.bit_matches(0, 0b100, 0b101));
        assert!(!p.bit_matches(0, 0b000, 0b101));
        // cylinder 2 checks bit 0 (=1).
        assert!(p.bit_matches(2, 0b001, 0b101));
        assert!(!p.bit_matches(2, 0b000, 0b101));
    }

    #[test]
    fn crossing_toggles_exactly_the_cylinder_bit() {
        let p = VortexParams::eight_node();
        assert_eq!(p.crossing_height(0, 0b000), 0b100);
        assert_eq!(p.crossing_height(1, 0b000), 0b010);
        assert_eq!(p.crossing_height(2, 0b111), 0b110);
        // Crossing twice returns home.
        for c in 0..3 {
            for h in 0..8 {
                assert_eq!(p.crossing_height(c, p.crossing_height(c, h)), h);
            }
        }
    }

    #[test]
    fn node_indexing_is_bijective() {
        let p = VortexParams::eight_node();
        let mut seen = std::collections::HashSet::new();
        for c in 0..=p.cylinders() {
            for a in 0..p.angles() {
                for h in 0..p.heights() {
                    let idx = NodeAddr::new(c, a, h).index(&p);
                    assert!(idx < p.node_count());
                    assert!(seen.insert(idx), "duplicate index {idx}");
                }
            }
        }
        assert_eq!(seen.len(), p.node_count());
    }

    #[test]
    fn height_range() {
        let p = VortexParams::eight_node();
        assert!(p.height_in_range(7));
        assert!(!p.height_in_range(8));
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeAddr::new(1, 2, 3).to_string(), "(c1,a2,h3)");
    }

    #[test]
    #[should_panic(expected = "cylinders must be 1..=16")]
    fn zero_cylinders_panics() {
        let _ = VortexParams::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "angle out of range")]
    fn bad_angle_panics() {
        let p = VortexParams::eight_node();
        let _ = NodeAddr::new(0, 9, 0).index(&p);
    }
}
