//! Traffic generators and load-sweep harnesses.
//!
//! The test bed evaluates "various signaling protocols … for the
//! transmission of data packets through an optical switching network"; the
//! workloads here are the standard interconnect patterns used for that kind
//! of characterization: uniform random, permutation, and hotspot.

use rng::{Rng, SeedTree, StreamId};

use crate::fabric::DataVortex;
use crate::packet::Packet;
use crate::stats::FabricStats;
use crate::topology::VortexParams;

/// Substream identity for load-generator arrival/destination draws.
pub const TRAFFIC_STREAM: StreamId = StreamId::named("vortex.traffic");

/// A traffic pattern for fabric characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Pattern {
    /// Each packet targets a uniformly random output.
    UniformRandom,
    /// Input angle `a` always targets output `(a * heights/angles + offset) % heights`.
    Permutation {
        /// Fixed offset added to the mapping.
        offset: u32,
    },
    /// A fraction of traffic converges on one hot output; the rest is
    /// uniform.
    Hotspot {
        /// The hot output height.
        target: u32,
        /// Fraction of packets aimed at the hot port (0..=1).
        fraction: f64,
    },
}

/// Result of one load point in a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load per input per slot (0..=1).
    pub offered_load: f64,
    /// Fabric statistics at this load.
    pub stats: FabricStats,
}

impl LoadPoint {
    /// Accepted throughput normalized per output per slot.
    pub fn normalized_throughput(&self, params: &VortexParams) -> f64 {
        self.stats.throughput() / params.heights() as f64
    }
}

/// Drives a fabric with `pattern` traffic at `offered_load` injections per
/// angle per slot for `warm_slots + measure_slots`, then drains; returns
/// statistics from the whole run.
///
/// # Panics
///
/// Panics if `offered_load` is outside `[0, 1]` or a hotspot target is out
/// of range.
pub fn run_load(
    params: VortexParams,
    pattern: Pattern,
    offered_load: f64,
    measure_slots: u64,
    seed: u64,
) -> FabricStats {
    assert!((0.0..=1.0).contains(&offered_load), "offered load must be in [0, 1]");
    if let Pattern::Hotspot { target, fraction } = pattern {
        assert!(params.height_in_range(target), "hotspot target out of range");
        assert!((0.0..=1.0).contains(&fraction), "hotspot fraction must be in [0, 1]");
    }
    let mut dv = DataVortex::new(params);
    let mut rng = SeedTree::new(seed).derive(TRAFFIC_STREAM).rng();
    let mut next_id = 0u64;
    for _ in 0..measure_slots {
        for a in 0..params.angles() {
            if rng.f64() >= offered_load {
                continue;
            }
            let dest = destination(&params, pattern, a, &mut rng);
            // Blocked injections are counted by the fabric and dropped —
            // matching an optical source that cannot hold a packet.
            let _ = dv.inject(Packet::new(next_id, dest, (a % 8) as u8), a);
            next_id += 1;
        }
        dv.step();
    }
    dv.run_until_drained(10_000);
    dv.stats().clone()
}

fn destination(params: &VortexParams, pattern: Pattern, angle: u32, rng: &mut Rng) -> u32 {
    match pattern {
        Pattern::UniformRandom => rng.range_u32(0..params.heights()),
        Pattern::Permutation { offset } => {
            (angle * params.heights() / params.angles() + offset) % params.heights()
        }
        Pattern::Hotspot { target, fraction } => {
            if rng.f64() < fraction {
                target
            } else {
                rng.range_u32(0..params.heights())
            }
        }
    }
}

/// Sweeps offered load across `points` values in `(0, max_load]` and
/// returns a [`LoadPoint`] per value — the latency/throughput-vs-load curve
/// every switching-fabric evaluation plots.
pub fn load_sweep(
    params: VortexParams,
    pattern: Pattern,
    max_load: f64,
    points: usize,
    measure_slots: u64,
    seed: u64,
) -> Vec<LoadPoint> {
    assert!(points > 0, "sweep needs at least one point");
    let tree = SeedTree::new(seed).stream("vortex.traffic.load-sweep");
    (1..=points)
        .map(|i| {
            let offered_load = max_load * i as f64 / points as f64;
            LoadPoint {
                offered_load,
                stats: run_load(
                    params,
                    pattern,
                    offered_load,
                    measure_slots,
                    tree.index(i as u64).seed(),
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_load_delivers_everything() {
        let stats = run_load(VortexParams::eight_node(), Pattern::UniformRandom, 0.3, 300, 1);
        assert!(stats.injected > 200, "injected {}", stats.injected);
        assert_eq!(stats.delivered, stats.injected, "all drained packets delivered");
        assert!(stats.latency.mean() >= 3.0);
    }

    #[test]
    fn permutation_traffic_has_low_deflection() {
        // A balanced permutation avoids output contention entirely, so
        // deflections stay minimal compared with a hotspot.
        let perm =
            run_load(VortexParams::eight_node(), Pattern::Permutation { offset: 0 }, 0.5, 300, 2);
        let hot = run_load(
            VortexParams::eight_node(),
            Pattern::Hotspot { target: 3, fraction: 0.8 },
            0.5,
            300,
            2,
        );
        assert!(perm.mean_deflections() < hot.mean_deflections());
        assert!(perm.latency.mean() < hot.latency.mean());
    }

    #[test]
    fn latency_rises_with_load() {
        let sweep = load_sweep(VortexParams::eight_node(), Pattern::UniformRandom, 0.9, 3, 400, 7);
        assert_eq!(sweep.len(), 3);
        let lat: Vec<f64> = sweep.iter().map(|p| p.stats.latency.mean()).collect();
        assert!(lat[2] > lat[0], "latency should rise with load: {lat:?}");
        // Normalized throughput is a sane fraction.
        for p in &sweep {
            let t = p.normalized_throughput(&VortexParams::eight_node());
            assert!((0.0..=1.0).contains(&t));
        }
    }

    #[test]
    fn hotspot_saturates_one_port() {
        let stats = run_load(
            VortexParams::eight_node(),
            Pattern::Hotspot { target: 0, fraction: 1.0 },
            1.0,
            200,
            9,
        );
        // One output port accepts at most one packet per slot, so heavy
        // hotspot load must block injections (fabric full of circulators).
        assert!(stats.injection_blocked > 0);
        assert_eq!(stats.delivered, stats.injected); // all eventually drain
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_load(VortexParams::eight_node(), Pattern::UniformRandom, 0.4, 100, 5);
        let b = run_load(VortexParams::eight_node(), Pattern::UniformRandom, 0.4, 100, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn bigger_fabric_runs() {
        let stats = run_load(VortexParams::thirty_two_node(), Pattern::UniformRandom, 0.2, 100, 3);
        assert!(stats.delivered > 0);
        assert_eq!(stats.delivered, stats.injected);
    }

    #[test]
    #[should_panic(expected = "offered load must be in [0, 1]")]
    fn bad_load_panics() {
        let _ = run_load(VortexParams::eight_node(), Pattern::UniformRandom, 1.5, 10, 0);
    }

    #[test]
    #[should_panic(expected = "hotspot target out of range")]
    fn bad_hotspot_panics() {
        let _ = run_load(
            VortexParams::eight_node(),
            Pattern::Hotspot { target: 99, fraction: 0.5 },
            0.5,
            10,
            0,
        );
    }
}
