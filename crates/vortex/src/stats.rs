//! Fabric performance statistics.

use core::fmt;

/// Latency accumulator (in slot times).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LatencyStats { count: 0, total: 0, min: u64::MAX, max: 0 }
    }

    /// Records one delivery latency (slots).
    pub fn record(&mut self, slots: u64) {
        self.count += 1;
        self.total += slots;
        self.min = self.min.min(slots);
        self.max = self.max.max(slots);
    }

    /// Number of recorded deliveries.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (slots); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Minimum latency.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn min(&self) -> u64 {
        assert!(self.count > 0, "min of empty LatencyStats");
        self.min
    }

    /// Maximum latency (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "no deliveries")
        } else {
            write!(
                f,
                "{} delivered, latency {:.2} slots mean ({}..{})",
                self.count,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

/// Aggregate fabric statistics over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FabricStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered to their destination height.
    pub delivered: u64,
    /// Injections refused because the entry node was occupied.
    pub injection_blocked: u64,
    /// Total deflection hops across all packets.
    pub total_deflections: u64,
    /// Slots simulated.
    pub slots: u64,
    /// Delivery latency distribution.
    pub latency: LatencyStats,
}

impl FabricStats {
    /// Fraction of injected packets delivered so far.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Mean deflections per delivered packet.
    pub fn mean_deflections(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_deflections as f64 / self.delivered as f64
        }
    }

    /// Delivered packets per slot (aggregate throughput).
    pub fn throughput(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.delivered as f64 / self.slots as f64
        }
    }
}

impl fmt::Display for FabricStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {}, delivered {} ({:.1}%), blocked {}, {:.2} deflections/pkt, {:.3} pkt/slot; {}",
            self.injected,
            self.delivered,
            100.0 * self.delivery_ratio(),
            self.injection_blocked,
            self.mean_deflections(),
            self.throughput(),
            self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_accumulation() {
        let mut l = LatencyStats::new();
        assert_eq!(l.mean(), 0.0);
        assert_eq!(l.max(), 0);
        l.record(4);
        l.record(8);
        l.record(6);
        assert_eq!(l.count(), 3);
        assert!((l.mean() - 6.0).abs() < 1e-12);
        assert_eq!(l.min(), 4);
        assert_eq!(l.max(), 8);
        assert!(l.to_string().contains("3 delivered"));
        assert_eq!(LatencyStats::new().to_string(), "no deliveries");
    }

    #[test]
    #[should_panic(expected = "min of empty")]
    fn empty_min_panics() {
        let _ = LatencyStats::new().min();
    }

    #[test]
    fn fabric_ratios() {
        let mut s = FabricStats::default();
        assert_eq!(s.delivery_ratio(), 0.0);
        assert_eq!(s.mean_deflections(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        s.injected = 10;
        s.delivered = 8;
        s.total_deflections = 16;
        s.slots = 4;
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
        assert!((s.mean_deflections() - 2.0).abs() < 1e-12);
        assert!((s.throughput() - 2.0).abs() < 1e-12);
        assert!(s.to_string().contains("80.0%"));
    }
}
