#!/usr/bin/env bash
# Hermetic CI: every step runs with --offline — the workspace has no
# third-party dependencies, so a fresh checkout must build, test, lint,
# and document with zero network access. (The criterion benches live
# outside the workspace in crates/bench-criterion and are exercised
# separately, where a registry is available.)
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo clippy --offline -- -D warnings
# First-party static analysis: determinism, unit-safety, and panic-freedom
# contracts (rules R1–R7; see DESIGN.md "Enforced invariants").
cargo run -p gigatest-xlint --release --offline
cargo doc --offline --no-deps
cargo fmt --check
