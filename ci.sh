#!/usr/bin/env bash
# Hermetic CI: every step runs with --offline — the workspace has no
# third-party dependencies, so a fresh checkout must build, test, and lint
# with zero network access. (The criterion benches live outside the
# workspace in crates/bench-criterion and are exercised separately, where a
# registry is available.)
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo clippy --offline -- -D warnings
cargo fmt --check
