#!/usr/bin/env bash
# Hermetic CI: every step runs with --offline — the workspace has no
# third-party dependencies, so a fresh checkout must build, test, lint,
# and document with zero network access. (The criterion benches live
# outside the workspace in crates/bench-criterion and are exercised
# separately, where a registry is available.)
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
# The full suite must pass regardless of pool width: once serially, once
# with the exec engine fanned out to four workers.
EXEC_THREADS=1 cargo test -q --offline
EXEC_THREADS=4 cargo test -q --offline
cargo clippy --offline -- -D warnings
# First-party static analysis: determinism, unit-safety, panic-freedom,
# job-purity, and dataflow contracts (rules R1–R8 plus the call-graph and
# taint passes; see DESIGN.md "Enforced invariants", "Semantic analysis
# layer", and "Dataflow analysis layer"). The rule fixtures under
# tests/xlint_fixtures — one seeded firing and one reasoned suppression
# per rule, including the three dataflow rules — ran inside the test
# suites above (crates/xlint/tests). Run the real tree twice through the
# incremental cache — cold, then warm — and demand byte-identical
# findings documents (the wire-taint findings and the blocking/codec
# facts are cached per file, so this diff pins the dataflow layer too),
# then emit the SARIF artifact.
rm -f target/xlint-cache.json
xlint_dir="$(mktemp -d)"
xlint_t0=$(date +%s%N)
cargo run -p gigatest-xlint --release --offline -- --format json \
  > "$xlint_dir/cold.json" 2> "$xlint_dir/cold.log"
xlint_t1=$(date +%s%N)
cargo run -p gigatest-xlint --release --offline -- --format json \
  > "$xlint_dir/warm.json" 2> "$xlint_dir/warm.log"
xlint_t2=$(date +%s%N)
grep '^xlint:' "$xlint_dir/cold.log" "$xlint_dir/warm.log" || true
diff "$xlint_dir/cold.json" "$xlint_dir/warm.json"
echo "xlint: warm-cache findings byte-identical to cold run"
# Lint-speed artifact: cold vs warm wall time plus the finding census,
# in the same committed BENCH_*.json family as the service benches. The
# byte-identity diff above is the correctness gate; this records what
# the cache buys.
xlint_summary="$(grep '^xlint:' "$xlint_dir/cold.log" | head -n 1)"
xlint_files="$(echo "$xlint_summary" | sed -n 's/^xlint: \([0-9]*\) files.*/\1/p')"
xlint_deny="$(echo "$xlint_summary" | sed -n 's/.*), \([0-9]*\) deny.*/\1/p')"
xlint_warn="$(echo "$xlint_summary" | sed -n 's/.* \([0-9]*\) warn.*/\1/p')"
xlint_supp="$(echo "$xlint_summary" | sed -n 's/.*(\([0-9]*\) suppressed.*/\1/p')"
xlint_warm_hits="$(grep '^xlint:' "$xlint_dir/warm.log" | head -n 1 \
  | sed -n 's/.*(\([0-9]*\) from cache.*/\1/p')"
cat > BENCH_xlint.json <<EOF
{
  "cold_ms": $(( (xlint_t1 - xlint_t0) / 1000000 )),
  "warm_ms": $(( (xlint_t2 - xlint_t1) / 1000000 )),
  "files": ${xlint_files:-0},
  "warm_cache_hits": ${xlint_warm_hits:-0},
  "findings": { "deny": ${xlint_deny:-0}, "warn": ${xlint_warn:-0}, "suppressed": ${xlint_supp:-0} }
}
EOF
echo "wrote BENCH_xlint.json"
cargo run -p gigatest-xlint --release --offline -- --format sarif > xlint.sarif
rm -rf "$xlint_dir"
# A suppression must carry its justification. The linter rejects a
# reasonless allow that covers a finding (bad-allow); this catches the
# rest — an allow with no reason is debt even when nothing fires under
# it today. Fixtures are exempt: they seed reasonless allows on purpose.
if grep -rn "xlint::allow([a-z-]*)" --include='*.rs' crates tests \
    | grep -v "tests/xlint_fixtures" | grep -v "crates/xlint/src" \
    | grep -v "crates/xlint/tests"; then
  echo "ci: reasonless xlint::allow — every suppression needs a reason" >&2
  exit 1
fi
echo "xlint: every suppression carries a reason"
cargo doc --offline --no-deps
cargo fmt --check
# Thread-count invariance canary: the deterministic sweep outputs (shmoo
# plot, wafer map, eye scan, jitter report, BER digest) must be
# byte-identical whether the exec pool runs 1 worker or 4.
canary_dir="$(mktemp -d)"
trap 'rm -rf "$canary_dir"' EXIT
EXEC_THREADS=1 cargo run -q --release --offline -p gigatest-bench --bin bench_exec -- --canary > "$canary_dir/t1.txt"
EXEC_THREADS=4 cargo run -q --release --offline -p gigatest-bench --bin bench_exec -- --canary > "$canary_dir/t4.txt"
diff "$canary_dir/t1.txt" "$canary_dir/t4.txt"
echo "canary: sweep outputs identical at EXEC_THREADS=1 and 4"
# Service-layer invariance: the atd loopback integration suite (golden
# THP/1 wire vectors plus the in-memory protocol walk) ran under both
# thread counts above; here the load generator's deterministic canary —
# result digests, cache/batch counters — must also be byte-identical
# whether the daemon's pool runs 1 worker or 4.
EXEC_THREADS=1 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --canary > "$canary_dir/atd1.txt"
EXEC_THREADS=4 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --canary > "$canary_dir/atd4.txt"
diff "$canary_dir/atd1.txt" "$canary_dir/atd4.txt"
echo "canary: atd service outputs identical at EXEC_THREADS=1 and 4"
# THP/2 invariance: the same mix through pipelined sessions — chunked
# streaming, out-of-order completion, reassembly — must reproduce the
# exact digests of the serial canary's daemon regardless of pool width.
EXEC_THREADS=1 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --pipeline --canary > "$canary_dir/thp2_1.txt"
EXEC_THREADS=4 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --pipeline --canary > "$canary_dir/thp2_4.txt"
diff "$canary_dir/thp2_1.txt" "$canary_dir/thp2_4.txt"
echo "canary: atd pipelined outputs identical at EXEC_THREADS=1 and 4"
# Farm invariance: the coordinator's merged digests must not depend on
# the fleet shape (1 head = pass-through, 3 heads = shard + re-merge) or
# on the pool width inside each head. Two diffs pin both axes.
EXEC_THREADS=4 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --farm 1 --canary > "$canary_dir/farm_h1.txt"
EXEC_THREADS=4 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --farm 3 --canary > "$canary_dir/farm_h3.txt"
diff "$canary_dir/farm_h1.txt" "$canary_dir/farm_h3.txt"
echo "canary: farm outputs identical at 1 and 3 heads"
EXEC_THREADS=1 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --farm 3 --canary > "$canary_dir/farm_t1.txt"
diff "$canary_dir/farm_t1.txt" "$canary_dir/farm_h3.txt"
echo "canary: farm outputs identical at EXEC_THREADS=1 and 4"
# Store invariance: a store-backed daemon is killed after half the
# campaign, its newest segment gets a torn record tail (a crash
# mid-write), and a fresh daemon reboots over the same directory to
# serve the full stream. The output must be byte-identical at 1 and 4
# workers, and the per-spec digest table must match the in-memory
# canary's exactly — the durable tier may never change a result byte,
# even across a crash/recover boundary.
EXEC_THREADS=1 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --restart --canary > "$canary_dir/store_t1.txt"
EXEC_THREADS=4 cargo run -q --release --offline -p gigatest-atd-farm --bin atd-load -- --restart --canary > "$canary_dir/store_t4.txt"
diff "$canary_dir/store_t1.txt" "$canary_dir/store_t4.txt"
echo "canary: store outputs identical at EXEC_THREADS=1 and 4"
grep -E '^[a-z]+ +[0-9a-f]{16} [0-9a-f]{16}' "$canary_dir/atd1.txt" > "$canary_dir/mem_digests.txt"
grep -E '^[a-z]+ +[0-9a-f]{16} [0-9a-f]{16}' "$canary_dir/store_t1.txt" > "$canary_dir/store_digests.txt"
diff "$canary_dir/mem_digests.txt" "$canary_dir/store_digests.txt"
echo "canary: store-backed digests identical to the in-memory run across a kill/restart"
