//! Quickstart: boot the low-cost test system and measure your first eye.
//!
//! ```text
//! cargo run --release -p gigatest-ate --example quickstart
//! ```
//!
//! This walks the paper's basic flow end to end: program the DLC's FLASH
//! over JTAG, power up, run a PRBS eye test at 2.5 Gbps through the
//! calibrated PECL chain, and print the measured eye next to the paper's
//! Fig. 7 numbers — plus an ASCII persistence plot of the eye itself.

use ate::{TestProgram, TestSystem};
use pstime::DataRate;
use signal::render::render_eye;
use signal::EyeRaster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Gigatest quickstart ==\n");

    // 1. Bring up the Optical Test Bed flavor of the system. Under the
    //    hood: JTAG-program the configuration FLASH, boot the FPGA from
    //    it, attach the calibrated PECL signal chain.
    let mut system = TestSystem::optical_testbed()?;
    println!("system up: {}", system.chain());

    // 2. Describe the test the way ATE programs do: pattern + timing +
    //    levels.
    let rate = DataRate::from_gbps(2.5);
    let program = TestProgram::prbs_eye(rate, 4_096);

    // 3. Run it and look at the eye.
    let result = system.run(&program, 2005)?;
    println!("\nmeasured: {}", result.eye);
    println!("paper    (Fig. 7): eye 0.88 UI, jitter 46.7 ps p-p\n");

    // 4. Render the eye like the paper's oscilloscope photo.
    let raster = EyeRaster::build(&result.waveform, rate, 72, 18);
    println!("{}", render_eye(&raster));

    // 5. The analytic budget predicted this before we measured anything.
    let predicted = system.predicted_opening(rate, 2_000);
    println!("budget prediction: {predicted} (measured {})", result.eye.opening_ui());
    Ok(())
}
