//! Continuous burst streaming and signaling-protocol comparison.
//!
//! ```text
//! cargo run --release -p gigatest-ate --example burst_protocol
//! ```
//!
//! Two things the paper's test bed does all day: run back-to-back packet
//! slots as one continuous stream (receiver re-locking on every slot
//! window), and compare slot-layout protocols for efficiency versus
//! robustness ("various signaling protocols are evaluated", §1).

use testbed::burst::StreamReceiver;
use testbed::e2e::{run_stream, E2eConfig};
use testbed::frame::{PacketSlot, SlotTiming};
use testbed::protocol::{evaluate_catalog, ReceiverRequirements};
use testbed::Transmitter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: a continuous 12-slot burst, decoded slot by slot.
    println!("== Continuous burst streaming ==\n");
    let timing = SlotTiming::paper();
    let mut tx = Transmitter::new(timing)?;
    let slots: Vec<PacketSlot> = (0..12)
        .map(|i| {
            let w = (i as u32).wrapping_mul(0x9E37_79B9);
            PacketSlot::new(timing, [w, !w, w.rotate_left(11), w ^ 0xFFFF], (i % 8) as u8)
        })
        .collect();
    let stream = tx.transmit_stream(&slots, 2005)?;
    println!(
        "burst: {} slots, {} total, continuous clock with {} edges",
        stream.n_slots(),
        stream.duration(),
        stream.clock.digital().num_edges()
    );
    let rx = StreamReceiver::new(timing);
    let decoded = rx.receive_stream(&stream)?;
    let clean = decoded
        .iter()
        .zip(&slots)
        .filter(|(got, sent)| got.payload == sent.payload() && got.address == sent.address())
        .count();
    println!("decoded {} windows, {} payloads clean\n", decoded.len(), clean);

    // Part 2: the same stream through the Data Vortex, end to end.
    let report = run_stream(&E2eConfig { packets: 24, seed: 7, ..E2eConfig::default() })?;
    println!("streamed through the fabric: {report}\n");

    // Part 3: protocol catalog against two networks.
    println!("== Signaling protocols vs the test-bed receiver ==");
    for eval in evaluate_catalog(&ReceiverRequirements::testbed(), 3)? {
        println!("  {eval}");
    }
    println!("\n== The same protocols vs a demanding network ==");
    for eval in evaluate_catalog(&ReceiverRequirements::demanding(), 3)? {
        println!("  {eval}");
    }
    println!("\nEfficiency is free only when the network's margins are paid for —");
    println!("the Fig. 4 layout is the paper's chosen point on that curve.");
    Ok(())
}
