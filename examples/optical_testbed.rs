//! The Optical Test Bed scenario (paper §3): framed packets through the
//! Data Vortex optical switch, end to end.
//!
//! ```text
//! cargo run --release -p gigatest-ate --example optical_testbed
//! ```
//!
//! Builds Fig. 4 packet slots (64 × 400 ps with guard bands, pre/post
//! clocks, frame bit and header), transmits them over ten wavelengths,
//! routes them through an 8-node Data Vortex, and decodes the payloads at
//! the output ports — first with healthy optics, then with the launch
//! power starved to show the test bed catching a sick link.

use testbed::e2e::{run, E2eConfig};
use testbed::frame::{PacketSlot, SlotTiming};
use testbed::{Receiver, Transmitter};
use vortex::VortexParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Optical Test Bed: DLC + PECL driving a Data Vortex ==\n");

    // The Fig. 4 slot structure, exactly.
    let timing = SlotTiming::paper();
    println!(
        "slot {} = dead {} + guard {} + window {} + guard {}",
        timing.slot_duration(),
        timing.dead_duration(),
        timing.guard_duration(),
        timing.window_duration(),
        timing.guard_duration(),
    );

    // One slot, by hand: transmit and decode it in electrical loopback.
    let mut tx = Transmitter::new(timing)?;
    let rx = Receiver::new(timing);
    let slot =
        PacketSlot::new(timing, [0xCAFE_F00D, 0x0123_4567, 0xDEAD_BEEF, 0x8BAD_F00D], 0b0101);
    let sent = tx.transmit_slot(&slot, 7)?;
    let got = rx.receive(&sent)?;
    println!(
        "\nloopback slot: payload {:08X?} address {:04b} frame_ok {}",
        got.payload, got.address, got.frame_ok
    );
    assert_eq!(got.payload, slot.payload());

    // Now the full path: TX -> optics -> Data Vortex -> RX, 64 packets.
    let healthy = E2eConfig {
        packets: 64,
        fabric: VortexParams::eight_node(),
        seed: 2005,
        ..E2eConfig::default()
    };
    let report = run(&healthy)?;
    println!("\nhealthy optics : {report}");

    // Starve the lasers: the same test bed now shows the failure.
    let starved = E2eConfig { p_on_uw: 3.0, extinction_ratio: 1.3, rx_noise_mv: 25.0, ..healthy };
    let report = run(&starved)?;
    println!("starved optics : {report}");
    println!("\nThe test bed exists exactly for this: quantifying the Data");
    println!("Vortex's signal-condition margins with programmable stimuli.");
    Ok(())
}
