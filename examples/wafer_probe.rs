//! The miniature wafer-prober scenario (paper §4): at-speed BIST testing
//! of WLP dies, a strobe/threshold shmoo, and array-parallel probing.
//!
//! ```text
//! cargo run --release -p gigatest-ate --example wafer_probe
//! ```

use minitester::{
    Defect, EtCapture, MiniTester, MiniTesterDatapath, ProbeArray, ShmooConfig, ShmooPlot,
    TestPlan, WlpChannel, WlpDut,
};
use pstime::{DataRate, Millivolts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Miniature wafer-probe tester ==\n");
    let rate5 = DataRate::from_gbps(5.0);

    // A good die: loopback at the 5 Gbps target rate.
    let mut tester = MiniTester::new()?;
    let outcome = tester.run(&TestPlan::prbs_loopback(rate5, 2_048), 1)?;
    println!("good die, 5 Gbps loopback   : {outcome}");

    // A cracked lead (stuck input): caught by the on-die PRBS checker.
    tester.insert_dut(
        WlpDut::good(WlpChannel::interposer()).with_defect(Defect::StuckInput { level: true }),
    );
    let outcome = tester.run(&TestPlan::prbs_bist(rate5, 2_048), 2)?;
    println!("stuck-input die, 5 Gbps BIST: {outcome}");

    // A degraded lead: passes at 1 Gbps, fails the at-speed margin test.
    tester.insert_dut(WlpDut::good(WlpChannel::degraded()));
    let slow = tester.run(&TestPlan::prbs_loopback(DataRate::from_gbps(1.0), 2_048), 3)?;
    let mut at_speed_plan = TestPlan::prbs_loopback(rate5, 2_048);
    at_speed_plan.min_eye_ui = 0.8;
    let fast = tester.run(&at_speed_plan, 3)?;
    println!("degraded die, 1 Gbps        : {slow}");
    println!("degraded die, 5 Gbps margin : {fast}");

    // The shmoo: strobe phase (10 ps steps) x threshold (50 mV steps).
    println!("\nshmoo of the stimulus at 2.5 Gbps ('*' = pass):");
    let rate = DataRate::from_gbps(2.5);
    let mut path = MiniTesterDatapath::new()?;
    let expected = path.expected_prbs(rate, 1_024)?;
    let wave = path.prbs_stimulus(rate, 1_024, 5)?;
    let plot = ShmooPlot::run(&wave, rate, &expected, &ShmooConfig::pecl(), 5)?;
    println!("{plot}");
    if let Some((v, phase)) = plot.best_operating_point() {
        println!("\nbest operating point: threshold {v}, strobe at {phase}");
    }

    // The 10 ps equivalent-time eye scan the sampler gives us for free.
    let scan = EtCapture::new().eye_scan(&wave, rate, &expected, 5)?;
    println!("\nstrobe scan across one UI: {scan}");
    println!("eye opening from the scan: {}", scan.opening_ui()?);

    // Array probing (Fig. 13): the order-of-magnitude throughput claim.
    let serial = ProbeArray::new(1);
    let array = ProbeArray::new(16);
    println!(
        "\n{} vs single-site: {:.0}x throughput on a 256-die wafer",
        array,
        array.throughput_speedup(&serial, 256)
    );

    // A comparator-threshold defect for good measure.
    let mut t2 = MiniTester::new()?;
    t2.insert_dut(
        WlpDut::good(WlpChannel::interposer())
            .with_defect(Defect::ShiftedThreshold { offset: Millivolts::new(500) }),
    );
    let outcome = t2.run(&TestPlan::prbs_bist(rate, 1_024), 8)?;
    println!("\nshifted-threshold die, BIST : {outcome}");
    Ok(())
}
