//! Rate sweep: reproduce the paper's eye-opening progression across data
//! rates for both systems, with ASCII eyes.
//!
//! ```text
//! cargo run --release -p gigatest-ate --example eye_sweep
//! ```
//!
//! The paper's narrative in one table: the same hardware measured at
//! 1.0 / 2.5 / 4.0 / 5.0 Gbps, showing the eye closing as the fixed
//! ~25 ps timing error and finite rise times eat a growing fraction of the
//! shrinking unit interval.

use ate::{TestProgram, TestSystem};
use pstime::DataRate;
use signal::render::render_eye;
use signal::EyeRaster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Eye openings vs data rate ==\n");
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10}",
        "system", "Gbps", "jitter p-p", "opening", "paper"
    );

    let testbed_points = [(2.5, "0.88 UI"), (4.0, "0.81 UI")];
    let mini_points = [(1.0, "0.95 UI"), (2.5, "0.87 UI"), (5.0, "0.75 UI")];

    let mut testbed = TestSystem::optical_testbed()?;
    for (gbps, paper) in testbed_points {
        let rate = DataRate::from_gbps(gbps);
        let result = testbed.run(&TestProgram::prbs_eye(rate, 4_096), 42)?;
        println!(
            "{:<22} {:>8.1} {:>9.1} ps {:>12} {:>10}",
            "optical test bed",
            gbps,
            result.eye.jitter_pp().as_ps_f64(),
            result.eye.opening_ui().to_string(),
            paper
        );
    }

    let mut mini = TestSystem::mini_tester()?;
    let mut five_g_wave = None;
    for (gbps, paper) in mini_points {
        let rate = DataRate::from_gbps(gbps);
        let result = mini.run(&TestProgram::prbs_eye(rate, 4_096), 42)?;
        println!(
            "{:<22} {:>8.1} {:>9.1} ps {:>12} {:>10}",
            "mini-tester",
            gbps,
            result.eye.jitter_pp().as_ps_f64(),
            result.eye.opening_ui().to_string(),
            paper
        );
        if gbps == 5.0 {
            five_g_wave = Some(result.waveform);
        }
    }

    // Show the 5 Gbps eye (the paper's Fig. 19) as ASCII persistence.
    if let Some(wave) = five_g_wave {
        println!("\nmini-tester eye at 5.0 Gbps (Fig. 19):");
        let raster = EyeRaster::build(&wave, DataRate::from_gbps(5.0), 72, 18);
        println!("{}", render_eye(&raster));
    }

    println!("Shape check: same absolute jitter, shrinking UI — the opening");
    println!("degrades monotonically with rate, exactly as in the paper.");
    Ok(())
}
