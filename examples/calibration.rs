//! Calibration: how the system reaches its ±25 ps timing-accuracy claim.
//!
//! ```text
//! cargo run --release -p gigatest-ate --example calibration
//! ```
//!
//! Shows the two halves of the claim: the 10 ps vernier's edge-placement
//! audit (quantization + integral nonlinearity), and the multi-channel
//! deskew loop that nulls the clock-fanout spread.

use ate::calibration::{
    deskew_channels, paper_accuracy_target, placement_audit, worst_placement_error,
};
use pecl::ClockFanout;
use pstime::{DataRate, Duration};
use signal::JitterDecomposition;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Timing accuracy: the +/-25 ps claim ==\n");

    // 1. Edge placement across the full 10 ns range in odd 137 ps steps.
    let points = placement_audit(Duration::from_ns(10), Duration::from_ps(137))?;
    let worst = worst_placement_error(&points);
    println!(
        "placement audit: {} requests over 10 ns, worst error {} (claim: +/-25 ps)",
        points.len(),
        worst
    );
    for p in points.iter().take(5) {
        println!(
            "  requested {:>9} -> achieved {:>9} (err {:>6})",
            p.requested.to_string(),
            p.achieved.to_string(),
            p.error().to_string()
        );
    }
    println!("  ...\n");

    // 2. Channel deskew: the fanout ships with +/-25 ps of leg spread.
    let fanout = ClockFanout::new(8, Duration::from_ps(1));
    println!("uncalibrated fanout spread: {}", fanout.max_skew_spread());
    let result = deskew_channels(&fanout, DataRate::from_gbps(2.5), paper_accuracy_target())?;
    println!("after deskew: worst residual {} across 8 channels", result.worst_residual);
    println!("vernier codes: {:?}\n", result.codes);

    // 3. Verify the jitter budget itself by decomposition: measure an eye,
    //    split RJ from DJ, compare against the chain's analytic budget.
    use ate::{TestProgram, TestSystem};
    let mut system = TestSystem::optical_testbed()?;
    let rate = DataRate::from_gbps(2.5);
    let result = system.run(&TestProgram::prbs_eye(rate, 8_192), 77)?;
    let decomposition = JitterDecomposition::from_eye(&result.eye)?;
    println!("measured eye : {}", result.eye);
    println!("decomposition: {decomposition}");
    println!(
        "chain budget : RJ {} rms, DJ {} p-p",
        system.chain().rj_rms(),
        system.chain().dj_pp()
    );
    println!("\nThe decomposed RJ tracks the budget's quadrature sum; DJ(dd) reads");
    println!("below the linear-sum bound, as dual-Dirac always does for distributed");
    println!("(ISI) jitter. The virtual scope verifies the design, not assumes it.");
    Ok(())
}
