//! The Data Vortex switching fabric on its own: routing, virtual
//! buffering, and the latency-versus-load curve.
//!
//! ```text
//! cargo run --release -p gigatest-ate --example data_vortex
//! ```

use vortex::traffic::{load_sweep, run_load, Pattern};
use vortex::{DataVortex, Packet, VortexParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VortexParams::eight_node();
    println!("== {params} ==\n");

    // Watch one packet spiral through the cylinders.
    let mut dv = DataVortex::new(params);
    dv.try_inject_at(Packet::new(0, 0b111, 0), 0, 0b000)?;
    println!("routing h=000 -> h=111 (every height bit must be fixed):");
    let mut slot = 0;
    loop {
        let delivered = dv.step();
        slot += 1;
        if let Some(d) = delivered.first() {
            println!(
                "  delivered at slot {slot}: {} ({} deflections)",
                d.packet,
                d.packet.deflections()
            );
            break;
        }
        for c in 0..params.cylinders() {
            if dv.cylinder_occupancy(c) > 0 {
                println!("  slot {slot}: packet on cylinder {c}");
            }
        }
    }

    // A hotspot: eight packets to one port. The output takes one per slot;
    // the rest circulate — the fabric's bufferless "virtual buffering".
    let mut dv = DataVortex::new(params);
    for id in 0..8 {
        dv.inject(Packet::new(id, 5, (id % 4) as u8), (id % 4) as u32)?;
    }
    let out = dv.run_until_drained(100);
    println!("\nhotspot to port 5: {} packets in {} slots", out.len(), dv.slot());
    println!("  fabric stats: {}", dv.stats());

    // The latency-vs-load curve every switch evaluation plots.
    println!("\nuniform-random load sweep (300 measured slots each):");
    println!("{:>8} {:>12} {:>14} {:>12}", "load", "latency", "deflections", "delivered");
    for point in load_sweep(params, Pattern::UniformRandom, 0.9, 6, 300, 2005) {
        println!(
            "{:>8.2} {:>9.2} sl {:>14.2} {:>12}",
            point.offered_load,
            point.stats.latency.mean(),
            point.stats.mean_deflections(),
            point.stats.delivered,
        );
    }

    // Permutation traffic routes with almost no deflection; hotspots hurt.
    let perm = run_load(params, Pattern::Permutation { offset: 0 }, 0.5, 300, 7);
    let hot = run_load(params, Pattern::Hotspot { target: 3, fraction: 0.7 }, 0.5, 300, 7);
    println!("\npermutation @ 0.5 load: {perm}");
    println!("hotspot(70%) @ 0.5 load: {hot}");
    Ok(())
}
