//! Golden wire vectors for THP/2.
//!
//! These byte sequences are frozen: a failure here means the v2 wire
//! format changed, which breaks every deployed pipelined client/daemon
//! pair. Bump [`atd::wire::VERSION2`] instead of editing a vector.

use atd::proto::msg;
use atd::stream::{chunk_result, stream_digest};
use atd::wire::{self, flag, FrameError, HEADER2_LEN, HEADER_LEN, MAX_PAYLOAD, VERSION, VERSION2};
use atd::{JobResult, JobSpec, Provenance, Request, Response};
use pstime::{DataRate, Duration};

/// `Ping { token: 0x0123_4567_89AB_CDEF }` under correlation 17.
const PING2_FRAME: [u8; 28] = [
    0x54, 0x48, 0x50, 0x32, // magic "THP2"
    0x02, // version 2
    0x01, // PING
    0x01, // flags: FINAL
    0x00, // reserved
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x11, // correlation 17, big-endian
    0x00, 0x00, 0x00, 0x08, // payload length 8
    0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF, // token, big-endian
];

/// `Submit { session: 7, spec: bathtub(3 ps, 20 ps, 2.5 Gb/s, 0.5, 101) }`
/// under correlation 0xDEAD_BEEF. The payload grammar is byte-identical
/// to THP/1 — only the envelope differs.
const SUBMIT2_BATHTUB_FRAME: [u8; 61] = [
    0x54, 0x48, 0x50, 0x32, // magic
    0x02, // version
    0x03, // SUBMIT
    0x01, // flags: FINAL (requests never stream)
    0x00, // reserved
    0x00, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, // correlation
    0x00, 0x00, 0x00, 0x29, // payload length 41
    0x00, 0x00, 0x00, 0x07, // session 7
    0x04, // spec tag: bathtub
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0B, 0xB8, // rj_rms = 3_000 fs
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4E, 0x20, // dj_pp = 20_000 fs
    0x00, 0x00, 0x00, 0x00, 0x95, 0x02, 0xF9, 0x00, // rate = 2_500_000_000 bps
    0x3F, 0xE0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // transition density 0.5
    0x00, 0x00, 0x00, 0x65, // points 101
];

/// `Chunk { seq: 2, bytes: [0xAB, 0x00, 0xCD] }` under correlation 5 —
/// the only CHUNK-flagged frame in the vocabulary.
const CHUNK_FRAME: [u8; 27] = [
    0x54, 0x48, 0x50, 0x32, // magic
    0x02, // version
    0x88, // CHUNK
    0x02, // flags: CHUNK (mid-stream)
    0x00, // reserved
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x05, // correlation 5
    0x00, 0x00, 0x00, 0x07, // payload length 7
    0x00, 0x00, 0x00, 0x02, // seq 2
    0xAB, 0x00, 0xCD, // raw slice
];

/// `Summary { ticket: 9, provenance: Computed, chunks: 3, total_bytes: 7,
/// digest: 0x1122_3344_5566_7788 }` under correlation 5 — the terminal
/// FINAL frame closing a chunk stream.
const SUMMARY_FRAME: [u8; 49] = [
    0x54, 0x48, 0x50, 0x32, // magic
    0x02, // version
    0x89, // SUMMARY
    0x01, // flags: FINAL (terminal)
    0x00, // reserved
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x05, // correlation 5
    0x00, 0x00, 0x00, 0x1D, // payload length 29
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x09, // ticket 9
    0x00, // provenance: Computed
    0x00, 0x00, 0x00, 0x03, // chunks 3
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07, // total_bytes 7
    0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, // digest
];

fn golden_ping() -> Request {
    Request::Ping { token: 0x0123_4567_89AB_CDEF }
}

fn golden_submit() -> Request {
    Request::Submit {
        session: 7,
        spec: JobSpec::bathtub(
            Duration::from_ps(3),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
            101,
        ),
    }
}

fn golden_chunk() -> Response {
    Response::Chunk { seq: 2, bytes: vec![0xAB, 0x00, 0xCD] }
}

fn golden_summary() -> Response {
    Response::Summary {
        ticket: 9,
        provenance: Provenance::Computed,
        chunks: 3,
        total_bytes: 7,
        digest: 0x1122_3344_5566_7788,
    }
}

fn decode_response2(frame: &[u8]) -> Result<(wire::Header2, Response), FrameError> {
    let (h, payload) = wire::decode_frame2(frame)?;
    Ok((h, Response::from_parts(h.msg_type, payload)?))
}

#[test]
fn ping_frame_matches_golden_bytes() {
    assert_eq!(golden_ping().to_frame2(0x11).unwrap(), PING2_FRAME);
    let (h, payload) = wire::decode_frame2(&PING2_FRAME).unwrap();
    assert_eq!(h.correlation, 0x11);
    assert_eq!(h.flags, flag::FINAL);
    assert_eq!(Request::from_parts(h.msg_type, payload).unwrap(), golden_ping());
}

#[test]
fn submit_frame_matches_golden_bytes() {
    assert_eq!(golden_submit().to_frame2(0xDEAD_BEEF).unwrap(), SUBMIT2_BATHTUB_FRAME);
    let (h, payload) = wire::decode_frame2(&SUBMIT2_BATHTUB_FRAME).unwrap();
    assert_eq!(h.correlation, 0xDEAD_BEEF);
    assert_eq!(Request::from_parts(h.msg_type, payload).unwrap(), golden_submit());
}

/// The v2 payload grammar is the v1 grammar: same request, same bytes
/// after the envelope.
#[test]
fn payload_grammar_is_shared_with_thp1() {
    let v1 = golden_submit().to_frame().unwrap();
    assert_eq!(&v1[HEADER_LEN..], &SUBMIT2_BATHTUB_FRAME[HEADER2_LEN..]);
}

#[test]
fn chunk_frame_matches_golden_bytes() {
    assert_eq!(golden_chunk().to_frame2(5).unwrap(), CHUNK_FRAME);
    let (h, response) = decode_response2(&CHUNK_FRAME).unwrap();
    assert_eq!(h.msg_type, msg::CHUNK);
    assert_eq!(h.flags, flag::CHUNK);
    assert_eq!(h.correlation, 5);
    assert_eq!(response, golden_chunk());
}

#[test]
fn summary_frame_matches_golden_bytes() {
    assert_eq!(golden_summary().to_frame2(5).unwrap(), SUMMARY_FRAME);
    let (h, response) = decode_response2(&SUMMARY_FRAME).unwrap();
    assert_eq!(h.msg_type, msg::SUMMARY);
    assert_eq!(h.flags, flag::FINAL);
    assert_eq!(response, golden_summary());
}

/// Every strict prefix of a valid v2 frame is rejected with exact
/// truncation counts — no partial decode ever succeeds.
#[test]
fn every_truncation_is_rejected() {
    for cut in 0..SUBMIT2_BATHTUB_FRAME.len() {
        let err = wire::decode_frame2(&SUBMIT2_BATHTUB_FRAME[..cut])
            .err()
            .unwrap_or_else(|| panic!("prefix of {cut} bytes decoded"));
        if cut < HEADER2_LEN {
            assert_eq!(err, FrameError::Truncated { needed: HEADER2_LEN, have: cut }, "cut {cut}");
        } else {
            assert_eq!(
                err,
                FrameError::Truncated { needed: 41, have: cut - HEADER2_LEN },
                "cut {cut}"
            );
        }
    }
}

/// The flag byte must be exactly one of FINAL / CHUNK: neither, both, and
/// unknown bits are all rejected.
#[test]
fn flag_violations_are_rejected() {
    for bad in [0x00u8, 0x03, 0x04, 0x05, 0x80] {
        let mut frame = PING2_FRAME;
        frame[6] = bad;
        assert_eq!(
            wire::decode_frame2(&frame),
            Err(FrameError::BadPayload { context: "flags must be exactly FINAL or CHUNK" }),
            "flags {bad:#04x}"
        );
    }
}

#[test]
fn reserved_byte_must_be_zero() {
    let mut frame = PING2_FRAME;
    frame[7] = 0x5A;
    assert_eq!(wire::decode_frame2(&frame), Err(FrameError::ReservedNonZero { found: 0x5A }));
}

/// Magic and version byte must agree: a THP2 magic carrying version 1 (or
/// anything else) is rejected, as is a THP1 magic carrying version 2.
#[test]
fn cross_version_mismatches_are_rejected() {
    let mut frame = PING2_FRAME;
    frame[4] = VERSION;
    assert_eq!(wire::decode_frame2(&frame), Err(FrameError::UnsupportedVersion { found: 1 }));

    let mut v1 = golden_ping().to_frame().unwrap();
    v1[4] = VERSION2;
    assert_eq!(wire::decode_frame(&v1), Err(FrameError::UnsupportedVersion { found: 2 }));
}

/// Version negotiation: the first five bytes of a connection pin its
/// protocol revision.
#[test]
fn sniff_negotiates_both_revisions() {
    assert_eq!(wire::sniff(&[]).unwrap(), None);
    assert_eq!(wire::sniff(&PING2_FRAME[..4]).unwrap(), None);
    assert_eq!(wire::sniff(&PING2_FRAME[..5]).unwrap(), Some((VERSION2, HEADER2_LEN)));
    let v1 = golden_ping().to_frame().unwrap();
    assert_eq!(wire::sniff(&v1).unwrap(), Some((VERSION, HEADER_LEN)));

    let mut wrong = PING2_FRAME;
    wrong[4] = 9;
    assert_eq!(wire::sniff(&wrong), Err(FrameError::UnsupportedVersion { found: 9 }));
    assert_eq!(wire::sniff(b"NOPE!"), Err(FrameError::BadMagic { found: *b"NOPE" }),);
}

#[test]
fn oversized_declared_length_is_rejected() {
    let mut frame = PING2_FRAME.to_vec();
    let too_big = MAX_PAYLOAD + 1;
    frame[16..20].copy_from_slice(&too_big.to_be_bytes());
    assert_eq!(
        wire::decode_header2(&frame),
        Err(FrameError::Oversized { len: u64::from(too_big), max: u64::from(MAX_PAYLOAD) })
    );
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut frame = PING2_FRAME.to_vec();
    frame.push(0xAA);
    assert_eq!(wire::decode_frame2(&frame), Err(FrameError::TrailingBytes { extra: 1 }));
}

/// Requests may not claim the reserved failure correlation.
#[test]
fn failure_id_is_not_a_valid_request_correlation() {
    assert_eq!(
        golden_ping().to_frame2(atd::FAILURE_ID),
        Err(FrameError::BadPayload {
            context: "correlation id collides with the reserved failure id"
        })
    );
}

/// The chunk-identity contract, frozen: this golden bathtub's canonical
/// encoding, its chunk boundaries, and its stream digest. A digest
/// change here breaks summary verification between deployed revisions.
#[test]
fn golden_stream_identity_is_frozen() {
    let result = JobResult::Bathtub {
        pairs: vec![(0.25, 1e-9), (0.5, 1e-12), (0.75, 1e-9)],
        rendered: "bathtub sweep: 3 points".to_string(),
    };
    let monolithic = result.encoded().unwrap();
    let chunks = chunk_result(&result).unwrap();
    // Preamble (tag + count), one 3-pair segment, footer (rendering).
    assert_eq!(chunks.len(), 3);
    let concat: Vec<u8> = chunks.iter().flatten().copied().collect();
    assert_eq!(concat, monolithic);
    assert_eq!(stream_digest(&concat), 0x53DB_0FF4_1927_BA00);
}

/// The digest function itself is frozen with raw vectors: deployed
/// daemons and clients must agree on these values forever.
#[test]
fn stream_digest_vectors_are_frozen() {
    assert_eq!(stream_digest(b""), 0xFA59_107A_9911_8A2B);
    assert_eq!(stream_digest(b"a"), 0xCBED_6C9D_AFD3_A03C);
    assert_eq!(stream_digest(b"gigatest"), 0x3CB9_9E5A_468D_382D);
    assert_eq!(stream_digest(b"gigatest-atd THP/2"), 0x6B7A_A6BC_70C1_006D);
}
