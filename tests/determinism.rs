//! Cross-layer determinism guarantees of the seed-tree refactor.
//!
//! Every stochastic model in the stack draws from a named substream of one
//! master seed, so a run is a pure function of its inputs: same seed in, the
//! same bits out — across the ATE facade, the optical testbed, and the
//! mini-tester wafer flow. These tests pin that contract end to end.

use ate::{SystemKind, TestProgram, TestSystem};
use minitester::multisite::{run_wafer, WaferRunConfig};
use pstime::DataRate;
use testbed::e2e::{self, E2eConfig};

/// Same seed, same program, same system kind: the full `ProgramResult` is
/// bit-identical — the rendered analog waveform, the driven pattern, and the
/// measured eye opening.
#[test]
fn program_results_are_bit_identical_for_equal_seeds() {
    let program = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 2_048);
    let build = |kind: SystemKind| match kind {
        SystemKind::OpticalTestbed => TestSystem::optical_testbed(),
        SystemKind::MiniTester => TestSystem::mini_tester(),
    };
    for kind in [SystemKind::OpticalTestbed, SystemKind::MiniTester] {
        for seed in [0u64, 3, 0xDEAD_BEEF] {
            let a = build(kind).unwrap().run(&program, seed).unwrap();
            let b = build(kind).unwrap().run(&program, seed).unwrap();
            assert_eq!(a.waveform, b.waveform, "{kind:?} seed={seed}");
            assert_eq!(a.driven_bits, b.driven_bits, "{kind:?} seed={seed}");
            assert_eq!(
                a.eye.opening_ui().value().to_bits(),
                b.eye.opening_ui().value().to_bits(),
                "{kind:?} seed={seed}"
            );
        }
    }
}

/// Different master seeds draw a different jitter realization, so the
/// rendered waveforms differ (while the driven pattern — program content,
/// not noise — stays fixed).
#[test]
fn different_seeds_change_the_noise_but_not_the_pattern() {
    let program = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 2_048);
    let mut system = TestSystem::optical_testbed().unwrap();
    let a = system.run(&program, 1).unwrap();
    let b = system.run(&program, 2).unwrap();
    assert_eq!(a.driven_bits, b.driven_bits, "pattern memory must not depend on the run seed");
    assert_ne!(a.waveform, b.waveform, "distinct seeds must yield distinct jitter realizations");
}

/// The testbed's packet path — framing, PECL transmit, optical link, fabric,
/// receive — reproduces the same report for the same seed, and both e2e
/// entry points are individually deterministic.
#[test]
fn testbed_e2e_reports_are_reproducible() {
    let config = E2eConfig { packets: 12, seed: 41, ..E2eConfig::default() };
    assert_eq!(e2e::run(&config).unwrap(), e2e::run(&config).unwrap());
    assert_eq!(e2e::run_stream(&config).unwrap(), e2e::run_stream(&config).unwrap());

    let other = E2eConfig { seed: 42, ..config };
    // The seed reaches the payload generator, so distinct seeds offer
    // distinct traffic (same volume, though).
    let a = e2e::run(&config).unwrap();
    let b = e2e::run(&other).unwrap();
    assert_eq!(a.sent, b.sent);
}

/// The multisite wafer flow — defect injection, per-die BIST, margin scans —
/// bins every die identically given the same seed, and reshuffles defects
/// under a different one.
#[test]
fn wafer_runs_are_reproducible() {
    let config = WaferRunConfig { seed: 7, ..WaferRunConfig::default() };
    let a = run_wafer(&config).unwrap();
    let b = run_wafer(&config).unwrap();
    assert_eq!(a, b);

    let c = run_wafer(&WaferRunConfig { seed: 8, ..config }).unwrap();
    assert_eq!(c.touchdowns(), a.touchdowns(), "wafer geometry is seed-independent");
    assert_ne!(a.records(), c.records(), "distinct seeds must draw a distinct defect population");
}

/// Thread-count invariance across every exec-powered sweep: shmoo grids,
/// wafer runs, and eye scans produce byte-identical outputs on pools of 1,
/// 2, and 8 workers. Parallelism decides who computes a slot, never what
/// lands in it.
#[test]
fn sweeps_are_thread_count_invariant() {
    use exec::ExecPool;
    use minitester::multisite::run_wafer_with_pool;
    use minitester::{EtCapture, MiniTesterDatapath, ShmooConfig, ShmooPlot};

    let rate = DataRate::from_gbps(2.5);
    let mut path = MiniTesterDatapath::new().unwrap();
    let expected = path.expected_prbs(rate, 512).unwrap();
    let mut path2 = MiniTesterDatapath::new().unwrap();
    let wave = path2.prbs_stimulus(rate, 512, 17).unwrap();

    let pools = [ExecPool::new(1), ExecPool::new(2), ExecPool::new(8)];

    let shmoos: Vec<_> = pools
        .iter()
        .map(|p| ShmooPlot::run_with_pool(&wave, rate, &expected, &ShmooConfig::pecl(), 3, p))
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(shmoos[0], shmoos[1], "shmoo differs between 1 and 2 threads");
    assert_eq!(shmoos[0], shmoos[2], "shmoo differs between 1 and 8 threads");
    assert_eq!(shmoos[0].to_string(), shmoos[2].to_string());

    let wafer_config = WaferRunConfig {
        dies: 12,
        columns: 4,
        sites: 4,
        test_bits: 256,
        seed: 7,
        ..WaferRunConfig::default()
    };
    let wafers: Vec<_> =
        pools.iter().map(|p| run_wafer_with_pool(&wafer_config, p).unwrap()).collect();
    assert_eq!(wafers[0], wafers[1], "wafer differs between 1 and 2 threads");
    assert_eq!(wafers[0], wafers[2], "wafer differs between 1 and 8 threads");
    assert_eq!(wafers[0].to_string(), wafers[2].to_string());

    let cap = EtCapture::new();
    let eyes: Vec<_> = pools
        .iter()
        .map(|p| cap.eye_scan_with_pool(&wave, rate, &expected, 5, p).unwrap())
        .collect();
    assert_eq!(eyes[0], eyes[1], "eye scan differs between 1 and 2 threads");
    assert_eq!(eyes[0], eyes[2], "eye scan differs between 1 and 8 threads");
    assert_eq!(eyes[0].to_string(), eyes[2].to_string());
}

/// Substreams honor domain separation at the application layer: the streams
/// the refactor named for unrelated subsystems never collide, and sibling
/// channel streams are pairwise decorrelated.
#[test]
fn application_streams_are_domain_separated() {
    use rng::SeedTree;

    let master = 0x5EED;
    let tree = SeedTree::new(master);
    let seeds = [
        tree.derive(signal::jitter::RJ_STREAM).seed(),
        tree.derive(pecl::sampler::SAMPLER_STREAM).seed(),
        tree.derive(vortex::traffic::TRAFFIC_STREAM).seed(),
        tree.derive(testbed::optics::RX_NOISE_STREAM).seed(),
        tree.derive(ate::PRBS_LANE_STREAM).seed(),
    ];
    for (i, a) in seeds.iter().enumerate() {
        for b in &seeds[i + 1..] {
            assert_ne!(a, b, "named streams must never alias");
        }
    }

    // Sibling channels of one stream stay decorrelated: correlate the first
    // bit of many channel seeds against the next channel's.
    let lanes = tree.derive(ate::PRBS_LANE_STREAM);
    let mut agree = 0u32;
    const PAIRS: u32 = 4_096;
    for ch in 0..PAIRS {
        let x = lanes.channel(u64::from(ch)).seed() & 1;
        let y = lanes.channel(u64::from(ch) + 1).seed() & 1;
        agree += u32::from(x == y);
    }
    let ratio = f64::from(agree) / f64::from(PAIRS);
    assert!((ratio - 0.5).abs() < 0.05, "channel seeds correlated: agree ratio {ratio}");
}

/// The service layer preserves the determinism contract end to end: a
/// shmoo submitted through the THP/1 loopback (encode → decode → schedule
/// → execute → encode → decode) is byte-identical to the same shmoo run
/// directly on a pool, and the round trip itself is invariant to the
/// daemon's worker count.
#[test]
fn loopback_submitted_shmoo_matches_direct_run_at_any_thread_count() {
    use atd::scheduler::Scheduler;
    use atd::{Client, JobResult, JobSpec, Loopback, Provenance, Service, Submitted};
    use exec::ExecPool;
    use minitester::{MiniTesterDatapath, ShmooConfig, ShmooPlot};

    let rate = DataRate::from_gbps(2.5);
    let config = ShmooConfig::pecl();
    let spec = JobSpec::shmoo(rate, 256, 17, &config, 5);

    // Direct run, no service in the path.
    let mut path = MiniTesterDatapath::new().unwrap();
    let expected = path.expected_prbs(rate, 256).unwrap();
    let mut stim = MiniTesterDatapath::new().unwrap();
    let wave = stim.prbs_stimulus(rate, 256, 17).unwrap();
    let pool = ExecPool::new(2);
    let plot = ShmooPlot::run_with_pool(&wave, rate, &expected, &config, 5, &pool).unwrap();
    let direct = JobResult::from_shmoo(&plot).unwrap().encoded().unwrap();

    // The same spec through the wire protocol, on daemons of width 1 and 4.
    let mut submitted = Vec::new();
    for threads in [1, 4] {
        let service = Service::new(ExecPool::new(threads), Scheduler::new(8, 8));
        let mut client = Client::new(Loopback::new(service));
        let done = client.submit(1, spec).unwrap();
        let Submitted::Done { provenance, result, .. } = done else {
            panic!("expected Done, got {done:?}");
        };
        assert_eq!(provenance, Provenance::Computed);
        submitted.push(result.encoded().unwrap());
    }

    assert_eq!(submitted[0], direct, "1-thread daemon differs from the direct run");
    assert_eq!(submitted[1], direct, "4-thread daemon differs from the direct run");
    let mut reader = atd::wire::Reader::new(&submitted[0]);
    let decoded = JobResult::decode(&mut reader).unwrap();
    assert_eq!(plot.to_string(), decoded.rendered(), "rendered plot must survive the wire");
}

/// Sharding a campaign across a farm changes who computes what, never the
/// bytes: for every composite workload — shmoo grid, wafer run, eye scan —
/// a farm of 1, 2, or 4 heads merges to a result byte-identical to one
/// head running the spec whole, rendered text included, and a hot
/// resubmission is served entirely from the heads' caches.
#[test]
fn farm_merges_are_byte_identical_to_a_single_head_at_any_fleet_size() {
    use atd::{JobSpec, Provenance};
    use atd_farm::Farm;
    use minitester::{ShmooConfig, WaferRunConfig};

    let rate = DataRate::from_gbps(2.5);
    let specs = [
        JobSpec::shmoo(rate, 256, 17, &ShmooConfig::pecl(), 5),
        JobSpec::wafer(&WaferRunConfig {
            dies: 12,
            columns: 4,
            sites: 4,
            test_bits: 256,
            seed: 7,
            ..WaferRunConfig::default()
        }),
        JobSpec::eye(rate, 256, 17, 5),
    ];

    for spec in specs {
        let mut single = Farm::in_proc(1).unwrap();
        let baseline = single.submit(1, spec).unwrap();
        assert_eq!(baseline.shards, 1, "a one-head farm must pass the spec through");
        let reference = baseline.result.encoded().unwrap();

        for heads in [2usize, 4] {
            let mut farm = Farm::in_proc(heads).unwrap();
            let merged = farm.submit(1, spec).unwrap();
            assert!(merged.shards > 1, "{} must shard on {heads} heads", spec.kind());
            assert_eq!(
                merged.result.encoded().unwrap(),
                reference,
                "{} differs between 1 and {heads} heads",
                spec.kind()
            );
            assert_eq!(merged.result.rendered(), baseline.result.rendered());

            let again = farm.submit(1, spec).unwrap();
            assert_eq!(again.result.encoded().unwrap(), reference);
            assert_eq!(
                again.provenance,
                Provenance::Cache,
                "{} resubmission must be cache-served on every head",
                spec.kind()
            );
        }
    }
}

/// The durable store is invisible in the bytes: a store-backed daemon
/// serves a mixed campaign byte-identical to an in-memory daemon on 1-
/// and 4-thread pools — and stays identical when the store-backed daemon
/// is killed mid-campaign and a fresh one reboots over the same
/// directory, with the finished half then replayed straight off the
/// rehydrated store.
#[test]
fn store_backed_daemon_matches_in_memory_across_a_kill_and_restart() {
    use atd::scheduler::Scheduler;
    use atd::store::{Store, StoreConfig};
    use atd::{Client, JobSpec, Loopback, Provenance, Service, Submitted};
    use exec::ExecPool;
    use minitester::{ShmooConfig, WaferRunConfig};
    use pstime::Duration;

    let rate = DataRate::from_gbps(2.5);
    let campaign = [
        JobSpec::shmoo(rate, 256, 17, &ShmooConfig::pecl(), 3),
        JobSpec::wafer(&WaferRunConfig {
            dies: 8,
            columns: 4,
            sites: 2,
            test_bits: 256,
            seed: 7,
            ..WaferRunConfig::default()
        }),
        JobSpec::eye(rate, 256, 17, 3),
        JobSpec::bathtub(Duration::from_ps(3), Duration::from_ps(20), rate, 0.5, 101),
    ];

    fn submit(client: &mut Client<Loopback>, spec: JobSpec) -> (Provenance, Vec<u8>) {
        match client.submit(1, spec).unwrap() {
            Submitted::Done { provenance, result, .. } => (provenance, result.encoded().unwrap()),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    let durable_daemon = |dir: &std::path::Path, threads: usize| {
        let store = Store::open(StoreConfig::new(dir)).unwrap();
        let scheduler = Scheduler::new(8, 64).with_store(store);
        Client::new(Loopback::new(Service::new(ExecPool::new(threads), scheduler)))
    };

    for threads in [1usize, 4] {
        // In-memory reference bytes.
        let service = Service::new(ExecPool::new(threads), Scheduler::new(8, 64));
        let mut memory = Client::new(Loopback::new(service));
        let reference: Vec<Vec<u8>> =
            campaign.iter().map(|spec| submit(&mut memory, *spec).1).collect();

        // A store-backed daemon, campaign uninterrupted.
        let dir = std::env::temp_dir()
            .join(format!("atd-determinism-store-{}-t{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut durable = durable_daemon(&dir, threads);
        let whole: Vec<Vec<u8>> =
            campaign.iter().map(|spec| submit(&mut durable, *spec).1).collect();
        assert_eq!(
            whole, reference,
            "the store must be invisible in the bytes ({threads} threads)"
        );
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);

        // Killed after two specs, restarted over the same directory.
        let dir = std::env::temp_dir()
            .join(format!("atd-determinism-restart-{}-t{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut durable = durable_daemon(&dir, threads);
        let mut observed: Vec<Vec<u8>> =
            campaign[..2].iter().map(|spec| submit(&mut durable, *spec).1).collect();
        drop(durable); // the kill
        let mut durable = durable_daemon(&dir, threads);
        observed.extend(campaign[2..].iter().map(|spec| submit(&mut durable, *spec).1));
        assert_eq!(
            observed, reference,
            "a kill/restart mid-campaign must not change a byte ({threads} threads)"
        );

        // The half finished before the kill replays off the rehydrated
        // store: cache provenance, identical bytes, no recompute.
        for (spec, want) in campaign[..2].iter().zip(&reference) {
            let (provenance, bytes) = submit(&mut durable, *spec);
            assert_eq!(provenance, Provenance::Cache, "{} must be store-served", spec.kind());
            assert_eq!(&bytes, want);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// THP/2 streaming changes the framing, never the bytes: a shmoo submitted
/// over a pipelined TCP session arrives as chunks whose concatenation is
/// byte-identical to the THP/1 loopback result and the direct pool run — on
/// event-loop daemons backed by 1-thread and 4-thread pools alike.
#[test]
fn pipelined_chunk_reassembly_matches_thp1_at_any_thread_count() {
    use atd::scheduler::Scheduler;
    use atd::{
        serve_with, Client, Event, JobResult, JobSpec, Loopback, PipelinedClient, ServerConfig,
        Service, Submitted,
    };
    use exec::ExecPool;
    use minitester::{MiniTesterDatapath, ShmooConfig, ShmooPlot};
    use std::net::TcpListener;

    let rate = DataRate::from_gbps(2.5);
    let config = ShmooConfig::pecl();
    let spec = JobSpec::shmoo(rate, 256, 17, &config, 5);

    // Direct run, no service in the path.
    let mut path = MiniTesterDatapath::new().unwrap();
    let expected = path.expected_prbs(rate, 256).unwrap();
    let mut stim = MiniTesterDatapath::new().unwrap();
    let wave = stim.prbs_stimulus(rate, 256, 17).unwrap();
    let pool = ExecPool::new(2);
    let plot = ShmooPlot::run_with_pool(&wave, rate, &expected, &config, 5, &pool).unwrap();
    let direct = JobResult::from_shmoo(&plot).unwrap().encoded().unwrap();

    // THP/1 loopback reference.
    let service = Service::new(ExecPool::new(1), Scheduler::new(8, 8));
    let mut v1 = Client::new(Loopback::new(service));
    let Submitted::Done { result, .. } = v1.submit(1, spec).unwrap() else {
        panic!("loopback submit must complete");
    };
    let v1_bytes = result.encoded().unwrap();
    assert_eq!(v1_bytes, direct, "THP/1 loopback differs from the direct run");

    for threads in [1usize, 4] {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || {
            let service = Service::new(ExecPool::new(threads), Scheduler::new(8, 8));
            serve_with(&listener, service, ServerConfig::default()).unwrap();
        });

        let mut client = PipelinedClient::connect(addr).unwrap();
        let corr = client.submit_pipelined(1, spec).unwrap();
        let mut concat = Vec::new();
        let (digest, streamed) = loop {
            match client.next_event().unwrap() {
                Event::Chunk { correlation, bytes, .. } => {
                    assert_eq!(correlation, corr);
                    concat.extend_from_slice(&bytes);
                }
                Event::Done { correlation, digest, result, .. } => {
                    assert_eq!(correlation, corr);
                    break (digest, result);
                }
                other => panic!("unexpected event {other:?}"),
            }
        };
        client.shutdown().unwrap();
        daemon.join().unwrap();

        assert_eq!(concat, direct, "{threads}-thread daemon chunks differ from the direct run");
        assert_eq!(streamed.encoded().unwrap(), direct);
        assert_eq!(
            digest,
            atd::stream_digest(&direct),
            "the verified stream digest must be a pure function of the bytes"
        );
    }
}
