//! A conforming fixture crate: xlint must exit 0 on this tree.
#![forbid(unsafe_code)]

/// Deterministic, panic-free, cast-free, unit-safe.
pub fn double(x: u64) -> u64 {
    x.wrapping_mul(2)
}

#[cfg(test)]
mod tests {
    use super::double;

    #[test]
    fn doubles() {
        // Test regions are exempt: unwrap here must not fire R4.
        assert_eq!(Some(double(2)).map(|v| v + 0).unwrap(), 4);
    }
}
