//! Fixture: hermeticity rules bind inside build scripts too (R6 here).

fn main() {
    let stamp = std::time::SystemTime::now();
    let _ = stamp;
}
