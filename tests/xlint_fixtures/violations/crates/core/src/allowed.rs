//! Suppression fixtures: one reasoned allow, one reasonless allow.

/// Suppressed with a reason — must NOT appear as a finding.
pub fn justified(values: &[u64]) -> u64 {
    // xlint::allow(no-panic-in-lib, fixture exercises a reasoned suppression)
    *values.first().unwrap()
}

/// Suppressed WITHOUT a reason — must surface as a `bad-allow` deny.
pub fn unjustified(values: &[u64]) -> u64 {
    // xlint::allow(no-panic-in-lib)
    *values.last().unwrap()
}
