//! Fixture crate root with a seeded violation per rule.
//!
//! Deliberately missing `#![forbid(unsafe_code)]` (R7).

use std::collections::HashMap; // R6: hash iteration order

pub mod allowed;

/// R1: ad-hoc seed arithmetic outside crates/rng.
pub fn derive_seed(seed: u64, lane: u64) -> u64 {
    seed ^ lane.wrapping_mul(0x9E37_79B9)
}

/// R2 site A: stream label also claimed by crates/other.
pub fn noise_stream(tree: &SeedTree) -> u64 {
    tree.stream("fixture.duplicate").seed()
}

/// R3: raw f64 arithmetic on a picosecond-suffixed identifier.
pub fn widen(edge_ps: f64) -> f64 {
    edge_ps * 2.0 + 1.5
}

/// R4: panic path in library code.
pub fn first(values: &[u64]) -> u64 {
    *values.first().unwrap()
}

/// R5 (warn here — not a timing path): lossy numeric cast.
pub fn narrow(wide: u64) -> f32 {
    wide as f32
}

/// R6: nondeterministic iteration order.
pub fn tally(counts: &HashMap<String, u64>) -> u64 {
    counts.values().sum()
}

pub struct SeedTree;

impl SeedTree {
    pub fn stream(&self, _label: &str) -> Stream {
        Stream
    }
}

pub struct Stream;

impl Stream {
    pub fn seed(&self) -> u64 {
        0
    }
}
