//! Fixture: invokes the pool with no bridge at all, justified inline —
//! the reasoned allow covers the missing-bridge finding at the first
//! invoke site.

#![forbid(unsafe_code)]

/// Results and errors are discarded at this boundary, so there is no
/// error enum to bridge into.
pub fn fire_and_forget(pool: &ExecPool, jobs: &[u64]) { // xlint::allow(error-bridge-exhaustive, results and errors are discarded at this boundary so there is no crate error enum to bridge into)
    let _ = pool.par_map(jobs, |_i, x| *x);
}
