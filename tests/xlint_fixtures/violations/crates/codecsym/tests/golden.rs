//! Golden vector pinning the fixture's PING frame bytes.

#[test]
fn ping_frame_is_frozen() {
    assert_eq!(codecsym::encode_ping(7), [codecsym::msg::PING, 7]);
}
