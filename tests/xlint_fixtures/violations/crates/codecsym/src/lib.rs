//! Fixture: a wire vocabulary for `codec-symmetry` (R13). `PING`
//! encodes, decodes, and is pinned by `tests/golden.rs`; `ORPHAN`
//! decodes but never encodes and has no golden vector (fires); `TRACE`
//! is a documented one-way code suppressed by a reasoned allow.

#![forbid(unsafe_code)]

/// Wire message codes.
pub mod msg {
    /// Liveness probe; fully symmetric.
    pub const PING: u8 = 0x01;
    /// Legacy reply code the decoder still accepts.
    pub const ORPHAN: u8 = 0x7E;
    /// Diagnostic code emitted only by the legacy probe tool.
    // xlint::allow(codec-symmetry, TRACE frames are produced by the legacy C probe tool only and intentionally have no encoder here)
    pub const TRACE: u8 = 0x7F;
}

/// Encodes a probe frame.
pub fn encode_ping(token: u8) -> [u8; 2] {
    [msg::PING, token]
}

/// Decodes any frame code the crate still understands.
pub fn decode_code(bytes: &[u8]) -> Option<u8> {
    match bytes.first().copied() {
        Some(code) if code == msg::PING => Some(code),
        Some(code) if code == msg::ORPHAN => Some(code),
        _ => None,
    }
}
