//! Fixture: helpers reachable from the event loop in `server.rs` for
//! `event-loop-blocking` (R12). The blocking `.join()` in
//! `drain_backlog` fires with the loop → helper chain; the single
//! documented `write_all` flush is suppressed by a reasoned allow.

#![forbid(unsafe_code)]

pub mod server;

/// event-loop-blocking: joining a worker stalls the loop for as long as
/// the worker runs.
pub fn drain_backlog(handle: std::thread::JoinHandle<()>) {
    let _ = handle.join();
}

/// Suppressed: the one bounded flush during shutdown teardown.
pub fn flush_once(stream: &mut std::net::TcpStream) -> std::io::Result<()> {
    use std::io::Write;
    // xlint::allow(event-loop-blocking, one bounded teardown flush after the loop has stopped accepting work)
    stream.write_all(&[0u8])
}
