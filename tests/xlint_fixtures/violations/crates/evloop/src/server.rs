//! The fixture's nonblocking event loop: every function in a
//! `*/src/server.rs` file is a root of the R12 reachability pass.

/// One loop tick — reaches both blocking helpers in `lib.rs`.
pub fn poll_once(
    handle: std::thread::JoinHandle<()>,
    stream: &mut std::net::TcpStream,
) -> std::io::Result<()> {
    drain_backlog(handle);
    flush_once(stream)
}
