//! Fixture: the tree's `exec` crate. `error-bridge-exhaustive` reads its
//! authoritative variant list from this `ExecError`, so the rule tracks
//! the enum as it evolves.

#![forbid(unsafe_code)]

/// Why a pool run failed.
pub enum ExecError {
    /// A worker thread could not be spawned.
    SpawnFailed,
    /// A worker panicked while running a job.
    WorkerPanicked,
    /// A job result never arrived.
    MissingResult,
}
