//! Fixture: a segment-store reader for `wire-taint` (R11) over the
//! persistent store's record grammar. `decode_header` returns
//! disk-controlled lengths (hostile bytes, exactly like a peer frame);
//! sizing an allocation from them unvalidated fires, the same flow
//! behind a `limits::` comparison stays silent, and a documented
//! upstream bound suppresses via a reasoned allow.

#![forbid(unsafe_code)]

/// A parsed record header; every field is attacker-controlled until
/// checked against `limits::`.
pub struct RecordHeader {
    /// Declared key length in bytes.
    pub key_len: usize,
    /// Declared payload length in bytes.
    pub payload_len: usize,
}

/// Pretend header decode: the returned lengths come straight off disk.
pub fn decode_header(bytes: &[u8]) -> RecordHeader {
    RecordHeader { key_len: bytes.len(), payload_len: bytes.len() }
}

/// Admission ceilings for decoded record fields.
pub mod limits {
    /// Largest payload a record may declare.
    pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;
}

/// wire-taint: the decoded payload length reaches `Vec::with_capacity`
/// with no validate/limits check between — a torn or hostile segment
/// tail could size an arbitrary allocation.
pub fn read_unchecked(bytes: &[u8]) -> Vec<u8> {
    let header = decode_header(bytes);
    Vec::with_capacity(header.payload_len)
}

/// Silent: the comparison against `limits::MAX_PAYLOAD_BYTES` certifies
/// the decoded length bounded before it sizes the buffer.
pub fn read_checked(bytes: &[u8]) -> Vec<u8> {
    let payload_len = decode_header(bytes).payload_len;
    if payload_len > limits::MAX_PAYLOAD_BYTES {
        return Vec::new();
    }
    Vec::with_capacity(payload_len)
}

/// Suppressed: the bound lives upstream and is documented at the site.
pub fn read_allowed(bytes: &[u8]) -> Vec<u8> {
    let header = decode_header(bytes);
    // xlint::allow(wire-taint, the segment scanner rejects records over the 1 MiB ceiling before this reader sees them)
    Vec::with_capacity(header.key_len)
}
