//! Fixture: pool jobs that touch shared-mutation primitives (R8,
//! `exec-job-racy`), plus a reasoned allow on an observability-only
//! counter.

#![forbid(unsafe_code)]

use exec::{ExecError, ExecPool};

/// The crate's error enum; the wholesale wrap below keeps the bridge rule
/// satisfied so this crate seeds only R8 findings.
pub enum RacyError {
    /// The pool failed.
    Pool(ExecError),
}

impl From<ExecError> for RacyError {
    fn from(e: ExecError) -> Self {
        RacyError::Pool(e)
    }
}

/// exec-job-racy: the job mutates a `Mutex` accumulator, so the sum
/// depends on thread interleaving.
pub fn racy_sum(pool: &ExecPool, items: &[u64]) -> u64 {
    let total = Mutex::new(0u64);
    let _ = pool.par_map(items, |_i, x| {
        if let Ok(mut guard) = total.lock() {
            *guard += *x;
        }
    });
    0
}

/// Suppressed: a metrics counter that never feeds job results, justified
/// with a reasoned allow on the call line.
pub fn counted_copy(pool: &ExecPool, items: &[u64]) -> u64 {
    let hits = AtomicU64::new(0);
    let _ = pool.par_map(items, |_i, x| { // xlint::allow(exec-job-racy, the hit counter is observability-only and never feeds job results)
        hits.fetch_add(1, Ordering::Relaxed);
        *x
    });
    0
}
