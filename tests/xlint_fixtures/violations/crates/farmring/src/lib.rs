//! Fixture: a farm-router crate seeding `wire-taint` and
//! `panic-reachable` in coordinator-shaped code. A head count decoded
//! off the wire sizes the ring's point vector with no bound
//! (`ring_unchecked` fires); the same flow behind a `limits::` ceiling
//! stays silent, and a documented upstream bound suppresses via a
//! reasoned allow. On the panic side, the pub routing entry reaches a
//! private point lookup that indexes the ring without a length check
//! (`route` fires at the entry point), while the guarded lookup's
//! reasoned allow clears its chain.

#![forbid(unsafe_code)]

/// Pretend decoder: the returned head count is peer-controlled.
pub fn decode_frame(bytes: &[u8]) -> usize {
    bytes.len()
}

/// Admission ceilings for decoded fleet parameters.
pub mod limits {
    /// Largest fleet a HELLO frame may declare.
    pub const MAX_HEADS: usize = 64;
}

/// wire-taint: the decoded head count sizes the ring's point vector
/// with no validate/limits check between.
pub fn ring_unchecked(bytes: &[u8]) -> Vec<u64> {
    let heads = decode_frame(bytes);
    Vec::with_capacity(heads)
}

/// Silent: the comparison against `limits::MAX_HEADS` certifies the
/// decoded fleet size bounded before it sizes the ring.
pub fn ring_checked(bytes: &[u8]) -> Vec<u64> {
    let heads = decode_frame(bytes);
    if heads > limits::MAX_HEADS {
        return Vec::new();
    }
    Vec::with_capacity(heads)
}

/// Suppressed: the bound lives upstream and is documented at the site.
pub fn ring_allowed(bytes: &[u8]) -> Vec<u64> {
    let heads = decode_frame(bytes);
    // xlint::allow(wire-taint, the session handshake rejects fleets over 64 heads before this crate sees the count)
    Vec::with_capacity(heads)
}

/// panic-reachable: routes a key by reaching `points[at]` through
/// `point_at`, which indexes the ring without a bounds check.
pub fn route(points: &[u64], key: usize) -> u64 {
    point_at(points, key)
}

fn point_at(points: &[u64], at: usize) -> u64 {
    points[at]
}

/// Clean: the guarded lookup's root site carries a reasoned allow,
/// which clears this entire chain.
pub fn route_guarded(points: &[u64], key: usize) -> u64 {
    point_guarded(points, key)
}

fn point_guarded(points: &[u64], at: usize) -> u64 {
    if at < points.len() {
        points[at] // xlint::allow(panic-reachable, guarded by the explicit length check on the line above)
    } else {
        0
    }
}
