//! Fixture: an exec-style worker pool that cheats on determinism — the two
//! ways a parallel engine most plausibly goes wrong.
//!
//! A real pool must (a) derive per-job randomness from the seed tree, never
//! from ad-hoc seed arithmetic keyed on the worker id, and (b) never let
//! wall-clock reads anywhere near scheduling decisions that could leak into
//! results. This crate does both, and xlint must catch each.

#![forbid(unsafe_code)]

/// R1: per-worker seed derived with raw xor/multiply arithmetic instead of
/// a `SeedTree` substream — worker count would change the stream.
pub fn worker_seed(seed: u64, worker: u64) -> u64 {
    seed ^ worker.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// R6: wall-clock-based chunk sizing — scheduling becomes time-dependent,
/// and with it anything that observes completion order.
pub fn adaptive_chunk(jobs: usize) -> usize {
    let t0 = std::time::Instant::now();
    let warm = (0..64).fold(0u64, |a, b| a.wrapping_add(b));
    let elapsed = t0.elapsed().as_nanos();
    let _ = warm;
    if elapsed > 1_000 {
        jobs / 4
    } else {
        jobs / 16
    }
}
