//! Fixture: an incomplete `From<ExecError>` bridge — the match names only
//! one of the three variants, so `error-bridge-exhaustive` fires on the
//! impl.

#![forbid(unsafe_code)]

use exec::{ExecError, ExecPool};

/// The crate's error enum.
pub enum BridgeError {
    /// The pool failed.
    Pool,
}

impl From<ExecError> for BridgeError {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::SpawnFailed => BridgeError::Pool,
            _ => BridgeError::Pool,
        }
    }
}

/// Uses the pool, so the crate must bridge ExecError completely.
pub fn run_jobs(pool: &ExecPool, jobs: &[u64]) -> u64 {
    let _ = pool.par_map(jobs, |_i, x| *x);
    0
}
