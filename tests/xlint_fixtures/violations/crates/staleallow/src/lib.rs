//! Fixture: allow-directive hygiene — `stale-allow` and the
//! unknown-rule arm of `bad-allow`. One reasoned directive still
//! suppresses a live finding; one suppresses nothing and must be
//! deleted; one names a rule id that does not exist; and one stale
//! directive is deliberately kept alive by a same-line reasoned
//! stale-allow pin.

#![forbid(unsafe_code)]

/// Used: the directive still suppresses a live lossy cast.
pub fn used(x: u64) -> u32 {
    x as u32 // xlint::allow(no-lossy-cast, STALE_USED the caller masks to 16 bits first)
}

/// Stale: nothing on this line trips no-wall-clock any more.
pub fn stale() -> u32 {
    7 // xlint::allow(no-wall-clock, STALE_DEAD the Instant::now read was removed in the v2 rewrite)
}

/// Typo'd rule id: suppresses nothing, ever.
pub fn typod(x: u64) -> u64 {
    x + 1 // xlint::allow(no-lossy-caste, STALE_TYPO bounded by the caller)
}

/// Kept: stale, but pinned with a same-line reasoned stale-allow while
/// the fix is in flight.
pub fn kept() -> u32 {
    9 // xlint::allow(no-wall-clock, STALE_KEPT clock removal in flight) xlint::allow(stale-allow, the fix lands with the frame rewrite)
}
