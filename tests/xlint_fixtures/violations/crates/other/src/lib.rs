//! Fixture crate that re-claims a stream label owned by crates/core.
#![forbid(unsafe_code)]

/// R2 site B: duplicate of the label in crates/core/src/lib.rs.
pub fn stream_id() -> StreamId {
    StreamId::named("fixture.duplicate")
}

pub struct StreamId;

impl StreamId {
    pub fn named(_label: &str) -> Self {
        StreamId
    }
}
