//! Fixture: a frame-reading crate for `wire-taint` (R11). A length
//! decoded off the wire sizes an allocation with no bound
//! (`collect_unchecked` fires); the same flow behind a `limits::`
//! comparison stays silent, and a documented upstream bound suppresses
//! via a reasoned allow.

#![forbid(unsafe_code)]

/// Pretend decoder: the returned length is peer-controlled.
pub fn decode_frame(bytes: &[u8]) -> usize {
    bytes.len()
}

/// Admission ceilings for decoded quantities.
pub mod limits {
    /// Largest item count a frame may declare.
    pub const MAX_ITEMS: usize = 1024;
}

/// wire-taint: the decoded count reaches `Vec::with_capacity` with no
/// validate/limits check between.
pub fn collect_unchecked(bytes: &[u8]) -> Vec<u8> {
    let n = decode_frame(bytes);
    Vec::with_capacity(n)
}

/// Silent: the comparison against `limits::MAX_ITEMS` certifies the
/// decoded count bounded before it sizes the allocation.
pub fn collect_checked(bytes: &[u8]) -> Vec<u8> {
    let n = decode_frame(bytes);
    if n > limits::MAX_ITEMS {
        return Vec::new();
    }
    Vec::with_capacity(n)
}

/// Suppressed: the bound lives upstream and is documented at the site.
pub fn collect_allowed(bytes: &[u8]) -> Vec<u8> {
    let n = decode_frame(bytes);
    // xlint::allow(wire-taint, the transport caps reads at 1 KiB so n is bounded before this crate sees it)
    Vec::with_capacity(n)
}
