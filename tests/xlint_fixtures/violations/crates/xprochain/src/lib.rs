//! Fixture: interprocedural taint for `wire-taint` (v4). A decoded
//! length crosses two private call hops before sizing an allocation —
//! the diagnostic fires at the *call site* in the pub entry point with
//! the full fn chain — while a bounding callee (`.min(limits::..)`)
//! cleans every consumer, both as a sink owner and as a clamping
//! return value.

#![forbid(unsafe_code)]

/// Pretend decoder: the returned count is peer-controlled.
pub fn decode_header2(bytes: &[u8]) -> usize {
    bytes.len()
}

/// Admission ceilings for decoded quantities.
pub mod limits {
    /// Largest table the wire may ask us to build.
    pub const MAX_SLOTS: usize = 4096;
}

/// wire-taint: `n` is wire-tainted, and `build_table` forwards it two
/// hops down to `Vec::with_capacity` — flagged here, at the call site.
pub fn ingest(bytes: &[u8]) -> Vec<u64> {
    let n = decode_header2(bytes);
    build_table(n)
}

fn build_table(n: usize) -> Vec<u64> {
    reserve_slots(n)
}

fn reserve_slots(n: usize) -> Vec<u64> {
    Vec::with_capacity(n)
}

/// Silent: the callee bounds its parameter before the allocation, so
/// no caller of `build_bounded` needs a check of its own.
pub fn ingest_bounded(bytes: &[u8]) -> Vec<u64> {
    let n = decode_header2(bytes);
    build_bounded(n)
}

fn build_bounded(n: usize) -> Vec<u64> {
    let m = n.min(limits::MAX_SLOTS);
    Vec::with_capacity(m)
}

/// Silent: the clamping callee's return value carries a ceiling, so the
/// caller's own allocation is bounded.
pub fn ingest_clamped(bytes: &[u8]) -> Vec<u64> {
    let n = clamp_slots(decode_header2(bytes));
    Vec::with_capacity(n)
}

fn clamp_slots(n: usize) -> usize {
    n.min(limits::MAX_SLOTS)
}
