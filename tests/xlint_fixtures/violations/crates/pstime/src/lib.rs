//! Fixture pstime crate root (conforming, so only duration.rs fires).
#![forbid(unsafe_code)]

pub mod duration;
