//! Fixture file on xlint's timing-path list: casts here are deny-tier.

/// R5 at deny tier — this rel path is in `TIMING_PATHS`.
pub fn to_float(raw: i64) -> f64 {
    raw as f64
}
