//! Fixture: an atd-style scheduler crate — a drain loop whose pool job
//! mutates a shared result cache (`exec-job-racy`) and a frame decoder
//! that indexes raw wire bytes (`panic-reachable`). The wholesale
//! `From<ExecError>` wrap keeps the bridge rule satisfied, so this crate
//! seeds exactly the two service-layer findings.

#![forbid(unsafe_code)]

use exec::{ExecError, ExecPool};

/// The crate's error enum; wrapped wholesale so `error-bridge-exhaustive`
/// stays silent here.
pub enum SchedError {
    /// The worker pool failed.
    Pool(ExecError),
}

impl From<ExecError> for SchedError {
    fn from(e: ExecError) -> Self {
        SchedError::Pool(e)
    }
}

/// exec-job-racy: the drain job inserts into a shared `Mutex` cache from
/// inside the pool closure, so which worker populates an entry — and
/// therefore the eviction order — depends on thread interleaving.
pub fn drain_into_cache(pool: &ExecPool, specs: &[u64]) -> u64 {
    let cache = Mutex::new(Vec::new());
    let _ = pool.par_map(specs, |_i, spec| {
        if let Ok(mut entries) = cache.lock() {
            entries.push(*spec);
        }
    });
    0
}

/// panic-reachable: reads the frame's type byte through `header_byte`,
/// which indexes the raw buffer without a bounds check.
pub fn frame_type(frame: &[u8]) -> u8 {
    header_byte(frame, 5)
}

fn header_byte(frame: &[u8], at: usize) -> u8 {
    frame[at]
}
