//! Fixture: the panic roots for the deep-chain entry points in lib.rs.

pub(crate) fn nth_word(words: &[u64], n: usize) -> u64 {
    words[n]
}

pub(crate) fn nth_checked(words: &[u64], n: usize) -> u64 {
    if n < words.len() {
        words[n] // xlint::allow(panic-reachable, guarded by the explicit length check on the line above)
    } else {
        0
    }
}
