//! Fixture: a cross-file call chain whose root indexes a slice parameter,
//! so the pub entry points here are flagged by `panic-reachable` — except
//! the one whose root site carries a reasoned allow.

#![forbid(unsafe_code)]

mod sink;

use sink::{nth_checked, nth_word};

/// panic-reachable: reaches `words[n]` in sink.rs through `nth_word`.
pub fn header_word(words: &[u64], n: usize) -> u64 {
    nth_word(words, n)
}

/// Clean: the root site in sink.rs carries a reasoned allow, which clears
/// this entire chain.
pub fn checked_word(words: &[u64], n: usize) -> u64 {
    nth_checked(words, n)
}
