//! Hostile-transport tests for the event-loop daemon: slow-loris
//! dribblers, truncated frames, and mid-pipeline disconnects must cost
//! one connection each — never the daemon, and never another session.
//!
//! Everything here is deterministic in outcome (counters and survival),
//! not in timing: the loops poll service counters with a bounded retry
//! budget instead of sleeping fixed wall-clock amounts.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use atd::scheduler::Scheduler;
use atd::{serve_with, JobSpec, PipelinedClient, ServerConfig, Service, ServiceStats};
use exec::ExecPool;
use pstime::{DataRate, Duration};

/// Retry cadence for counter polls.
const POLL: core::time::Duration = core::time::Duration::from_millis(10);
/// Bounded patience: 10 ms × 1000 = ten seconds worst case.
const POLL_BUDGET: usize = 1000;

fn bathtub(points: u32) -> JobSpec {
    JobSpec::bathtub(
        Duration::from_ps_f64(3.2),
        Duration::from_ps(20),
        DataRate::from_gbps(2.5),
        0.5,
        points,
    )
}

/// Boots a daemon with an aggressive idle budget so stalled connections
/// are evicted within test patience.
fn boot(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = std::thread::spawn(move || {
        let service = Service::new(ExecPool::serial(), Scheduler::new(64, 64));
        serve_with(&listener, service, config).unwrap();
    });
    (addr, daemon)
}

/// Polls `stats` through a healthy THP/2 session until `done` approves
/// or patience runs out; returns the last counters either way.
fn poll_stats(admin: &mut PipelinedClient, done: impl Fn(&ServiceStats) -> bool) -> ServiceStats {
    let mut last = admin.stats().unwrap();
    for _ in 0..POLL_BUDGET {
        if done(&last) {
            break;
        }
        std::thread::sleep(POLL);
        last = admin.stats().unwrap();
    }
    last
}

/// A slow-loris peer dribbles half a header and stalls forever. The
/// daemon must evict it on the idle budget while a healthy session keeps
/// getting answers, and must count the eviction.
#[test]
fn slow_loris_is_evicted_while_healthy_sessions_are_served() {
    let (addr, daemon) = boot(ServerConfig { pipeline_depth: 8, idle_budget: 50 });

    let mut loris = TcpStream::connect(addr).unwrap();
    // Seven bytes of a THP/2 ping header — enough to pin version 2, not
    // enough to parse a frame — then silence.
    loris.write_all(&[0x54, 0x48, 0x50, 0x32, 0x02, 0x01, 0x01]).unwrap();
    loris.flush().unwrap();

    let mut healthy = PipelinedClient::connect(addr).unwrap();
    // The healthy session stays live through the entire eviction window.
    for token in 0..20 {
        assert_eq!(healthy.ping(token).unwrap(), token);
    }
    let stats = poll_stats(&mut healthy, |s| s.connections_failed >= 1);
    assert_eq!(stats.connections_failed, 1, "loris eviction must be counted");

    // The evicted socket is actually dead: the peer observes EOF/reset.
    loris.set_read_timeout(Some(core::time::Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 16];
    match loris.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("evicted loris read {n} bytes"),
    }

    // Still a working daemon afterwards.
    assert_eq!(healthy.ping(99).unwrap(), 99);
    healthy.shutdown().unwrap();
    daemon.join().unwrap();
}

/// A peer that sends a frame prefix and hangs up mid-frame: the partial
/// frame is counted as rejected, the connection as failed, and the
/// daemon keeps serving.
#[test]
fn truncated_frame_then_disconnect_is_counted_not_fatal() {
    let (addr, daemon) = boot(ServerConfig { pipeline_depth: 8, idle_budget: 10_000 });

    {
        let mut rude = TcpStream::connect(addr).unwrap();
        let frame = atd::Request::Ping { token: 7 }.to_frame2(1).unwrap();
        rude.write_all(&frame[..frame.len() / 2]).unwrap();
        rude.flush().unwrap();
        // Drop: FIN arrives with half a frame buffered daemon-side.
    }

    let mut admin = PipelinedClient::connect(addr).unwrap();
    let stats = poll_stats(&mut admin, |s| s.frames_rejected >= 1 && s.connections_failed >= 1);
    assert_eq!(stats.frames_rejected, 1, "the half frame is a rejected frame");
    assert_eq!(stats.connections_failed, 1, "the hangup is a failed connection");

    assert_eq!(admin.ping(3).unwrap(), 3);
    admin.shutdown().unwrap();
    daemon.join().unwrap();
}

/// A pipelined session vanishes with a full window in flight. Every
/// admitted job still completes (counters balance), the orphaned routes
/// resolve to no-ops, and fresh sessions are served as if nothing
/// happened.
#[test]
fn mid_pipeline_disconnect_sheds_the_session_and_leaks_nothing() {
    let (addr, daemon) = boot(ServerConfig { pipeline_depth: 16, idle_budget: 10_000 });

    let jobs = 8u64;
    {
        let mut doomed = std::net::TcpStream::connect(addr).unwrap();
        let mut burst = Vec::new();
        for i in 0..jobs {
            let points = 101 + u32::try_from(i).unwrap();
            let request = atd::Request::Submit { session: 1, spec: bathtub(points) };
            burst.extend_from_slice(&request.to_frame2(i + 1).unwrap());
        }
        // A half frame after the full window pins the failure path: the
        // hangup arrives with undecodable bytes buffered daemon-side, so
        // the eviction is deterministic regardless of how fast the eight
        // admitted jobs complete.
        let partial = atd::Request::Ping { token: 0 }.to_frame2(jobs + 1).unwrap();
        burst.extend_from_slice(&partial[..partial.len() / 2]);
        doomed.write_all(&burst).unwrap();
        doomed.flush().unwrap();
        // Drop without reading a single reply: the daemon now owes eight
        // streams to a connection that no longer exists.
    }

    let mut admin = PipelinedClient::connect(addr).unwrap();
    let stats = poll_stats(&mut admin, |s| s.completed >= jobs && s.connections_failed >= 1);
    assert_eq!(stats.submitted, jobs, "all eight were admitted");
    assert_eq!(stats.completed, jobs, "orphaned jobs still complete");
    assert_eq!(stats.connections_failed, 1);
    assert_eq!(stats.frames_rejected, 1, "the trailing half frame is rejected");

    // The daemon is fully functional: the same spec now comes from the
    // cache, proving the orphaned results landed and were retained.
    let before = stats.cache_hits;
    let mut client = PipelinedClient::connect(addr).unwrap();
    let corr = client.submit_pipelined(2, bathtub(101)).unwrap();
    loop {
        if let atd::Event::Done { correlation, .. } = client.next_event().unwrap() {
            assert_eq!(correlation, corr);
            break;
        }
    }
    let after = admin.stats().unwrap();
    assert_eq!(after.cache_hits, before + 1, "replay of an orphaned spec is a cache hit");

    admin.shutdown().unwrap();
    daemon.join().unwrap();
}

/// Replayed and gapped CHUNK sequence numbers are rejected with typed
/// errors that name the hostile pattern, and a rejection never corrupts
/// the stream: the next in-order chunk is still accepted.
#[test]
fn reassembler_names_replayed_and_gapped_chunk_sequences() {
    use atd::wire::FrameError;
    use atd::Reassembler;

    // A duplicate of an already-consumed seq is a replay.
    let mut r = Reassembler::new();
    r.push(0, b"head").unwrap();
    assert_eq!(
        r.push(0, b"head").unwrap_err(),
        FrameError::BadPayload { context: "duplicate or replayed chunk seq" }
    );

    // Out-of-order delivery: seq 1 before seq 0 is a gap at slot 0, and
    // the rejected chunk is not consumed.
    let mut early = Reassembler::new();
    assert_eq!(
        early.push(1, b"tail").unwrap_err(),
        FrameError::BadPayload { context: "chunk seq gap" }
    );
    assert_eq!(early.chunks(), 0);

    // A skipped slot mid-stream is also a gap, and rejecting it leaves
    // the reassembler able to take the real next chunk.
    assert_eq!(
        r.push(2, b"tail").unwrap_err(),
        FrameError::BadPayload { context: "chunk seq gap" }
    );
    r.push(1, b"tail").unwrap();
    assert_eq!(r.chunks(), 2);
}

/// Every strict prefix of each magic word followed by a hangup is one
/// rejected frame and one failed connection — and once the probes are
/// reaped, opened and closed balance to exactly the one live admin
/// session.
#[test]
fn magic_prefix_probes_balance_the_connection_counters() {
    let (addr, daemon) = boot(ServerConfig { pipeline_depth: 8, idle_budget: 10_000 });

    let mut probes = 0u64;
    for magic in [*b"THP1", *b"THP2"] {
        for cut in 1..=4 {
            let mut probe = TcpStream::connect(addr).unwrap();
            probe.write_all(&magic[..cut]).unwrap();
            probe.flush().unwrap();
            probes += 1;
            // Drop: EOF lands with a partial magic buffered daemon-side.
        }
    }

    let mut admin = PipelinedClient::connect(addr).unwrap();
    let stats = poll_stats(&mut admin, |s| {
        s.connections_failed >= probes && s.connections_closed >= probes
    });
    assert_eq!(stats.frames_rejected, probes, "each prefix probe is one rejected frame");
    assert_eq!(stats.connections_failed, probes, "each hangup is one failed connection");
    assert_eq!(stats.connections_opened, probes + 1, "eight probes plus the admin session");
    assert_eq!(stats.connections_closed, probes, "every probe is reaped; only the admin is live");

    assert_eq!(admin.ping(1).unwrap(), 1);
    admin.shutdown().unwrap();
    daemon.join().unwrap();
}

/// Mixed revision bytes — each magic claiming the other revision's
/// version, plus out-of-range versions — are rejected as frames and
/// answered with a `Failed` reply before a clean close: rejections
/// count, connection failures do not, and the counters still balance.
#[test]
fn mixed_magic_and_version_bytes_are_rejected_with_a_reply() {
    let (addr, daemon) = boot(ServerConfig { pipeline_depth: 8, idle_budget: 10_000 });

    let mixes: [([u8; 4], u8); 4] = [(*b"THP1", 2), (*b"THP2", 1), (*b"THP1", 9), (*b"THP2", 0)];
    for (magic, version) in mixes {
        let mut probe = TcpStream::connect(addr).unwrap();
        let mut hello = magic.to_vec();
        hello.push(version);
        probe.write_all(&hello).unwrap();
        probe.flush().unwrap();
        // The daemon answers `Failed` and closes; drain to EOF so the
        // close is clean on both sides.
        probe.set_read_timeout(Some(core::time::Duration::from_secs(10))).unwrap();
        let mut reply = Vec::new();
        probe.read_to_end(&mut reply).unwrap();
        assert!(!reply.is_empty(), "a mixed-revision hello earns a Failed reply");
    }

    let total = u64::try_from(mixes.len()).unwrap();
    let mut admin = PipelinedClient::connect(addr).unwrap();
    let stats = poll_stats(&mut admin, |s| s.connections_closed >= total);
    assert_eq!(stats.frames_rejected, total, "each mixed hello is one rejected frame");
    assert_eq!(stats.connections_failed, 0, "a rejected hello closes cleanly, not as a failure");
    assert_eq!(stats.connections_opened, total + 1);
    assert_eq!(stats.connections_closed, total);

    admin.shutdown().unwrap();
    daemon.join().unwrap();
}
