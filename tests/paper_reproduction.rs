//! The headline integration test: every figure and claim of Keezer et al.
//! (DATE 2005) reproduced within tolerance, in one assertion per
//! experiment. This is what EXPERIMENTS.md records.

#[test]
fn fig04_packet_slot_structure() {
    let r = bench_support::fig04_packet_slot().expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG4 drifted:\n{r}");
}

#[test]
fn fig06_transition_times() {
    let r = bench_support::fig06_tx_waveforms(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG6 drifted:\n{r}");
}

#[test]
fn fig07_eye_at_2g5() {
    let r = bench_support::fig07_eye_2g5(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG7 drifted:\n{r}");
}

#[test]
fn fig08_eye_at_4g0() {
    let r = bench_support::fig08_eye_4g0(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG8 drifted:\n{r}");
}

#[test]
fn fig09_single_edge_jitter() {
    let r = bench_support::fig09_edge_jitter(2_000, 2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG9 drifted:\n{r}");
}

#[test]
fn fig10_fig11_level_programming() {
    let r = bench_support::fig10_fig11_levels(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG10/11 drifted:\n{r}");
}

#[test]
fn fig13_parallel_probing_speedup() {
    let r = bench_support::fig13_parallel_probe().expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG13 drifted:\n{r}");
}

#[test]
fn fig16_mini_eye_at_1g0() {
    let r = bench_support::fig16_mini_eye_1g0(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG16 drifted:\n{r}");
}

#[test]
fn fig17_mini_eye_at_2g5() {
    let r = bench_support::fig17_mini_eye_2g5(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG17 drifted:\n{r}");
}

#[test]
fn fig18_five_gbps_pattern() {
    let r = bench_support::fig18_mini_5g_pattern(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG18 drifted:\n{r}");
}

#[test]
fn fig19_mini_eye_at_5g0() {
    let r = bench_support::fig19_mini_eye_5g0(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "FIG19 drifted:\n{r}");
}

#[test]
fn summary_timing_accuracy_claim() {
    let r = bench_support::summary_timing_accuracy().expect("experiment runs");
    assert!(r.all_within_tolerance(), "SUMMARY drifted:\n{r}");
    // The paper claims ±25 ps; the hard bound must hold, not just the
    // comparison tolerance.
    assert!(
        r.rows()[0].measured <= 25.0,
        "edge placement error {} ps exceeds the ±25 ps claim",
        r.rows()[0].measured
    );
}

#[test]
fn data_vortex_routing_and_buffering() {
    let r = bench_support::datavortex_routing(2005).expect("experiment runs");
    assert!(r.all_within_tolerance(), "DV drifted:\n{r}");
}

#[test]
fn terabit_scaling_arithmetic() {
    let r = bench_support::ext_terabit_scaling().expect("experiment runs");
    assert!(r.all_within_tolerance(), "EXT drifted:\n{r}");
}

#[test]
fn cost_model_claim() {
    let r = bench_support::cost_comparison().expect("experiment runs");
    assert!(r.all_within_tolerance(), "COST drifted:\n{r}");
    // "Significantly lower in cost than conventional ATE": both systems
    // must beat ATE by > 5x.
    for row in r.rows() {
        assert!(row.measured > 5.0, "{} barely saves money", row.experiment);
    }
}

#[test]
fn eye_openings_degrade_monotonically_with_rate() {
    // The paper's overall shape: same hardware, rising rate, shrinking eye.
    use ate::{TestProgram, TestSystem};
    use pstime::DataRate;
    let mut system = TestSystem::mini_tester().expect("boots");
    let mut last = f64::INFINITY;
    for gbps in [1.0, 2.5, 5.0] {
        let eye = system
            .run(&TestProgram::prbs_eye(DataRate::from_gbps(gbps), 4_096), 2005)
            .expect("runs")
            .eye
            .opening_ui()
            .value();
        assert!(eye < last, "eye at {gbps} Gbps ({eye}) should be below {last}");
        last = eye;
    }
}

#[test]
fn full_report_passes_every_row() {
    let report = bench_support::full_report(2005).expect("experiment runs");
    assert!(
        report.all_within_tolerance(),
        "{} rows out of tolerance:\n{report}",
        report.rows().len() - report.passing()
    );
    assert!(report.rows().len() >= 30, "expected a comprehensive report");
}
