//! Hostile farm suite: heads die mid-campaign and the coordinator must
//! re-shard deterministically without changing a single output byte.
//!
//! The adversary here is a head that accepts some work and then fails —
//! the worst case for a merge layer, because partial results are already
//! banked when the fleet topology changes. These tests pin the farm's
//! contract under that adversary: byte-identity with a single head, a
//! deterministic re-shard (two coordinators observing the same failure
//! make the same decisions), no lost or duplicated sub-results, balanced
//! stats, and clean re-admission.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use atd::{AtdError, Client, JobResult, JobSpec, Loopback, Provenance, ServiceStats};
use atd_farm::{local_head, plan, Farm, FarmConfig, FarmError, Head};
use pstime::DataRate;

/// A head that serves faithfully until its fuse burns, then errors on
/// every submission. The fuse is shared with the test so a fleet can be
/// built healthy and sabotaged later, mid-campaign.
struct FlakyHead {
    inner: Client<Loopback>,
    /// Successful submissions remaining before the head starts failing;
    /// `u64::MAX` means healthy forever.
    fuse: Arc<AtomicU64>,
}

impl FlakyHead {
    fn healthy() -> (Self, Arc<AtomicU64>) {
        let fuse = Arc::new(AtomicU64::new(u64::MAX));
        (FlakyHead { inner: local_head(), fuse: Arc::clone(&fuse) }, fuse)
    }
}

impl Head for FlakyHead {
    fn submit(&mut self, session: u32, spec: JobSpec) -> Result<(Provenance, JobResult), AtdError> {
        let burned = self
            .fuse
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| left.checked_sub(1))
            .is_err();
        if burned {
            return Err(AtdError::Remote { message: "injected fault: fuse burned".to_string() });
        }
        Head::submit(&mut self.inner, session, spec)
    }

    fn stats(&mut self) -> Result<ServiceStats, AtdError> {
        Head::stats(&mut self.inner)
    }

    fn shutdown(&mut self) -> Result<(), AtdError> {
        Head::shutdown(&mut self.inner)
    }
}

fn wafer_spec() -> JobSpec {
    JobSpec::wafer(&minitester::WaferRunConfig {
        dies: 12,
        columns: 4,
        sites: 4,
        test_bits: 256,
        seed: 7,
        ..minitester::WaferRunConfig::default()
    })
}

fn eye_spec() -> JobSpec {
    JobSpec::eye(DataRate::from_gbps(2.5), 256, 17, 5)
}

fn single_head_bytes(spec: JobSpec) -> Vec<u8> {
    let mut single = Farm::in_proc(1).expect("single-head farm");
    single.submit(1, spec).expect("single-head run").result.encoded().expect("encode")
}

/// Campaigns shard 8 ways over 4 heads, so by pigeonhole some head owns
/// at least two bands — the precondition for a genuinely *mid-campaign*
/// death (one band banked, the next one failing).
const SHARDS: usize = 8;
const HEADS: usize = 4;

/// Builds a healthy 4-head flaky fleet and returns it with the fuses.
fn flaky_fleet(retries: u32) -> (Farm<FlakyHead>, Vec<Arc<AtomicU64>>) {
    let mut heads = Vec::new();
    let mut fuses = Vec::new();
    for _ in 0..HEADS {
        let (head, fuse) = FlakyHead::healthy();
        heads.push(head);
        fuses.push(fuse);
    }
    let farm = Farm::new(heads, FarmConfig { shards: Some(SHARDS), retries }).expect("farm");
    (farm, fuses)
}

/// Burns the fuse of the busiest head (the one owning the most bands)
/// after it has served exactly one sub-spec, then runs the campaign: the
/// head banks partial work and dies mid-round. Returns the campaign
/// outcome, the farm, and the victim's head id.
fn run_sabotaged_campaign(
    spec: JobSpec,
    retries: u32,
) -> (Result<atd_farm::FarmSubmitted, FarmError>, Farm<FlakyHead>, usize) {
    let (mut farm, fuses) = flaky_fleet(retries);
    let bands = plan(&spec, SHARDS).expect("plan");
    assert!(bands.len() > 1, "campaign spec must actually shard");
    let mut owned = vec![0usize; HEADS];
    for band in &bands {
        let head = farm.route(band).expect("routable");
        if let Some(count) = owned.get_mut(head) {
            *count += 1;
        }
    }
    let victim = owned
        .iter()
        .enumerate()
        .max_by_key(|(_, count)| **count)
        .map(|(head, _)| head)
        .expect("non-empty fleet");
    assert!(
        owned.get(victim).copied().unwrap_or(0) >= 2,
        "pigeonhole violated: no head owns two bands"
    );
    fuses.get(victim).expect("victim fuse").store(1, Ordering::SeqCst);
    let outcome = farm.submit(1, spec);
    (outcome, farm, victim)
}

/// A head killed mid-campaign — after completing part of its group —
/// must not change the merged bytes, for composite specs of both wafer
/// and eye shape.
#[test]
fn mid_campaign_kill_preserves_byte_identity() {
    for spec in [wafer_spec(), eye_spec()] {
        let baseline = single_head_bytes(spec);
        let (outcome, farm, victim) = run_sabotaged_campaign(spec, 2);
        let done = outcome.expect("campaign must survive one dead head");
        assert_eq!(
            done.result.encoded().expect("encode"),
            baseline,
            "merged bytes changed after a mid-campaign {} head kill",
            spec.kind()
        );
        let stats = farm.stats();
        assert!(!farm.is_up(victim), "the failing head must be marked down");
        assert_eq!(stats.heads_down, 1);
        assert!(stats.retry_rounds >= 1, "a mid-round death must force a retry round");
        assert!(stats.rerouted >= 1, "the dead head's keys must re-shard to survivors");
    }
}

/// Two coordinators observing the same failure make byte-identical
/// decisions: same stats, same tallies, same output.
#[test]
fn reshard_is_deterministic_across_identical_campaigns() {
    let (a, farm_a, victim_a) = run_sabotaged_campaign(wafer_spec(), 2);
    let (b, farm_b, victim_b) = run_sabotaged_campaign(wafer_spec(), 2);
    assert_eq!(victim_a, victim_b);
    let a = a.expect("campaign a");
    let b = b.expect("campaign b");
    assert_eq!(a.result, b.result);
    assert_eq!(a.provenance, b.provenance);
    assert_eq!(farm_a.stats(), farm_b.stats(), "re-shard decisions must be deterministic");
}

/// No sub-result is lost or computed twice: every planned band completes
/// exactly once, and the failure tally matches the injected fault.
#[test]
fn no_lost_or_duplicated_sub_results() {
    let (outcome, farm, victim) = run_sabotaged_campaign(wafer_spec(), 2);
    let done = outcome.expect("campaign");
    let stats = farm.stats();
    let completed: u64 = stats.per_head.iter().map(|t| t.completed).sum();
    let failed: u64 = stats.per_head.iter().map(|t| t.failed).sum();
    assert_eq!(
        completed, stats.sub_specs,
        "every planned sub-spec must complete exactly once (lost or duplicated work otherwise)"
    );
    assert!(failed >= 1, "the injected fault must show up in the failure tally");
    assert_eq!(
        stats.per_head.get(victim).map(|t| t.completed),
        Some(1),
        "the victim's one pre-death completion must be kept, not recomputed"
    );
    // The merged wafer must hold every die exactly once, in order.
    let JobResult::Wafer { records, .. } = &done.result else {
        panic!("wafer spec must merge to a wafer result");
    };
    let dies: Vec<u32> = records.iter().map(|r| r.die).collect();
    assert_eq!(dies, (0..12).collect::<Vec<u32>>(), "die coverage after re-shard");
}

/// With a zero retry budget the campaign fails fast with a typed error
/// instead of silently dropping the dead head's bands.
#[test]
fn retry_budget_exhaustion_is_a_typed_error() {
    let (outcome, farm, _) = run_sabotaged_campaign(wafer_spec(), 0);
    match outcome {
        Err(FarmError::RetriesExhausted { kind, attempts, .. }) => {
            assert_eq!(kind, "wafer");
            assert_eq!(attempts, 1, "retries=0 means exactly the initial round");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    let completed: u64 = farm.stats().per_head.iter().map(|t| t.completed).sum();
    assert!(completed < farm.stats().sub_specs, "some bands must be left unfinished");
}

/// A fleet that dies entirely reports `AllHeadsDown`, never a hang or a
/// partial merge.
#[test]
fn total_fleet_loss_is_a_typed_error() {
    let (mut farm, fuses) = flaky_fleet(3);
    for fuse in &fuses {
        fuse.store(0, Ordering::SeqCst);
    }
    match farm.submit(1, wafer_spec()) {
        Err(FarmError::AllHeadsDown { kind }) => assert_eq!(kind, "wafer"),
        other => panic!("expected AllHeadsDown, got {other:?}"),
    }
}

/// Re-admitting a repaired head restores its routing and its banked
/// cache: the next campaign routes home again and serves hot.
#[test]
fn readmission_restores_routing_and_cache_affinity() {
    let (outcome, mut farm, victim) = run_sabotaged_campaign(eye_spec(), 2);
    let baseline = outcome.expect("campaign").result;
    assert!(farm.readmit(victim));
    assert!(farm.is_up(victim));
    // The re-admitted head's fuse is still burned: it fails again on
    // first contact, gets re-marked down, and the campaign must still
    // succeed via re-shard — a flapping head never corrupts output.
    let flapping = farm.submit(1, eye_spec()).expect("campaign across a flapping head");
    assert_eq!(flapping.result, baseline, "a flapping head must not change merged bytes");
    assert!(!farm.is_up(victim), "the still-broken head must be re-marked down");
}
