//! Cross-crate integration tests: flows that span the DLC, PECL, fabric,
//! and application layers end to end.

use ate::calibration::{deskew_channels, paper_accuracy_target};
use ate::{TestProgram, TestSystem};
use pecl::ClockFanout;
use pstime::{DataRate, Duration, Millivolts};
use signal::BitStream;

#[test]
fn usb_controls_a_running_system() {
    // The PC-side control loop: ping over USB, read the design ID, upload
    // a pattern to SRAM, read it back — against a booted TestSystem core.
    use dlc::regs::map;
    use dlc::usb::{Opcode, Packet};

    let mut system = TestSystem::optical_testbed().expect("boots");
    let core = system.core_mut();

    let resp =
        core.usb_transaction(Packet::command(Opcode::Ping, &[]).as_bytes()).expect("ping ok");
    assert_eq!(Packet::parse(&resp).unwrap().payload(), vec![dlc::usb::PROTOCOL_VERSION]);

    let resp = core
        .usb_transaction(Packet::command(Opcode::ReadReg, &[map::ID.0]).as_bytes())
        .expect("read id");
    assert_eq!(Packet::parse(&resp).unwrap().payload(), vec![map::ID_VALUE]);

    let mut payload = vec![0x0040u16];
    payload.extend_from_slice(&[0x1234, 0xABCD]);
    core.usb_transaction(Packet::command(Opcode::LoadSram, &payload).as_bytes())
        .expect("sram load");
    let resp = core
        .usb_transaction(Packet::command(Opcode::ReadSram, &[0x0040, 2]).as_bytes())
        .expect("sram read");
    assert_eq!(Packet::parse(&resp).unwrap().payload(), vec![0x1234, 0xABCD]);
}

#[test]
fn design_update_changes_behaviour_after_power_cycle() {
    // The paper's FLASH-overwrite flow, through the full system facade.
    let mut system = TestSystem::mini_tester().expect("boots");
    let program = TestProgram::prbs_eye(DataRate::from_gbps(2.5), 1_024);
    assert!(system.run(&program, 1).is_ok());

    // Re-flash and power-cycle: configuration survives as a fresh design.
    let core = system.core_mut();
    let v2 = dlc::Bitstream::new(dlc::flash::DEVICE_ID, (0..128).map(|i| i ^ 0x77).collect());
    core.program_flash_via_jtag(&v2).expect("flash ok");
    core.power_up().expect("boot v2");
    // Channels were wiped by reconfiguration; the facade reconfigures them
    // per run, so the program still works.
    assert!(system.run(&program, 2).is_ok());
}

#[test]
fn deskewed_multichannel_transmitter_meets_25ps() {
    let fanout = ClockFanout::new(10, Duration::from_ps(1));
    let result = deskew_channels(&fanout, DataRate::from_gbps(2.5), paper_accuracy_target())
        .expect("calibration converges");
    assert!(result.worst_residual <= Duration::from_ps(8));
    assert_eq!(result.codes.len(), 10);
}

#[test]
fn testbed_slot_survives_the_optical_path_under_level_stress() {
    // Combine level programming (Figs. 10–11) with the framed optical path:
    // reduced swing still decodes cleanly through healthy optics.
    use testbed::frame::{PacketSlot, SlotTiming};
    use testbed::optics::Photodetector;
    use testbed::{Receiver, Transmitter};

    let timing = SlotTiming::paper();
    let mut tx = Transmitter::new(timing).expect("tx boots");
    tx.set_levels(signal::LevelSet::pecl().with_swing(Millivolts::new(400)));
    let rx = Receiver::new(timing);
    let slot =
        PacketSlot::new(timing, [0xA5A5_5A5A, 0x0F0F_F0F0, 0xDEAD_BEEF, 0x1234_5678], 0b1011);
    let sent = tx.transmit_slot(&slot, 99).expect("renders");
    let link = sent.to_optical(500.0, 10.0);
    let got = rx.receive_optical(&sent, &link, &Photodetector::testbed(), 7).expect("decodes");
    assert_eq!(got.payload, slot.payload());
    assert_eq!(got.address, 0b1011);
}

#[test]
fn minitester_catches_every_injected_defect_class() {
    use minitester::{Defect, MiniTester, TestPlan, WlpChannel, WlpDut};
    let rate = DataRate::from_gbps(2.5);
    let defects = [
        Defect::StuckInput { level: true },
        Defect::StuckInput { level: false },
        Defect::ShiftedThreshold { offset: Millivolts::new(500) },
        Defect::LossyLead { extra_attenuation: 0.05 },
    ];
    for defect in defects {
        let mut tester = MiniTester::new().expect("boots");
        tester.insert_dut(WlpDut::good(WlpChannel::interposer()).with_defect(defect));
        let outcome = tester.run(&TestPlan::prbs_bist(rate, 1_024), 3).expect("runs");
        assert!(!outcome.passed(), "defect {defect:?} escaped: {outcome}");
    }
    // And the control: a good die passes the same plan.
    let mut tester = MiniTester::new().expect("boots");
    let outcome = tester.run(&TestPlan::prbs_bist(rate, 1_024), 3).expect("runs");
    assert!(outcome.passed(), "good die failed: {outcome}");
}

#[test]
fn dlc_patterns_flow_through_pecl_to_measurable_waveforms() {
    // Bottom-to-top: SRAM-stored pattern -> DLC engine -> PECL chain ->
    // eye measurement, all through public APIs.
    let mut system = TestSystem::optical_testbed().expect("boots");
    let pattern = BitStream::from_str_bits("11010010").repeat(64);
    let core = system.core_mut();
    core.fpga_mut().sram_mut().load_bits(0, &pattern).expect("pattern fits");
    core.configure_channel(
        0,
        dlc::PatternKind::SramPlayback { addr: 0, n_bits: pattern.len() },
        DataRate::from_mbps(400),
    )
    .expect("channel configured");
    let bits = core.generate(0, pattern.len()).expect("generates");
    assert_eq!(bits, pattern);

    let program = TestProgram::fixed(bits, DataRate::from_gbps(2.5));
    let result = system.run(&program, 5).expect("renders and measures");
    assert!(result.eye.opening_ui().value() > 0.8);
}

#[test]
fn e2e_bit_errors_scale_with_optical_power() {
    // Sweep launch power downward: BER must be monotically worse at the
    // starved end than at the healthy end.
    use testbed::e2e::{run, E2eConfig};
    let healthy =
        run(&E2eConfig { packets: 24, seed: 3, ..E2eConfig::default() }).expect("healthy run");
    let starved = run(&E2eConfig {
        packets: 24,
        seed: 3,
        p_on_uw: 3.0,
        extinction_ratio: 1.3,
        rx_noise_mv: 25.0,
        ..E2eConfig::default()
    })
    .expect("starved run");
    assert_eq!(healthy.bit_errors, 0);
    assert!(starved.bit_errors > 100, "starved link too clean: {starved}");
}

#[test]
fn shmoo_operating_point_decodes_cleanly() {
    // Close the loop: pick the shmoo's best operating point, then capture
    // at exactly that strobe/threshold and expect zero errors.
    use minitester::{EtCapture, MiniTesterDatapath, ShmooConfig, ShmooPlot};
    let rate = DataRate::from_gbps(2.5);
    let mut path = MiniTesterDatapath::new().expect("boots");
    let expected = path.expected_prbs(rate, 1_024).expect("expected bits");
    let wave = path.prbs_stimulus(rate, 1_024, 17).expect("stimulus");
    let plot = ShmooPlot::run(&wave, rate, &expected, &ShmooConfig::pecl(), 4).expect("shmoo");
    let (threshold, phase) = plot.best_operating_point().expect("open region");
    let mut capture = EtCapture::new();
    capture.sampler_mut().set_threshold(threshold);
    let point = capture.capture_at(&wave, rate, &expected, phase, 9).expect("capture");
    assert_eq!(point.errors, 0, "best operating point must be clean");
}
