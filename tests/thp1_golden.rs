//! Golden wire vectors for THP/1.
//!
//! These byte sequences are frozen: a failure here means the wire format
//! changed, which breaks every deployed client/daemon pair. Bump
//! [`atd::wire::VERSION`] instead of editing a vector.

use atd::cache::fnv1a64;
use atd::proto::msg;
use atd::wire::{self, FrameError, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
use atd::{JobResult, JobSpec, Provenance, Request, Response, ServiceStats};
use pstime::{DataRate, Duration};

/// `Ping { token: 0x0123_4567_89AB_CDEF }`, frozen on the wire.
const PING_FRAME: [u8; 20] = [
    0x54, 0x48, 0x50, 0x31, // magic "THP1"
    0x01, // version 1
    0x01, // PING
    0x00, 0x00, // reserved
    0x00, 0x00, 0x00, 0x08, // payload length 8
    0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF, // token, big-endian
];

/// `Submit { session: 7, spec: bathtub(3 ps, 20 ps, 2.5 Gb/s, 0.5, 101) }`.
const SUBMIT_BATHTUB_FRAME: [u8; 53] = [
    0x54, 0x48, 0x50, 0x31, // magic
    0x01, // version
    0x03, // SUBMIT
    0x00, 0x00, // reserved
    0x00, 0x00, 0x00, 0x29, // payload length 41
    0x00, 0x00, 0x00, 0x07, // session 7
    0x04, // spec tag: bathtub
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0B, 0xB8, // rj_rms = 3_000 fs
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4E, 0x20, // dj_pp = 20_000 fs
    0x00, 0x00, 0x00, 0x00, 0x95, 0x02, 0xF9, 0x00, // rate = 2_500_000_000 bps
    0x3F, 0xE0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // transition density 0.5
    0x00, 0x00, 0x00, 0x65, // points 101
];

fn golden_ping() -> Request {
    Request::Ping { token: 0x0123_4567_89AB_CDEF }
}

fn golden_submit() -> Request {
    Request::Submit {
        session: 7,
        spec: JobSpec::bathtub(
            Duration::from_ps(3),
            Duration::from_ps(20),
            DataRate::from_gbps(2.5),
            0.5,
            101,
        ),
    }
}

#[test]
fn ping_frame_matches_golden_bytes() {
    assert_eq!(golden_ping().to_frame().unwrap(), PING_FRAME);
    assert_eq!(Request::from_frame(&PING_FRAME).unwrap(), golden_ping());
}

#[test]
fn submit_frame_matches_golden_bytes() {
    assert_eq!(SUBMIT_BATHTUB_FRAME[5], msg::SUBMIT);
    assert_eq!(golden_submit().to_frame().unwrap(), SUBMIT_BATHTUB_FRAME);
    assert_eq!(Request::from_frame(&SUBMIT_BATHTUB_FRAME).unwrap(), golden_submit());
}

/// `StatsReport` with every counter distinct, frozen — pins the order of
/// the counters block, including the connection opened/closed pair and
/// the persistent-store trio.
const STATS_REPORT_FRAME: [u8; 124] = [
    0x54, 0x48, 0x50, 0x31, // magic
    0x01, // version
    0x82, // STATS_REPORT
    0x00, 0x00, // reserved
    0x00, 0x00, 0x00, 0x70, // payload length 112
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, // submitted 1
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, // completed 2
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, // cache_hits 3
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, // batched 4
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x05, // shed 5
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x06, // failed 6
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07, // connections_opened 7
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x08, // connections_closed 8
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x09, // connections_failed 9
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0A, // frames_rejected 10
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0B, // store_hits 11
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0C, // store_misses 12
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0D, // store_recovered 13
    0x00, 0x00, 0x01, 0x00, // queue_capacity 256
    0x00, 0x00, 0x00, 0x40, // cache_capacity 64
];

fn golden_stats() -> Response {
    Response::StatsReport(ServiceStats {
        submitted: 1,
        completed: 2,
        cache_hits: 3,
        batched: 4,
        shed: 5,
        failed: 6,
        connections_opened: 7,
        connections_closed: 8,
        connections_failed: 9,
        frames_rejected: 10,
        store_hits: 11,
        store_misses: 12,
        store_recovered: 13,
        queue_capacity: 256,
        cache_capacity: 64,
    })
}

#[test]
fn stats_report_frame_matches_golden_bytes() {
    assert_eq!(STATS_REPORT_FRAME[5], msg::STATS_REPORT);
    assert_eq!(golden_stats().to_frame().unwrap(), STATS_REPORT_FRAME);
    assert_eq!(Response::from_frame(&STATS_REPORT_FRAME).unwrap(), golden_stats());
}

/// Every remaining type code in the THP/1 vocabulary round-trips under
/// its frozen constant: batch submission and the rest of the response
/// set.
#[test]
fn remaining_type_codes_are_frozen() {
    let result =
        JobResult::Bathtub { pairs: vec![(0.5, 1e-12)], rendered: "one point".to_string() };
    let batch = Request::SubmitBatch { session: 1, specs: vec![golden_submit_spec()] };
    let frame = batch.to_frame().unwrap();
    assert_eq!(frame[5], msg::SUBMIT_BATCH);
    assert_eq!(Request::from_frame(&frame).unwrap(), batch);

    let responses = [
        (
            Response::JobDone {
                ticket: 1,
                provenance: Provenance::Computed,
                result: result.clone(),
            },
            msg::JOB_DONE,
        ),
        (Response::Busy { queue_depth: 1, queue_capacity: 8 }, msg::BUSY),
        (Response::Failed { ticket: 2, message: "eye completely closed".to_string() }, msg::FAILED),
        (
            Response::BatchDone { outcomes: vec![(3, Provenance::Cache, Ok(result))] },
            msg::BATCH_DONE,
        ),
    ];
    for (response, code) in responses {
        let frame = response.to_frame().unwrap();
        assert_eq!(frame[5], code, "{response:?}");
        assert_eq!(Response::from_frame(&frame).unwrap(), response, "{response:?}");
    }
}

/// The cache key is the spec's canonical bytes; its FNV-1a digest is part
/// of the deployed contract (canary output prints it).
#[test]
fn bathtub_cache_key_is_frozen() {
    let Request::Submit { spec, .. } = golden_submit() else { unreachable!() };
    let key = spec.key_bytes();
    assert_eq!(key, &SUBMIT_BATHTUB_FRAME[16..]);
    assert_eq!(fnv1a64(&key), 0x6B67_8C1A_D11E_E228);
}

/// Payload-free control messages are a bare 12-byte header.
#[test]
fn control_frames_are_bare_headers() {
    for (request, code) in [(Request::GetStats, msg::GET_STATS), (Request::Shutdown, msg::SHUTDOWN)]
    {
        let frame = request.to_frame().unwrap();
        assert_eq!(frame.len(), HEADER_LEN);
        assert_eq!(&frame[..4], &MAGIC);
        assert_eq!(frame[4], VERSION);
        assert_eq!(frame[5], code);
        assert_eq!(&frame[6..], &[0, 0, 0, 0, 0, 0]);
    }
    let goodbye = Response::Goodbye.to_frame().unwrap();
    assert_eq!(goodbye.len(), HEADER_LEN);
    assert_eq!(goodbye[5], msg::GOODBYE);
}

/// Every strict prefix of a valid frame is rejected — no partial decode
/// ever succeeds, and header-level truncation reports exact counts.
#[test]
fn every_truncation_is_rejected() {
    for cut in 0..SUBMIT_BATHTUB_FRAME.len() {
        let err = wire::decode_frame(&SUBMIT_BATHTUB_FRAME[..cut])
            .err()
            .unwrap_or_else(|| panic!("prefix of {cut} bytes decoded"));
        if cut < HEADER_LEN {
            assert_eq!(err, FrameError::Truncated { needed: HEADER_LEN, have: cut });
        } else {
            assert_eq!(err, FrameError::Truncated { needed: 41, have: cut - HEADER_LEN });
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut frame = PING_FRAME;
    frame[3] = b'2'; // "THP2"
    assert_eq!(wire::decode_frame(&frame), Err(FrameError::BadMagic { found: *b"THP2" }));
}

#[test]
fn wrong_version_is_rejected() {
    let mut frame = PING_FRAME;
    frame[4] = 2;
    assert_eq!(wire::decode_frame(&frame), Err(FrameError::UnsupportedVersion { found: 2 }));
}

#[test]
fn reserved_bytes_must_be_zero() {
    let mut frame = PING_FRAME;
    frame[7] = 0xFF;
    assert_eq!(wire::decode_frame(&frame), Err(FrameError::ReservedNonZero { found: 0x00FF }));
}

/// A header declaring more than [`MAX_PAYLOAD`] bytes is rejected before
/// any payload allocation — the hostile-length guard.
#[test]
fn oversized_declared_length_is_rejected() {
    let mut frame = PING_FRAME.to_vec();
    let too_big = MAX_PAYLOAD + 1;
    frame[8..12].copy_from_slice(&too_big.to_be_bytes());
    assert_eq!(
        wire::decode_header(&frame),
        Err(FrameError::Oversized { len: u64::from(too_big), max: u64::from(MAX_PAYLOAD) })
    );
}

#[test]
fn unknown_message_type_is_rejected() {
    let frame = wire::encode_frame(0x7F, &[]).unwrap();
    assert_eq!(Request::from_frame(&frame), Err(FrameError::UnknownType { code: 0x7F }));
    assert_eq!(Response::from_frame(&frame), Err(FrameError::UnknownType { code: 0x7F }));
}

/// Response-only codes are not requests, and vice versa: the two decoders
/// reject each other's vocabulary.
#[test]
fn decoders_reject_the_other_direction() {
    let pong = wire::encode_frame(msg::PONG, &[0; 8]).unwrap();
    assert_eq!(Request::from_frame(&pong), Err(FrameError::UnknownType { code: msg::PONG }));
    let ping = golden_ping().to_frame().unwrap();
    assert_eq!(Response::from_frame(&ping), Err(FrameError::UnknownType { code: msg::PING }));
}

#[test]
fn trailing_bytes_are_rejected() {
    // After the declared payload length.
    let mut frame = PING_FRAME.to_vec();
    frame.push(0xAA);
    assert_eq!(wire::decode_frame(&frame), Err(FrameError::TrailingBytes { extra: 1 }));

    // Inside the payload: length says 9 but the grammar consumes 8.
    let padded = wire::encode_frame(msg::PING, &[0x01; 9]).unwrap();
    assert_eq!(Request::from_frame(&padded), Err(FrameError::TrailingBytes { extra: 1 }));
}

/// An out-of-domain field decodes as `BadPayload`, not a panic and not a
/// spec: a bathtub with transition density 0 is rejected at the wire.
#[test]
fn out_of_domain_spec_is_rejected_at_decode() {
    let mut frame = SUBMIT_BATHTUB_FRAME;
    // Zero the transition-density f64 (bytes 41..49 of the frame).
    for byte in &mut frame[41..49] {
        *byte = 0;
    }
    assert_eq!(
        Request::from_frame(&frame),
        Err(FrameError::BadPayload { context: "transition density must be in (0, 1]" })
    );
}

/// Encode → decode → encode is the identity on bytes for a representative
/// message of every type code.
#[test]
fn re_encoding_is_byte_stable() {
    let specs = vec![JobSpec::eye(DataRate::from_gbps(2.5), 128, 3, 9), golden_submit_spec()];
    let requests = vec![
        golden_ping(),
        Request::GetStats,
        golden_submit(),
        Request::SubmitBatch { session: 2, specs },
        Request::Shutdown,
    ];
    for request in requests {
        let frame = request.to_frame().unwrap();
        let again = Request::from_frame(&frame).unwrap().to_frame().unwrap();
        assert_eq!(frame, again, "{request:?}");
    }
}

fn golden_submit_spec() -> JobSpec {
    let Request::Submit { spec, .. } = golden_submit() else { unreachable!() };
    spec
}
